"""The naive interpreter vs handwritten references vs all engines.

Triple agreement — engine == interpreter == handwritten reference — on
the paper's workload, plus engine == interpreter on query shapes no
handwritten reference covers.
"""

import pytest

from repro.core import GPLEngine
from repro.kbe import KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.plans.interpreter import naive_execute
from repro.relational import col
from repro.tpch import generate_database, query_by_name, reference_answer

from .conftest import assert_rows_close

QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")


@pytest.fixture(scope="module")
def micro_db():
    return generate_database(scale=0.002)


def interpreter_rows(db, spec):
    answer = naive_execute(spec, db)
    return sorted(zip(*[answer[column] for column in answer]))


class TestAgainstReferences:
    @pytest.mark.parametrize("name", QUERIES)
    def test_interpreter_matches_handwritten(self, micro_db, name):
        spec = query_by_name(name)
        reference = reference_answer(micro_db, name)
        expected = sorted(zip(*[reference[c] for c in reference]))
        assert_rows_close(
            interpreter_rows(micro_db, spec), expected, rel=1e-8
        )

    @pytest.mark.parametrize("name", QUERIES)
    def test_engines_match_interpreter(self, micro_db, amd, name):
        spec = query_by_name(name)
        expected = interpreter_rows(micro_db, spec)
        for engine_cls in (KBEEngine, GPLEngine):
            result = engine_cls(micro_db, amd).execute(spec)
            assert_rows_close(result.sorted_rows(), expected, rel=1e-8)


class TestBeyondTheWorkload:
    """Query shapes with no handwritten reference."""

    def check(self, db, amd, spec):
        expected = interpreter_rows(db, spec)
        for engine_cls in (KBEEngine, GPLEngine):
            result = engine_cls(db, amd).execute(spec)
            assert_rows_close(result.sorted_rows(), expected, rel=1e-8)

    def test_three_way_star(self, micro_db, amd):
        self.check(
            micro_db,
            amd,
            QuerySpec(
                name="star3",
                tables=(
                    TableRef("lineitem", "lineitem"),
                    TableRef("part", "part"),
                    TableRef("supplier", "supplier"),
                ),
                join_edges=(
                    JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
                    JoinEdge(
                        "lineitem", "l_suppkey", "supplier", "s_suppkey"
                    ),
                ),
                fact="lineitem",
                filters={"part": col("p_size").le(25)},
                group_keys=("s_nationkey",),
                aggregates=(
                    AggSpec("qty", "sum", col("l_quantity")),
                    AggSpec("orders", "count"),
                ),
                order_by=("qty",),
                order_desc=(True,),
            ),
        )

    def test_expanding_join_with_residual(self, micro_db, amd):
        self.check(
            micro_db,
            amd,
            QuerySpec(
                name="expanding",
                tables=(
                    TableRef("lineitem", "lineitem"),
                    TableRef("partsupp", "partsupp"),
                ),
                join_edges=(
                    JoinEdge(
                        "lineitem", "l_partkey", "partsupp", "ps_partkey"
                    ),
                ),
                fact="lineitem",
                residual_filters=(
                    col("ps_suppkey").eq(col("l_suppkey")),
                ),
                aggregates=(
                    AggSpec("cost", "sum", col("ps_supplycost")),
                    AggSpec("n", "count"),
                ),
            ),
        )

    def test_distinct_with_limit(self, micro_db, amd):
        self.check(
            micro_db,
            amd,
            QuerySpec(
                name="distinct_limit",
                tables=(TableRef("orders", "orders"),),
                join_edges=(),
                fact="orders",
                distinct=("o_custkey",),
                order_by=("o_custkey",),
                limit=10,
            ),
        )

    def test_avg_and_extremes(self, micro_db, amd):
        self.check(
            micro_db,
            amd,
            QuerySpec(
                name="stats",
                tables=(TableRef("partsupp", "partsupp"),),
                join_edges=(),
                fact="partsupp",
                group_keys=("ps_suppkey",),
                aggregates=(
                    AggSpec("avg_cost", "avg", col("ps_supplycost")),
                    AggSpec("max_qty", "max", col("ps_availqty")),
                    AggSpec("min_qty", "min", col("ps_availqty")),
                ),
                order_by=("avg_cost",),
                limit=7,
            ),
        )

    def test_post_projection_over_groups(self, micro_db, amd):
        self.check(
            micro_db,
            amd,
            QuerySpec(
                name="ratio",
                tables=(TableRef("lineitem", "lineitem"),),
                join_edges=(),
                fact="lineitem",
                group_keys=("l_suppkey",),
                aggregates=(
                    AggSpec("rev", "sum", col("l_extendedprice")),
                    AggSpec("n", "count"),
                ),
                post_projection=(
                    ("avg_rev", col("rev") / col("n")),
                ),
                order_by=("avg_rev",),
                order_desc=(True,),
                limit=5,
            ),
        )
