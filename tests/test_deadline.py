"""Deadlines and cooperative cancellation.

The contract: a query past its cycle budget raises a typed
``DeadlineExceededError`` (never a hang, never a masked generic error),
the budget is cumulative across resilient retries and fallbacks, a
stalled pipeline under a deadline surfaces as the deadline error (it
will blow any finite budget) while staying ``PipelineDeadlockError``
without one, and the CLI maps deadline errors to their own exit code 3.
"""

import dataclasses

import pytest

from repro.cancel import CancellationToken
from repro.core import ResilientExecutor
from repro.core.engine import GPLEngine
from repro.errors import DeadlineExceededError, PipelineDeadlockError
from repro.faults import FaultInjector, FaultPlan
from repro.tpch import query_by_name


class TestToken:
    def test_rejects_non_positive_deadline(self):
        with pytest.raises(ValueError):
            CancellationToken(0)
        with pytest.raises(ValueError):
            CancellationToken(-5.0)

    def test_unarmed_token_never_expires(self):
        token = CancellationToken()
        assert not token.active
        assert token.remaining_cycles(1e18) == float("inf")
        token.check(1e18)  # no deadline, no raise

    def test_charge_accumulates_across_runs(self):
        token = CancellationToken(100.0, query="Q")
        token.charge(60.0)
        token.charge(30.0)
        assert token.remaining_cycles() == pytest.approx(10.0)
        token.check(run_cycles=10.0)  # exactly at the line: not expired
        with pytest.raises(DeadlineExceededError) as info:
            token.check(run_cycles=11.0, where="seg")
        assert info.value.deadline_cycles == 100.0
        assert info.value.elapsed_cycles == pytest.approx(101.0)
        assert info.value.where == "seg"

    def test_cancel_fires_without_deadline(self):
        token = CancellationToken(query="Q")
        token.cancel("shutting down")
        assert token.active
        with pytest.raises(DeadlineExceededError, match="shutting down"):
            token.check()


class TestEngineDeadline:
    def test_spec_deadline_cancels_bare_engine(self, tiny_db, amd):
        spec = dataclasses.replace(
            query_by_name("Q14"), deadline_cycles=100.0
        )
        with pytest.raises(DeadlineExceededError) as info:
            GPLEngine(tiny_db, amd).execute(spec)
        assert info.value.elapsed_cycles > 100.0

    def test_generous_deadline_is_invisible(self, tiny_db, amd):
        spec = query_by_name("Q14")
        plain = GPLEngine(tiny_db, amd).execute(spec)
        bounded = GPLEngine(tiny_db, amd).execute(
            dataclasses.replace(spec, deadline_cycles=1e12)
        )
        assert bounded.sorted_rows() == plain.sorted_rows()
        assert bounded.counters.elapsed_cycles == pytest.approx(
            plain.counters.elapsed_cycles
        )

    def test_deadline_is_fatal_in_resilient_mode(self, tiny_db, amd):
        """No retry or fallback can un-spend cycles: the chain stops."""
        executor = ResilientExecutor(tiny_db, amd, deadline_cycles=100.0)
        with pytest.raises(DeadlineExceededError) as info:
            executor.execute(query_by_name("Q14"))
        report = info.value.resilience
        assert report.deadline_exceeded
        assert len(report.attempts) == 1
        assert report.attempts[0].outcome == "deadline-exceeded"
        assert report.fallbacks == 0

    def test_budget_spans_retries(self, tiny_db, amd):
        """Cycles burned by a failed attempt count against the budget."""
        spec = query_by_name("Q14")
        clean = ResilientExecutor(tiny_db, amd).execute(spec)
        clean_cycles = clean.counters.elapsed_cycles
        # Enough for one clean run, not for a faulted run plus a retry
        # (the retry resumes checkpoints, but the failed attempt's
        # cycles were already spent).
        executor = ResilientExecutor(
            tiny_db,
            amd,
            fault_plan=FaultPlan.parse("oom@main"),
            deadline_cycles=clean_cycles * 1.05,
            checkpoints=False,
        )
        with pytest.raises(DeadlineExceededError):
            executor.execute(spec)

    def test_spec_deadline_overrides_executor_default(self, tiny_db, amd):
        executor = ResilientExecutor(tiny_db, amd, deadline_cycles=100.0)
        spec = dataclasses.replace(
            query_by_name("Q14"), deadline_cycles=1e12
        )
        result = executor.execute(spec)  # generous spec deadline wins
        assert not result.resilience.deadline_exceeded


class TestWatchdogInterplay:
    """A wedged pipeline is a deadlock without a deadline, a deadline
    error with one — the watchdog picks the caller's vocabulary."""

    def _stalled_engine(self, db, device):
        engine = GPLEngine(db, device)
        engine.fault_injector = FaultInjector(FaultPlan.parse("stall@main"))
        return engine

    def test_stall_without_deadline_is_deadlock(self, tiny_db, amd):
        with pytest.raises(PipelineDeadlockError):
            self._stalled_engine(tiny_db, amd).execute(query_by_name("Q14"))

    def test_stall_with_deadline_is_deadline_error(self, tiny_db, amd):
        spec = dataclasses.replace(
            query_by_name("Q14"), deadline_cycles=1e12
        )
        with pytest.raises(DeadlineExceededError) as info:
            self._stalled_engine(tiny_db, amd).execute(spec)
        # The wedge, not the budget, ended the query — the snapshot's
        # diagnosis survives in the message.
        assert "stall" in str(info.value) or "never" in str(info.value)

    def test_deadline_error_is_not_absorbed_by_chain(self, tiny_db, amd):
        """Resilient + stall + deadline: the chain would absorb the
        stall (w/o CE has no channels), but the deadline verdict is
        final — the executor must not retry its way around it."""
        executor = ResilientExecutor(
            tiny_db,
            amd,
            fault_plan=FaultPlan.parse("stall@main"),
            deadline_cycles=1e12,
        )
        with pytest.raises(DeadlineExceededError):
            executor.execute(query_by_name("Q14"))


class TestCLIExitCodes:
    def test_run_deadline_exits_3(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "Q14", "--scale", "0.002", "--deadline-cycles", "100"]
        )
        assert code == 3
        assert "DeadlineExceededError" in capsys.readouterr().err

    def test_resilient_run_deadline_exits_3(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run", "Q14", "--scale", "0.002", "--resilient",
                "--deadline-cycles", "100",
            ]
        )
        assert code == 3

    def test_stall_with_deadline_exits_3_not_2(self, capsys):
        from repro.__main__ import main

        base = ["run", "Q14", "--scale", "0.002", "--inject-faults", "stall"]
        assert main(base) == 2  # deadlock: generic typed-error exit
        capsys.readouterr()
        assert main(base + ["--deadline-cycles", "1e12"]) == 3

    def test_generous_deadline_exits_0(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "Q14", "--scale", "0.002", "--deadline-cycles", "1e12"]
        )
        assert code == 0
