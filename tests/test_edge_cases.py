"""Edge cases through the full engine stack: empty results, degenerate
inputs, unusual query shapes."""

import numpy as np
import pytest

from repro.core import GPLConfig, GPLEngine, GPLWithoutCEEngine
from repro.kbe import KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.relational import (
    CaseWhen,
    ColumnDef,
    Database,
    DataType,
    Table,
    TableSchema,
    col,
    lit,
)

ENGINES = (KBEEngine, GPLEngine, GPLWithoutCEEngine)


def empty_filter_spec() -> QuerySpec:
    return QuerySpec(
        name="empty_filter",
        tables=(
            TableRef("lineitem", "lineitem"),
            TableRef("part", "part"),
        ),
        join_edges=(
            JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
        ),
        fact="lineitem",
        filters={"lineitem": col("l_quantity").gt(1e9)},
        group_keys=("p_type",),
        aggregates=(AggSpec("n", "count"),),
        order_by=("n",),
    )


class TestEmptyResults:
    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_filter_eliminates_everything(self, tiny_db, amd, engine_cls):
        result = engine_cls(tiny_db, amd).execute(empty_filter_spec())
        assert result.num_rows == 0
        assert result.elapsed_ms > 0  # scans still happened

    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_empty_build_side(self, tiny_db, amd, engine_cls):
        spec = QuerySpec(
            name="empty_build",
            tables=(
                TableRef("lineitem", "lineitem"),
                TableRef("part", "part"),
            ),
            join_edges=(
                JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
            ),
            fact="lineitem",
            filters={"part": col("p_size").gt(10_000)},
            aggregates=(AggSpec("n", "count"),),
        )
        result = engine_cls(tiny_db, amd).execute(spec)
        assert result.rows() == [(0.0,)]


class TestDegenerateInputs:
    def _single_row_db(self) -> Database:
        database = Database()
        schema = TableSchema.of(
            ColumnDef("f_key", DataType.INT32),
            ColumnDef("f_value", DataType.FLOAT64),
        )
        database.add(
            "facts",
            Table(schema, {"f_key": np.array([7]), "f_value": np.array([2.5])}),
        )
        dim_schema = TableSchema.of(
            ColumnDef("d_key", DataType.INT32),
            ColumnDef("d_weight", DataType.FLOAT64),
        )
        database.add(
            "dims",
            Table(
                dim_schema,
                {"d_key": np.array([7, 8]), "d_weight": np.array([3.0, 4.0])},
            ),
        )
        return database

    @pytest.mark.parametrize("engine_cls", ENGINES)
    def test_single_row_join(self, amd, engine_cls):
        database = self._single_row_db()
        spec = QuerySpec(
            name="single",
            tables=(
                TableRef("facts", "facts"),
                TableRef("dims", "dims"),
            ),
            join_edges=(JoinEdge("facts", "f_key", "dims", "d_key"),),
            fact="facts",
            derived=(("product", col("f_value") * col("d_weight")),),
            aggregates=(AggSpec("total", "sum", col("product")),),
        )
        result = engine_cls(database, amd).execute(spec)
        assert result.rows() == [(7.5,)]

    def test_tiny_tile_size(self, tiny_db, amd):
        from repro.tpch import q14

        engine = GPLEngine(tiny_db, amd, GPLConfig(tile_bytes=4096))
        baseline = GPLEngine(tiny_db, amd)
        assert engine.execute(q14()).approx_equals(
            baseline.execute(q14())
        )

    def test_one_workgroup_everywhere(self, tiny_db, amd):
        from repro.tpch import q14

        engine = GPLEngine(tiny_db, amd, GPLConfig(default_workgroups=1))
        baseline = GPLEngine(tiny_db, amd)
        assert engine.execute(q14()).approx_equals(
            baseline.execute(q14())
        )


class TestUnusualQueryShapes:
    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_no_filters_at_all(self, tiny_db, amd, engine_cls):
        spec = QuerySpec(
            name="unfiltered",
            tables=(
                TableRef("lineitem", "lineitem"),
                TableRef("supplier", "supplier"),
            ),
            join_edges=(
                JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            ),
            fact="lineitem",
            group_keys=("s_nationkey",),
            aggregates=(AggSpec("n", "count"),),
        )
        result = engine_cls(tiny_db, amd).execute(spec)
        total = sum(result.column("n"))
        assert total == tiny_db.num_rows("lineitem")

    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_min_max_aggregates(self, tiny_db, amd, engine_cls):
        spec = QuerySpec(
            name="minmax",
            tables=(TableRef("lineitem", "lineitem"),),
            join_edges=(),
            fact="lineitem",
            aggregates=(
                AggSpec("lo", "min", col("l_quantity")),
                AggSpec("hi", "max", col("l_quantity")),
                AggSpec("mean", "avg", col("l_quantity")),
            ),
        )
        result = engine_cls(tiny_db, amd).execute(spec)
        lo, hi, mean = result.rows()[0]
        quantity = tiny_db.table("lineitem")["l_quantity"]
        assert lo == quantity.min()
        assert hi == quantity.max()
        assert mean == pytest.approx(quantity.mean())

    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_case_when_in_aggregate(self, tiny_db, amd, engine_cls):
        spec = QuerySpec(
            name="casewhen",
            tables=(TableRef("lineitem", "lineitem"),),
            join_edges=(),
            fact="lineitem",
            derived=(
                (
                    "cheap",
                    CaseWhen(
                        col("l_quantity").le(10), lit(1.0), lit(0.0)
                    ),
                ),
            ),
            aggregates=(AggSpec("cheap_count", "sum", col("cheap")),),
        )
        result = engine_cls(tiny_db, amd).execute(spec)
        expected = float(
            (tiny_db.table("lineitem")["l_quantity"] <= 10).sum()
        )
        assert result.rows()[0][0] == expected

    def test_explain_runs_for_all_queries(self, tiny_db, amd):
        from repro.tpch import QUERIES, query_by_name

        engine = GPLEngine(tiny_db, amd)
        for name in QUERIES:
            text = engine.explain(query_by_name(name))
            assert "probe order" in text
            assert "pipelines:" in text

    def test_explain_shows_partitioning(self, small_db, amd):
        from repro.tpch import q9

        engine = GPLEngine(
            small_db, amd, partitioned_joins=True, num_partitions=8
        )
        # lower threshold via direct prepare is implicit; with default
        # threshold orders may not partition at this scale, so just check
        # the call succeeds and mentions the probe chain.
        assert "ProbeOp" in engine.explain(q9())
