"""Segment checkpoint/resume: golden equivalence and store bounds.

The contract: a retry that resumes from checkpoints produces rows
identical to a from-scratch run, re-executes *only* the segments at and
after the fault, and the bounded store never makes resumption unsafe —
an evicted or invalidated segment simply re-executes.
"""

import numpy as np
import pytest

from repro.core import CheckpointStore, ResilientExecutor
from repro.core.engine import GPLEngine
from repro.faults import FaultPlan
from repro.plans import ExecutionContext
from repro.tpch import query_by_name


def _segment_ids(db, device, name):
    """The pipeline ids of a query's physical plan (checkpoint keys)."""
    plan = GPLEngine(db, device).prepare(query_by_name(name))
    return [p.pipeline_id for p in plan.pipelines]


def _batch(rows, value=1.0):
    return {"c": np.full(rows, value)}


class TestStoreBounds:
    def test_record_restore_roundtrip(self):
        store = CheckpointStore()
        window = store.open("Q")
        window.begin_attempt(("a", "b"))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(8)
        window.record("a", context)
        assert window.segments_recorded == 1

        fresh = ExecutionContext()
        assert window.restore("a", fresh)
        np.testing.assert_array_equal(
            fresh.intermediates["out_a"]["c"], context.intermediates["out_a"]["c"]
        )
        assert not window.restore("b", fresh)  # never recorded

    def test_delta_keys_only(self):
        """Each segment records only the keys it added, not the context."""
        store = CheckpointStore()
        window = store.open("Q")
        window.begin_attempt(("a", "b"))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(8)
        window.record("a", context)
        context.intermediates["out_b"] = _batch(4)
        window.record("b", context)

        fresh = ExecutionContext()
        assert window.restore("b", fresh)
        assert set(fresh.intermediates) == {"out_b"}

    def test_lru_eviction_frees_bytes_and_stays_safe(self):
        entry_bytes = _batch(8)["c"].nbytes
        store = CheckpointStore(max_bytes=entry_bytes * 2, max_segments=8)
        window = store.open("Q")
        window.begin_attempt(("a", "b", "c"))
        context = ExecutionContext()
        for seg in ("a", "b", "c"):
            context.intermediates[f"out_{seg}"] = _batch(8)
            window.record(seg, context)
        assert store.evicted_total == 1
        assert store.live_bytes <= store.max_bytes
        # The evicted segment (oldest: "a") is a clean miss, not an error.
        assert not window.restore("a", ExecutionContext())
        assert window.restore("c", ExecutionContext())

    def test_oversize_segment_not_stored(self):
        store = CheckpointStore(max_bytes=4)
        window = store.open("Q")
        window.begin_attempt(("a",))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(1024)
        window.record("a", context)
        assert store.recorded_total == 0
        assert not window.restore("a", ExecutionContext())

    def test_begin_attempt_invalidates_replanned_segments(self):
        store = CheckpointStore()
        window = store.open("Q")
        window.begin_attempt(("a", "b"))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(2)
        window.record("a", context)
        context.intermediates["out_b"] = _batch(2)
        window.record("b", context)

        window.begin_attempt(("a", "c"))  # "b" vanished from the plan
        assert window.segments_invalidated == 1
        assert store.invalidated_total == 1
        assert window.restore("a", ExecutionContext())
        assert not window.restore("b", ExecutionContext())

    def test_release_drops_everything(self):
        store = CheckpointStore()
        window = store.open("Q")
        window.begin_attempt(("a",))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(2)
        window.record("a", context)
        assert store.live_bytes > 0
        window.release()
        assert store.live_bytes == 0
        assert len(store) == 0

    def test_tickets_never_alias(self):
        store = CheckpointStore()
        first, second = store.open("Q"), store.open("Q")
        first.begin_attempt(("a",))
        second.begin_attempt(("a",))
        context = ExecutionContext()
        context.intermediates["out_a"] = _batch(2)
        first.record("a", context)
        assert not second.restore("a", ExecutionContext())


class TestResumeGolden:
    """Golden fixture: resumed retries are row-identical and minimal."""

    def test_resumed_rows_identical_and_only_tail_reexecutes(
        self, tiny_db, amd
    ):
        segments = _segment_ids(tiny_db, amd, "Q5")
        fault_at = len(segments) - 3  # fault late: most segments resumable
        plan = FaultPlan.parse(f"oom@{segments[fault_at]}")

        resumed = ResilientExecutor(
            tiny_db, amd, fault_plan=plan
        ).execute(query_by_name("Q5"))
        scratch = ResilientExecutor(
            tiny_db, amd, fault_plan=plan, checkpoints=False
        ).execute(query_by_name("Q5"))
        clean = ResilientExecutor(tiny_db, amd).execute(query_by_name("Q5"))

        assert resumed.sorted_rows() == scratch.sorted_rows()
        assert resumed.sorted_rows() == clean.sorted_rows()

        report = resumed.resilience
        assert report.retries == 1
        # The retry resumed every segment before the fault...
        assert report.segments_resumed == fault_at
        # ...and the simulator only launched kernels for the attempt's
        # remaining segments: fewer launches than the no-checkpoint
        # retry, which re-executed the whole prefix a second time.
        assert (
            resumed.counters.kernel_launches
            < scratch.counters.kernel_launches
        )
        assert scratch.resilience.segments_resumed == 0

    def test_clean_run_records_but_never_resumes(self, tiny_db, amd):
        result = ResilientExecutor(tiny_db, amd).execute(query_by_name("Q14"))
        report = result.resilience
        assert report.segments_recorded == len(
            _segment_ids(tiny_db, amd, "Q14")
        )
        assert report.segments_resumed == 0

    def test_store_shared_across_queries_is_released(self, tiny_db, amd):
        store = CheckpointStore()
        executor = ResilientExecutor(
            tiny_db, amd, checkpoint_store=store
        )
        executor.execute(query_by_name("Q14"))
        executor.execute(query_by_name("Q5"))
        assert store.recorded_total > 0
        assert store.live_bytes == 0  # finished queries hold nothing

    def test_checkpoints_survive_fallback_to_kbe(self, tiny_db, amd):
        """Physical plans are engine-independent, so a GPL->KBE fallback
        resumes the failed GPL attempt's completed segments."""
        segments = _segment_ids(tiny_db, amd, "Q5")
        # A kernel abort skips retry and falls straight back; make it
        # persistent enough to push past GPL w/o CE into KBE.
        plan = FaultPlan.parse(f"abort@{segments[-3]}:*,times=2")
        result = ResilientExecutor(tiny_db, amd, fault_plan=plan).execute(
            query_by_name("Q5")
        )
        report = result.resilience
        assert report.engine_used == "KBE"
        assert report.fallbacks == 2
        assert report.segments_resumed >= len(segments) - 3
        clean = ResilientExecutor(tiny_db, amd).execute(query_by_name("Q5"))
        assert result.sorted_rows() == clean.sorted_rows()
