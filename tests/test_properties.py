"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Tiler, split_into_segments
from repro.gpu import CacheModel, ChannelConfig, ChannelState, KernelSpec
from repro.errors import ChannelError
from repro.plans import AggSpec
from repro.plans.physical import FilterOp
from repro.plans.runtime import ExecutionContext, GroupAggState, HashTable
from repro.relational import col

ints = st.integers(min_value=0, max_value=50)
int_arrays = st.lists(ints, min_size=0, max_size=200).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)
float_arrays = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=0,
    max_size=200,
)


class TestHashTableProperties:
    @given(build=int_arrays, probe=int_arrays)
    @settings(max_examples=100, deadline=None)
    def test_probe_matches_brute_force(self, build, probe):
        """Every (probe, build) pair with equal keys appears exactly once."""
        table = HashTable("k", ("k",))
        table.insert({"k": build})
        table.finalize()
        probe_idx, build_rows = table.probe(probe)
        payload = table.payload_rows(build_rows)

        got = sorted(zip(probe_idx.tolist(), payload["k"].tolist()))
        expected = sorted(
            (i, int(b))
            for i, p in enumerate(probe.tolist())
            for b in build.tolist()
            if b == p
        )
        assert [(i, k) for i, k in got] == expected

    @given(build=int_arrays, splits=st.integers(min_value=1, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_incremental_build_equals_bulk(self, build, splits):
        bulk = HashTable("k", ("k",))
        bulk.insert({"k": build})
        bulk.finalize()

        parts = HashTable("k", ("k",))
        for chunk in np.array_split(build, splits):
            parts.insert({"k": chunk})
        parts.finalize()

        probe = np.arange(0, 51)
        a_idx, _ = bulk.probe(probe)
        b_idx, _ = parts.probe(probe)
        assert np.array_equal(a_idx, b_idx)


class TestGroupAggProperties:
    @given(
        keys=st.lists(ints, min_size=0, max_size=150),
        chunk=st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=60, deadline=None)
    def test_streaming_sum_matches_numpy(self, keys, chunk):
        keys = np.asarray(keys, dtype=np.int64)
        values = np.arange(keys.size, dtype=np.float64)
        state = GroupAggState(("g",), (AggSpec("s", "sum", col("v")),))
        for start in range(0, keys.size, chunk):
            state.update(
                {
                    "g": keys[start : start + chunk],
                    "v": values[start : start + chunk],
                }
            )
        result = state.result()
        for group, total in zip(result["g"], result["s"]):
            assert total == pytest.approx(values[keys == group].sum())

    @given(values=float_arrays)
    @settings(max_examples=60, deadline=None)
    def test_global_min_max_count(self, values):
        array = np.asarray(values, dtype=np.float64)
        state = GroupAggState(
            (),
            (
                AggSpec("lo", "min", col("v")),
                AggSpec("hi", "max", col("v")),
                AggSpec("n", "count"),
            ),
        )
        state.update({"v": array})
        result = state.result()
        if array.size:
            assert result["lo"][0] == array.min()
            assert result["hi"][0] == array.max()
        assert result["n"][0] == array.size


class TestFilterProperties:
    @given(values=int_arrays, threshold=ints)
    @settings(max_examples=60, deadline=None)
    def test_filter_equals_mask(self, values, threshold):
        op = FilterOp(col("x").ge(int(threshold)))
        op.bind(["x"], ["x"], {"x": 8}, 0.5)
        out = op.apply({"x": values}, ExecutionContext())
        assert np.array_equal(out["x"], values[values >= threshold])


class TestTilerProperties:
    @given(
        rows=st.integers(min_value=0, max_value=5000),
        width=st.integers(min_value=1, max_value=64),
        tile=st.integers(min_value=64, max_value=65536),
    )
    @settings(max_examples=100, deadline=None)
    def test_partition_is_exact_cover(self, rows, width, tile):
        plan = Tiler(tile).plan(rows, width)
        boundaries = plan.boundaries()
        assert len(boundaries) == plan.num_tiles
        if rows == 0:
            assert boundaries == []
            return
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == rows
        covered = sum(stop - start for start, stop in boundaries)
        assert covered == rows
        for start, stop in boundaries:
            assert 0 < stop - start <= plan.rows_per_tile

    @given(
        rows=st.integers(min_value=1, max_value=3000),
        tile=st.integers(min_value=64, max_value=8192),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_reassemble(self, rows, tile):
        batch = {"x": np.arange(rows)}
        pieces = list(Tiler(tile).tiles(batch, row_width=8))
        reassembled = np.concatenate([p["x"] for p in pieces])
        assert np.array_equal(reassembled, batch["x"])


class TestSegmentationProperties:
    @given(flags=st.lists(st.booleans(), min_size=0, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, flags):
        kernels = [
            KernelSpec(
                name=f"k{i}",
                compute_instr=1,
                memory_instr=1,
                pm_per_workitem=8,
                lm_per_workitem=0,
                blocking=blocking,
            )
            for i, blocking in enumerate(flags)
        ]
        segments = split_into_segments(kernels)
        # 1. order is preserved, nothing lost or duplicated
        flattened = [k.name for s in segments for k in s.kernels]
        assert flattened == [k.name for k in kernels]
        # 2. blocking kernels appear only in terminal positions
        for segment in segments:
            for kernel in segment.non_blocking:
                assert not kernel.blocking
        # 3. every segment except possibly the last ends with a blocker
        for segment in segments[:-1]:
            assert segment.blocking_kernel.blocking
        # 4. segment count = blockers (+1 for a non-blocking tail)
        blockers = sum(flags)
        tail = 1 if (flags and not flags[-1]) else 0
        if not flags:
            assert segments == []
        else:
            assert len(segments) == blockers + tail


class TestChannelStateProperties:
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["reserve", "commit", "consume"]), st.integers(1, 50)),
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, operations):
        state = ChannelState(ChannelConfig(num_channels=2, depth_packets=32))
        capacity = state.config.capacity_packets
        for operation, count in operations:
            try:
                if operation == "reserve":
                    state.reserve(count)
                elif operation == "commit":
                    state.commit(count)
                else:
                    state.consume(count)
            except ChannelError:
                continue
            assert 0 <= state.buffered_packets
            assert 0 <= state.reserved_packets
            assert state.in_flight <= capacity
            assert state.peak_packets <= capacity


class TestCacheProperties:
    @given(
        capacity=st.integers(min_value=1024, max_value=1 << 24),
        sizes=st.lists(
            st.integers(min_value=0, max_value=1 << 28), min_size=2, max_size=20
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_hit_ratio_bounded_and_monotone(self, capacity, sizes):
        cache = CacheModel(capacity)
        for size in sizes:
            ratio = cache.hit_ratio(size)
            assert 0.0 < ratio <= 1.0
        ordered = sorted(sizes)
        ratios = [cache.hit_ratio(s) for s in ordered]
        assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
