"""Unit tests for the database catalog and column statistics."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import ColumnDef, ColumnStats, Database, DataType, Table, TableSchema


def make_table(values) -> Table:
    return Table(
        TableSchema.of(ColumnDef("x", DataType.FLOAT64)),
        {"x": np.asarray(values, dtype=np.float64)},
    )


class TestColumnStats:
    def test_from_array(self):
        stats = ColumnStats.from_array(np.array([1.0, 5.0, 5.0, 9.0]))
        assert stats.minimum == 1.0
        assert stats.maximum == 9.0
        assert stats.distinct == 3
        assert stats.count == 4

    def test_empty(self):
        stats = ColumnStats.from_array(np.array([]))
        assert stats.count == 0
        assert stats.range_selectivity(None, None) == 0.0
        assert stats.equality_selectivity() == 0.0

    def test_range_selectivity_full(self):
        stats = ColumnStats(0.0, 10.0, 11, 100)
        assert stats.range_selectivity(None, None) == 1.0

    def test_range_selectivity_half(self):
        stats = ColumnStats(0.0, 10.0, 11, 100)
        assert stats.range_selectivity(None, 5.0) == pytest.approx(0.5)
        assert stats.range_selectivity(5.0, None) == pytest.approx(0.5)

    def test_range_selectivity_clamps(self):
        stats = ColumnStats(0.0, 10.0, 11, 100)
        assert stats.range_selectivity(-100, 200) == 1.0
        assert stats.range_selectivity(20, 30) == 0.0

    def test_range_degenerate(self):
        stats = ColumnStats(5.0, 5.0, 1, 10)
        assert stats.range_selectivity(0, 10) == 1.0

    def test_equality_selectivity(self):
        stats = ColumnStats(0.0, 10.0, 4, 100)
        assert stats.equality_selectivity() == pytest.approx(0.25)


class TestDatabase:
    def test_add_and_lookup(self):
        db = Database()
        db.add("t", make_table([1, 2, 3]))
        assert "t" in db
        assert db.num_rows("t") == 3
        assert db.names == ("t",)

    def test_missing_table(self):
        with pytest.raises(SchemaError):
            Database().table("nope")

    def test_stats_cached_and_invalidated(self):
        db = Database()
        db.add("t", make_table([1, 2, 3]))
        first = db.stats("t", "x")
        assert db.stats("t", "x") is first  # cached
        db.add("t", make_table([10, 20]))
        second = db.stats("t", "x")
        assert second.maximum == 20.0  # cache invalidated on replace

    def test_total_bytes(self):
        db = Database()
        db.add("t", make_table([1, 2, 3]))
        assert db.total_bytes() == 3 * 8

    def test_analyze(self, tiny_db):
        tiny_db.analyze()
        stats = tiny_db.stats("lineitem", "l_discount")
        assert 0.0 <= stats.minimum <= stats.maximum <= 0.1

    def test_iteration(self):
        db = Database()
        db.add("a", make_table([1]))
        db.add("b", make_table([2]))
        assert sorted(db) == ["a", "b"]
