"""Tests for logical -> physical lowering."""

import pytest

from repro.plans import SelingerOptimizer, lower
from repro.plans.physical import (
    AggSink,
    BuildSink,
    CollectSink,
    FilterOp,
    ProbeOp,
    SortSink,
)
from repro.tpch import q5, q7, q8, q9, q14


@pytest.fixture()
def plans(tiny_db):
    optimizer = SelingerOptimizer(tiny_db)

    def make(spec):
        return lower(optimizer.optimize(spec), tiny_db)

    return make


class TestStructure:
    def test_q14_pipelines(self, plans):
        plan = plans(q14())
        ids = [p.pipeline_id for p in plan.pipelines]
        assert "main" in ids and "epilogue" in ids
        builds = [p for p in plan.pipelines if isinstance(p.sink, BuildSink)]
        assert len(builds) == 1  # one join -> one hash table

    @pytest.mark.parametrize(
        "factory,expected_builds",
        [(q5, 5), (q7, 5), (q8, 7), (q9, 5), (q14, 1)],
    )
    def test_build_count_matches_joins(self, plans, factory, expected_builds):
        plan = plans(factory())
        builds = [p for p in plan.pipelines if isinstance(p.sink, BuildSink)]
        assert len(builds) == expected_builds

    def test_builds_precede_main(self, plans):
        plan = plans(q5())
        ids = [p.pipeline_id for p in plan.pipelines]
        main_pos = ids.index("main")
        for position, pipeline in enumerate(plan.pipelines):
            if isinstance(pipeline.sink, BuildSink):
                assert position < main_pos

    def test_main_probe_chain_order(self, plans, tiny_db):
        optimizer = SelingerOptimizer(tiny_db)
        optimized = optimizer.optimize(q5())
        plan = lower(optimized, tiny_db)
        main = plan.pipeline("main")
        probes = [op for op in main.ops if isinstance(op, ProbeOp)]
        probe_aliases = [op.build_id.split("_", 2)[2] for op in probes]
        assert probe_aliases == list(optimized.join_order)

    def test_main_sink_is_aggregate(self, plans):
        for factory in (q5, q7, q8, q9, q14):
            plan = plans(factory())
            assert isinstance(plan.pipeline("main").sink, AggSink)

    def test_epilogue_sort(self, plans):
        plan = plans(q5())
        assert isinstance(plan.pipeline("epilogue").sink, SortSink)

    def test_epilogue_collect_for_q14(self, plans):
        # Q14 has no ORDER BY, only the post-projection.
        plan = plans(q14())
        assert isinstance(plan.pipeline("epilogue").sink, CollectSink)

    def test_describe_is_textual(self, plans):
        text = plans(q14()).describe()
        assert "main" in text and "ProbeOp" in text

    def test_pipeline_lookup_error(self, plans):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            plans(q14()).pipeline("nope")


class TestColumnPruning:
    def test_q14_fact_columns_minimal(self, plans):
        plan = plans(q14())
        main = plan.pipeline("main")
        # Q14 needs only partkey, price, discount and the shipdate filter.
        assert set(main.source_columns) == {
            "l_partkey",
            "l_extendedprice",
            "l_discount",
            "l_shipdate",
        }

    def test_filter_drops_spent_columns(self, plans):
        plan = plans(q14())
        main = plan.pipeline("main")
        filters = [op for op in main.ops if isinstance(op, FilterOp)]
        assert filters, "Q14 has a shipdate filter"
        # After the filter, shipdate is no longer needed.
        assert "l_shipdate" not in filters[0].out_columns

    def test_widths_positive(self, plans):
        for factory in (q5, q8, q14):
            plan = plans(factory())
            for pipeline in plan.pipelines:
                assert pipeline.source_row_width > 0
                for op in pipeline.ops:
                    assert op.in_width > 0

    def test_build_payload_subset_of_needs(self, plans):
        plan = plans(q5())
        nation_build = next(
            p for p in plan.pipelines if p.pipeline_id.endswith("nation")
        )
        sink = nation_build.sink
        # Q5 needs n_name (group key) and n_regionkey (region join).
        assert set(sink.payload_columns) == {"n_name", "n_regionkey"}

    def test_output_columns(self, plans):
        assert plans(q14()).output_columns == ("promo_revenue",)
        assert plans(q5()).output_columns == ("n_name", "revenue")
        assert plans(q8()).output_columns == ("o_year", "mkt_share")


class TestEstimates:
    def test_probe_selectivities_positive(self, plans):
        plan = plans(q8())
        for op in plan.pipeline("main").ops:
            if isinstance(op, ProbeOp):
                assert op.est_selectivity > 0.0

    def test_filter_selectivity_below_one(self, plans):
        plan = plans(q14())
        filters = [
            op for op in plan.pipeline("main").ops if isinstance(op, FilterOp)
        ]
        assert 0.0 < filters[0].est_selectivity < 0.2
