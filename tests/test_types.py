"""Unit tests for column types and date handling."""

import datetime

import numpy as np
import pytest

from repro.relational.types import DataType, date_to_days, days_to_date


class TestDataType:
    def test_numpy_dtypes(self):
        assert DataType.INT32.numpy_dtype == np.dtype(np.int32)
        assert DataType.INT64.numpy_dtype == np.dtype(np.int64)
        assert DataType.FLOAT32.numpy_dtype == np.dtype(np.float32)
        assert DataType.FLOAT64.numpy_dtype == np.dtype(np.float64)

    def test_date_is_int32(self):
        assert DataType.DATE.numpy_dtype == np.dtype(np.int32)

    def test_dict_is_int32(self):
        assert DataType.DICT.numpy_dtype == np.dtype(np.int32)

    @pytest.mark.parametrize(
        "dtype,width",
        [
            (DataType.INT32, 4),
            (DataType.INT64, 8),
            (DataType.FLOAT32, 4),
            (DataType.FLOAT64, 8),
            (DataType.DATE, 4),
            (DataType.DICT, 4),
        ],
    )
    def test_widths(self, dtype, width):
        assert dtype.width == width

    def test_numeric_flags(self):
        assert DataType.INT32.is_numeric
        assert DataType.FLOAT64.is_numeric
        assert not DataType.DATE.is_numeric
        assert not DataType.DICT.is_numeric


class TestDates:
    def test_epoch(self):
        assert date_to_days("1970-01-01") == 0

    def test_round_trip(self):
        for iso in ("1992-01-01", "1995-09-01", "1998-08-02", "2026-07-08"):
            days = date_to_days(iso)
            assert days_to_date(days).isoformat() == iso

    def test_accepts_date_objects(self):
        assert date_to_days(datetime.date(1970, 1, 2)) == 1

    def test_ordering_preserved(self):
        assert date_to_days("1994-01-01") < date_to_days("1995-01-01")

    def test_known_value(self):
        # 1995-09-01 is 9374 days after the epoch.
        assert date_to_days("1995-09-01") == 9374
