"""Tests for the configuration search (Section 4.1's parameter tuning)."""

import pytest

from repro.core import GPLConfig, GPLEngine
from repro.gpu import AMD_A10, NVIDIA_K40
from repro.model import (
    ConfigurationSearch,
    CostModel,
    TILE_SIZE_CANDIDATES,
    calibrate_channels,
    plan_cost_inputs,
    workgroup_ladder,
)
from repro.tpch import q8, q14


@pytest.fixture(scope="module")
def search():
    return ConfigurationSearch(AMD_A10, calibrate_channels(AMD_A10))


@pytest.fixture(scope="module")
def q8_segments(small_db):
    engine = GPLEngine(small_db, AMD_A10)
    plan = engine.prepare(q8())
    return plan_cost_inputs(plan, small_db)


class TestLadder:
    def test_s1_is_2_on_amd(self):
        # "We set S_1 to be 2 for AMD GPU."
        ladder = workgroup_ladder(AMD_A10)
        assert ladder[0] == 2
        assert len(ladder) == 7

    def test_doubling(self):
        ladder = workgroup_ladder(AMD_A10)
        for a, b in zip(ladder, ladder[1:]):
            assert b == 2 * a

    def test_scales_with_device(self):
        assert workgroup_ladder(NVIDIA_K40)[0] >= 2


class TestSegmentSearch:
    def test_best_within_candidates(self, search, q8_segments):
        choice = search.best_for_segment(q8_segments[0])
        assert choice.config.tile_bytes in TILE_SIZE_CANDIDATES
        assert choice.config.default_workgroups in workgroup_ladder(AMD_A10)
        assert 1 <= choice.config.channel.num_channels <= 16

    def test_best_minimizes_model(self, search, q8_segments):
        segment = next(s for s in q8_segments if s.name == "main")
        choice = search.best_for_segment(segment)
        model = CostModel(AMD_A10, calibrate_channels(AMD_A10))
        # No sampled alternative beats the chosen configuration.
        for tile_bytes in TILE_SIZE_CANDIDATES[::3]:
            for workgroups in workgroup_ladder(AMD_A10)[::3]:
                alternative = GPLConfig(
                    tile_bytes=tile_bytes,
                    channel=choice.config.channel,
                    default_workgroups=workgroups,
                )
                estimate = model.estimate_segment(segment, alternative)
                assert (
                    choice.predicted_cycles <= estimate.total_cycles * 1.0001
                )

    def test_optimize_plan_covers_all_segments(self, search, q8_segments):
        configs, total = search.optimize_plan(q8_segments)
        assert set(configs) == {s.name for s in q8_segments}
        assert total > 0

    def test_optimized_beats_or_matches_default_in_model(
        self, search, q8_segments
    ):
        model = CostModel(AMD_A10, calibrate_channels(AMD_A10))
        configs, optimized_total = search.optimize_plan(q8_segments)
        default_total = model.estimate_plan(
            q8_segments, default=GPLConfig()
        )
        assert optimized_total <= default_total


class TestMeasuredEffect:
    def test_optimized_config_helps_measured_runtime(self, small_db, search):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q8())
        segments = plan_cost_inputs(plan, small_db)
        configs, _ = search.optimize_plan(segments)
        default_run = GPLEngine(small_db, AMD_A10).execute(q8())
        tuned_run = GPLEngine(
            small_db, AMD_A10, segment_configs=configs
        ).execute(q8())
        # The tuned configuration must not be materially worse.
        assert tuned_run.elapsed_ms <= default_run.elapsed_ms * 1.1

    def test_q14_optimization_runs(self, small_db, search):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q14())
        segments = plan_cost_inputs(plan, small_db)
        configs, total = search.optimize_plan(segments)
        assert "main" in configs and total > 0

    def test_search_is_fast(self, small_db, search, q8_segments):
        import time

        start = time.perf_counter()
        search.optimize_plan(q8_segments)
        elapsed = time.perf_counter() - start
        # "elapsed time for query optimization is generally smaller than
        # 5ms" on the paper's hardware; allow generous slack in Python.
        assert elapsed < 2.0


class TestSearchCacheBound:
    def test_lru_eviction_counted_and_bounded(self, search, q8_segments):
        from repro.model.search import (
            DEFAULT_SEARCH_CACHE_LIMIT,
            clear_search_cache,
            search_cache_stats,
            set_search_cache_limit,
        )

        clear_search_cache()
        try:
            set_search_cache_limit(1)
            search.optimize_plan(q8_segments)  # > 1 distinct segments
            stats = search_cache_stats()
            assert stats["limit"] == 1
            assert stats["size"] <= 1
            assert stats["evictions"] >= len(q8_segments) - 1
            # A re-run now misses on the evicted shapes instead of hitting.
            misses = stats["misses"]
            search.optimize_plan(q8_segments)
            assert search_cache_stats()["misses"] > misses
        finally:
            set_search_cache_limit(DEFAULT_SEARCH_CACHE_LIMIT)
            clear_search_cache()

    def test_hits_refresh_lru_order(self, search, q8_segments):
        from repro.model.search import (
            DEFAULT_SEARCH_CACHE_LIMIT,
            clear_search_cache,
            search_cache_stats,
            set_search_cache_limit,
        )

        clear_search_cache()
        try:
            set_search_cache_limit(len(q8_segments))
            search.optimize_plan(q8_segments)  # fills the cache exactly
            search.optimize_plan(q8_segments)  # all hits, no evictions
            stats = search_cache_stats()
            assert stats["hits"] >= len(q8_segments)
            assert stats["evictions"] == 0
        finally:
            set_search_cache_limit(DEFAULT_SEARCH_CACHE_LIMIT)
            clear_search_cache()

    def test_limit_must_be_positive(self):
        from repro.model.search import set_search_cache_limit

        with pytest.raises(ValueError):
            set_search_cache_limit(0)
