"""Resilient execution: fault injection, degradation chain, determinism.

The acceptance contract: under a seeded fault plan injecting channel
stalls, kernel aborts, and device-OOM, the :class:`ResilientExecutor`
returns reference-correct results for every absorbable fault, raises a
context-carrying typed error (never a hang, never a bare
``SimulationError``) for non-absorbable ones, and the same seed
reproduces the identical fault schedule and report counters.
"""

import pytest

from repro.core import GPLConfig, ResilienceReport, ResilientExecutor
from repro.core.resilience import ENGINE_CHAIN
from repro.errors import (
    AdmissionError,
    KernelFaultError,
    PipelineDeadlockError,
    ReproError,
    SimulationError,
)
from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.tpch import query_by_name, reference_answer

from .conftest import assert_rows_close

ABSORBABLE_KINDS = (
    FaultKind.CHANNEL_STALL,
    FaultKind.KERNEL_ABORT,
    FaultKind.DEVICE_OOM,
)


def reference_rows(db, name):
    answer = reference_answer(db, name)
    return sorted(zip(*[answer[column] for column in answer]))


class TestFaultPlan:
    def test_parse_kinds_and_sites(self):
        plan = FaultPlan.parse("oom; stall@pipe0:probe*; abort@*:*,times=2")
        assert [spec.kind for spec in plan.faults] == [
            FaultKind.DEVICE_OOM,
            FaultKind.CHANNEL_STALL,
            FaultKind.KERNEL_ABORT,
        ]
        assert plan.faults[1].segment == "pipe0"
        assert plan.faults[1].kernel == "probe*"
        assert plan.faults[2].times == 2

    def test_parse_cycle_window(self):
        plan = FaultPlan.parse("abort@*:*,after=100,before=200")
        assert plan.faults[0].after_cycle == 100.0
        assert plan.faults[0].before_cycle == 200.0

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ReproError):
            FaultPlan.parse("segfault@*")

    def test_parse_rejects_bad_option(self):
        with pytest.raises(ReproError):
            FaultPlan.parse("oom,bogus=1")

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            FaultSpec(kind=FaultKind.DEVICE_OOM, times=0)
        with pytest.raises(ReproError):
            FaultSpec(kind=FaultKind.DEVICE_OOM, after_cycle=5, before_cycle=5)

    def test_seeded_plan_is_reproducible(self):
        a = FaultPlan.from_seed(20160626, count=5)
        b = FaultPlan.from_seed(20160626, count=5)
        assert a == b
        assert len(a.faults) == 5

    def test_parse_seeded_item(self):
        plan = FaultPlan.parse("random:42:4")
        assert plan.seed == 42
        assert plan.faults == FaultPlan.from_seed(42, count=4).faults

    def test_describe_round_trips_the_schedule(self):
        plan = FaultPlan.parse("stall@pipe0:probe*;abort@*:*,times=2")
        text = plan.describe()
        assert "stall@pipe0:probe*" in text
        assert "times=2" in text


class TestFaultInjector:
    def test_fires_once_then_exhausts(self):
        injector = FaultInjector(FaultPlan.parse("stall@seg:*"))
        assert injector.stalls_stage("seg", "k0")
        assert not injector.stalls_stage("seg", "k0")
        assert injector.exhausted
        assert injector.fired_counts() == {"stall": 1}

    def test_site_mismatch_never_fires(self):
        injector = FaultInjector(FaultPlan.parse("stall@seg:probe*"))
        assert not injector.stalls_stage("other", "probe#0")
        assert not injector.stalls_stage("seg", "build#0")
        assert injector.fired == []

    def test_oom_hook_raises_typed_error(self):
        from repro.errors import DeviceMemoryError

        injector = FaultInjector(FaultPlan.parse("oom@seg*"))
        with pytest.raises(DeviceMemoryError) as excinfo:
            injector.on_segment_launch("seg0", budget_bytes=123.0)
        assert excinfo.value.segment == "seg0"
        assert excinfo.value.injected

    def test_abort_respects_cycle_window(self):
        injector = FaultInjector(
            FaultPlan.parse("abort@*:*,after=100,before=200")
        )
        injector.on_kernel_complete("seg", "k", 50.0)  # before window
        with pytest.raises(KernelFaultError) as excinfo:
            injector.on_kernel_complete("seg", "k", 150.0)
        assert excinfo.value.cycle == 150.0
        assert excinfo.value.kernel == "k"


class TestAbsorbableFaults:
    """Every absorbable fault must still yield reference-correct answers."""

    @pytest.mark.parametrize("name", ["Q5", "Q8", "Q14"])
    @pytest.mark.parametrize(
        "spec_text", ["oom", "stall", "abort", "overflow", "oom;stall;abort"]
    )
    def test_reference_correct_under_fault(
        self, tiny_db, amd, name, spec_text
    ):
        executor = ResilientExecutor(
            tiny_db, amd, fault_plan=FaultPlan.parse(spec_text)
        )
        result = executor.execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), reference_rows(tiny_db, name))
        report = result.resilience
        assert isinstance(report, ResilienceReport)
        assert report.engine_used == result.engine
        assert report.attempts[-1].outcome == "ok"

    def test_oom_absorbed_by_retry_with_shrunk_tile(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db, amd, fault_plan=FaultPlan.parse("oom")
        )
        result = executor.execute(query_by_name("Q14"))
        report = result.resilience
        assert report.engine_used == "GPL"
        assert report.retries == 1
        assert report.reconfigurations == 1
        assert report.fallbacks == 0
        assert report.faults_fired == {"oom": 1}
        # The retry really did shrink Δ.
        assert report.attempts[0].outcome == "oom"
        assert report.attempts[1].tile_bytes < report.attempts[0].tile_bytes

    def test_stall_degrades_to_engine_without_channels(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db, amd, fault_plan=FaultPlan.parse("stall")
        )
        result = executor.execute(query_by_name("Q5"))
        report = result.resilience
        assert report.engine_used == "GPL (w/o CE)"
        assert report.fallbacks == 1
        assert report.attempts[0].outcome == "deadlock"

    def test_calibration_miss_aborts_retry_and_falls_back(self, tiny_db, amd):
        plan = FaultPlan.parse("oom,times=3;calibration")
        executor = ResilientExecutor(tiny_db, amd, fault_plan=plan)
        result = executor.execute(query_by_name("Q14"))
        report = result.resilience
        assert report.calibration_misses == 1
        # Reconfiguration was denied, so the chain fell back instead of
        # retrying GPL; the OOM fault follows it until spent.
        assert report.fallbacks >= 1
        assert_rows_close(
            result.sorted_rows(), reference_rows(tiny_db, "Q14")
        )


class TestNonAbsorbableFaults:
    def test_persistent_abort_exhausts_the_chain(self, tiny_db, amd):
        plan = FaultPlan.parse("abort@*:*,times=99")
        executor = ResilientExecutor(tiny_db, amd, fault_plan=plan)
        with pytest.raises(KernelFaultError) as excinfo:
            executor.execute(query_by_name("Q14"))
        # Typed and context-carrying — never a bare SimulationError.
        assert type(excinfo.value) is KernelFaultError
        assert excinfo.value.kernel
        assert excinfo.value.segment
        assert excinfo.value.injected

    def test_deadlock_without_fallback_engines(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db,
            amd,
            fault_plan=FaultPlan.parse("stall"),
            engines=("gpl",),
        )
        with pytest.raises(PipelineDeadlockError) as excinfo:
            executor.execute(query_by_name("Q14"))
        assert excinfo.value.snapshot is not None

    def test_error_is_never_a_bare_simulation_error(self, tiny_db, amd):
        plan = FaultPlan.parse("stall,times=9;abort@*:*,times=99;oom,times=9")
        executor = ResilientExecutor(tiny_db, amd, fault_plan=plan)
        with pytest.raises(ReproError) as excinfo:
            executor.execute(query_by_name("Q5"))
        assert type(excinfo.value) is not SimulationError
        assert type(excinfo.value) is not ReproError


class TestAdmissionControl:
    def test_budget_forces_tile_shrink(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db, amd, memory_budget_bytes=2 * 1024 * 1024
        )
        result = executor.execute(query_by_name("Q14"))
        report = result.resilience
        assert report.admission_shrinks > 0
        assert report.engine_used == "GPL"
        assert_rows_close(
            result.sorted_rows(), reference_rows(tiny_db, "Q14")
        )

    def test_impossible_budget_rejects_gpl(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db, amd, memory_budget_bytes=1024.0, engines=("gpl",)
        )
        with pytest.raises(AdmissionError) as excinfo:
            executor.execute(query_by_name("Q14"))
        assert excinfo.value.footprint_bytes > excinfo.value.budget_bytes

    def test_impossible_budget_degrades_to_kbe(self, tiny_db, amd):
        executor = ResilientExecutor(
            tiny_db, amd, memory_budget_bytes=1024.0
        )
        result = executor.execute(query_by_name("Q14"))
        report = result.resilience
        assert report.engine_used == "KBE"
        assert report.admission_rejections == 2  # gpl and gpl-woce
        assert_rows_close(
            result.sorted_rows(), reference_rows(tiny_db, "Q14")
        )


class TestDeterminism:
    """Same seed -> same fault schedule -> same report, twice over."""

    @pytest.mark.parametrize("name", ["Q5", "Q8", "Q14"])
    def test_seeded_runs_are_identical(self, tiny_db, amd, name):
        def run():
            plan = FaultPlan.from_seed(
                20160626, count=3, kinds=ABSORBABLE_KINDS
            )
            executor = ResilientExecutor(tiny_db, amd, fault_plan=plan)
            result = executor.execute(query_by_name(name))
            return (
                result.resilience.counters_dict(),
                executor.injector.fired,
                result.sorted_rows(),
            )

        counters_a, fired_a, rows_a = run()
        counters_b, fired_b, rows_b = run()
        assert counters_a == counters_b
        assert fired_a == fired_b  # identical schedule, point for point
        assert rows_a == rows_b

    def test_same_seed_same_plan_different_objects(self):
        plans = [
            FaultPlan.from_seed(7, count=4, kinds=ABSORBABLE_KINDS)
            for _ in range(2)
        ]
        assert plans[0] == plans[1]


class TestExecutorConfig:
    def test_rejects_empty_chain(self, tiny_db, amd):
        with pytest.raises(ReproError):
            ResilientExecutor(tiny_db, amd, engines=())

    def test_rejects_unknown_engine(self, tiny_db, amd):
        with pytest.raises(ReproError):
            ResilientExecutor(tiny_db, amd, engines=("duckdb",))

    def test_chain_order_is_gpl_first(self):
        assert ENGINE_CHAIN == ("gpl", "gpl-woce", "kbe")

    def test_clean_run_touches_nothing(self, tiny_db, amd):
        executor = ResilientExecutor(tiny_db, amd)
        result = executor.execute(query_by_name("Q14"))
        report = result.resilience
        assert report.counters_dict() == {
            "engine_used": "GPL",
            "retries": 0,
            "reconfigurations": 0,
            "fallbacks": 0,
            "admission_shrinks": 0,
            "admission_rejections": 0,
            "calibration_misses": 0,
            "deadline_exceeded": False,
            # Checkpoints are recorded even on clean runs (the first
            # attempt cannot know it will succeed); nothing is resumed.
            "segments_recorded": 3,
            "segments_resumed": 0,
            "segments_invalidated": 0,
            "faults_scheduled": 0,
            "faults_unfired": [],
            "faults_fired": {},
            "attempts": [("GPL", GPLConfig().tile_bytes, "ok")],
        }


class TestCLI:
    def test_resilient_run_reports(self, capsys):
        from repro.__main__ import main

        assert main(
            [
                "run", "Q14", "--scale", "0.002",
                "--inject-faults", "oom;stall",
                "--resilient",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "resilience report" in out
        assert "faults fired" in out

    def test_unhandled_fault_exits_2_with_one_line(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "Q14", "--scale", "0.002", "--inject-faults", "stall"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "PipelineDeadlockError" in err

    def test_bad_fault_spec_exits_2(self, capsys):
        from repro.__main__ import main

        code = main(
            ["run", "Q14", "--scale", "0.002", "--inject-faults", "segfault"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
