"""Tests for the shared runtime structures: HashTable, GroupAggState."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.plans import AggSpec
from repro.plans.runtime import (
    GroupAggState,
    HashTable,
    batch_bytes,
    batch_rows,
)
from repro.relational import col


class TestBatchHelpers:
    def test_rows(self):
        assert batch_rows({}) == 0
        assert batch_rows({"a": np.arange(5)}) == 5

    def test_bytes(self):
        batch = {"a": np.arange(4, dtype=np.int32)}
        assert batch_bytes(batch) == 16


class TestHashTable:
    def build(self):
        table = HashTable("k", ("k", "payload"))
        table.insert(
            {"k": np.array([2, 1, 2]), "payload": np.array([20.0, 10.0, 21.0])}
        )
        table.insert({"k": np.array([3]), "payload": np.array([30.0])})
        table.finalize()
        return table

    def test_incremental_build(self):
        table = self.build()
        assert table.num_rows == 4
        assert table.nbytes > 0

    def test_probe_single_match(self):
        table = self.build()
        probe_idx, build_idx = table.probe(np.array([1]))
        assert list(probe_idx) == [0]
        payload = table.payload_rows(build_idx)
        assert list(payload["payload"]) == [10.0]

    def test_probe_multi_match_expansion(self):
        table = self.build()
        probe_idx, build_idx = table.probe(np.array([2]))
        assert list(probe_idx) == [0, 0]
        payload = table.payload_rows(build_idx)
        assert sorted(payload["payload"]) == [20.0, 21.0]

    def test_probe_no_match(self):
        table = self.build()
        probe_idx, build_idx = table.probe(np.array([99, 98]))
        assert probe_idx.size == 0 and build_idx.size == 0

    def test_probe_mixed(self):
        table = self.build()
        probe_idx, build_idx = table.probe(np.array([9, 3, 2]))
        # key 9: none; key 3: one; key 2: two -> 3 matches
        assert list(probe_idx) == [1, 2, 2]

    def test_probe_before_finalize(self):
        table = HashTable("k", ("k",))
        table.insert({"k": np.array([1])})
        with pytest.raises(ExecutionError):
            table.probe(np.array([1]))

    def test_insert_after_finalize(self):
        table = self.build()
        with pytest.raises(ExecutionError):
            table.insert({"k": np.array([5]), "payload": np.array([1.0])})

    def test_empty_table(self):
        table = HashTable("k", ("k",))
        table.finalize()
        probe_idx, _ = table.probe(np.array([1, 2]))
        assert probe_idx.size == 0

    def test_key_not_in_payload(self):
        table = HashTable("k", ("v",))
        table.insert({"k": np.array([1, 2]), "v": np.array([5.0, 6.0])})
        table.finalize()
        _, build_idx = table.probe(np.array([2]))
        assert list(table.payload_rows(build_idx)["v"]) == [6.0]


class TestGroupAggState:
    def batch(self):
        return {
            "g": np.array([0, 1, 0, 1, 2]),
            "v": np.array([1.0, 2.0, 3.0, 4.0, 5.0]),
        }

    def test_grouped_sum_and_count(self):
        state = GroupAggState(
            ("g",),
            (AggSpec("total", "sum", col("v")), AggSpec("n", "count")),
        )
        state.update(self.batch())
        result = state.result()
        assert list(result["g"]) == [0, 1, 2]
        assert list(result["total"]) == [4.0, 6.0, 5.0]
        assert list(result["n"]) == [2.0, 2.0, 1.0]

    def test_streaming_equals_single_batch(self):
        whole = GroupAggState(("g",), (AggSpec("total", "sum", col("v")),))
        whole.update(self.batch())
        parts = GroupAggState(("g",), (AggSpec("total", "sum", col("v")),))
        batch = self.batch()
        for index in range(5):
            parts.update(
                {name: arr[index : index + 1] for name, arr in batch.items()}
            )
        assert list(whole.result()["total"]) == list(parts.result()["total"])

    def test_avg(self):
        state = GroupAggState(("g",), (AggSpec("mean", "avg", col("v")),))
        state.update(self.batch())
        assert list(state.result()["mean"]) == [2.0, 3.0, 5.0]

    def test_min_max(self):
        state = GroupAggState(
            ("g",),
            (AggSpec("lo", "min", col("v")), AggSpec("hi", "max", col("v"))),
        )
        state.update(self.batch())
        result = state.result()
        assert list(result["lo"]) == [1.0, 2.0, 5.0]
        assert list(result["hi"]) == [3.0, 4.0, 5.0]

    def test_global_aggregate(self):
        state = GroupAggState((), (AggSpec("total", "sum", col("v")),))
        state.update(self.batch())
        state.update(self.batch())
        result = state.result()
        assert list(result["total"]) == [30.0]

    def test_global_empty_input(self):
        state = GroupAggState((), (AggSpec("total", "sum", col("v")),))
        result = state.result()
        assert list(result["total"]) == [0.0]

    def test_grouped_empty_input(self):
        state = GroupAggState(("g",), (AggSpec("total", "sum", col("v")),))
        result = state.result()
        assert batch_rows(result) == 0

    def test_empty_batches_ignored(self):
        state = GroupAggState(("g",), (AggSpec("total", "sum", col("v")),))
        state.update({"g": np.array([]), "v": np.array([])})
        state.update(self.batch())
        assert state.num_groups == 3

    def test_multi_key_groups(self):
        state = GroupAggState(
            ("g", "h"), (AggSpec("n", "count"),)
        )
        state.update(
            {
                "g": np.array([0, 0, 1]),
                "h": np.array([0, 1, 0]),
                "v": np.array([1.0, 2.0, 3.0]),
            }
        )
        result = state.result()
        assert list(zip(result["g"], result["h"])) == [(0, 0), (0, 1), (1, 0)]

    def test_expression_aggregate(self):
        state = GroupAggState(
            (), (AggSpec("weighted", "sum", col("v") * col("g")),)
        )
        state.update(self.batch())
        assert list(state.result()["weighted"]) == [
            pytest.approx(0 + 2 + 0 + 4 + 10)
        ]
