"""Property-based tests on the analytical cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GPLConfig
from repro.gpu import AMD_A10, KernelSpec
from repro.model import (
    CostModel,
    KernelCostInput,
    SegmentCostInput,
    calibrate_channels,
)

MIB = 1024 * 1024

_MODEL = None


def model() -> CostModel:
    global _MODEL
    if _MODEL is None:
        _MODEL = CostModel(AMD_A10, calibrate_channels(AMD_A10))
    return _MODEL


def kernel(compute, memory, sel, leaf):
    return KernelCostInput(
        spec=KernelSpec(
            name="k",
            compute_instr=compute,
            memory_instr=memory,
            pm_per_workitem=32,
            lm_per_workitem=8,
        ),
        selectivity=sel,
        in_width=16,
        out_width=8,
        is_leaf=leaf,
    )


@st.composite
def segments(draw):
    num = draw(st.integers(min_value=1, max_value=4))
    kernels = []
    for index in range(num):
        kernels.append(
            kernel(
                compute=draw(st.floats(min_value=1, max_value=200)),
                memory=draw(st.floats(min_value=0, max_value=8)),
                sel=draw(st.floats(min_value=0.01, max_value=1.5)),
                leaf=index == 0,
            )
        )
    rows = draw(st.integers(min_value=1_000, max_value=2_000_000))
    return SegmentCostInput(
        name="seg", kernels=tuple(kernels), source_rows=rows, source_width=16
    )


class TestModelProperties:
    @given(segment=segments())
    @settings(max_examples=60, deadline=None)
    def test_estimates_finite_and_positive(self, segment):
        estimate = model().estimate_segment(segment, GPLConfig())
        assert estimate.total_cycles > 0
        assert estimate.delay_cycles >= 0
        assert estimate.num_tiles >= 1
        for kernel_estimate in estimate.kernels:
            assert kernel_estimate.compute_cycles >= 0
            assert kernel_estimate.memory_cycles >= 0

    @given(segment=segments())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_rows(self, segment):
        small = model().estimate_segment(segment, GPLConfig())
        bigger = SegmentCostInput(
            name=segment.name,
            kernels=segment.kernels,
            source_rows=segment.source_rows * 4,
            source_width=segment.source_width,
        )
        large = model().estimate_segment(bigger, GPLConfig())
        assert large.total_cycles > small.total_cycles

    @given(segment=segments())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_instruction_scale(self, segment):
        base = model().estimate_segment(segment, GPLConfig())
        scaled = SegmentCostInput(
            name=segment.name,
            kernels=tuple(
                KernelCostInput(
                    spec=k.spec.scaled(3.0),
                    selectivity=k.selectivity,
                    in_width=k.in_width,
                    out_width=k.out_width,
                    aux_reads_per_tuple=k.aux_reads_per_tuple,
                    aux_working_set_bytes=k.aux_working_set_bytes,
                    is_leaf=k.is_leaf,
                )
                for k in segment.kernels
            ),
            source_rows=segment.source_rows,
            source_width=segment.source_width,
        )
        heavier = model().estimate_segment(scaled, GPLConfig())
        assert heavier.total_cycles > base.total_cycles

    @given(
        segment=segments(),
        tile_kb=st.sampled_from([256, 1024, 4096, 16384]),
    )
    @settings(max_examples=40, deadline=None)
    def test_deterministic(self, segment, tile_kb):
        config = GPLConfig(tile_bytes=tile_kb * 1024)
        first = model().estimate_segment(segment, config)
        second = model().estimate_segment(segment, config)
        assert first.total_cycles == second.total_cycles
