"""Tests for physical operators: functional semantics + kernel expansions."""

import numpy as np
import pytest

from repro.plans import AggSpec
from repro.plans.physical import (
    AggSink,
    BuildSink,
    CollectSink,
    ComputeOp,
    FilterOp,
    ProbeOp,
    SortSink,
)
from repro.plans.runtime import ExecutionContext, batch_rows
from repro.relational import col, lit

WIDTHS = {"a": 8, "b": 8, "k": 4, "p": 8}


def batch():
    return {
        "a": np.array([1.0, 2.0, 3.0, 4.0]),
        "b": np.array([4.0, 3.0, 2.0, 1.0]),
        "k": np.array([0, 1, 0, 2], dtype=np.int32),
    }


class TestFilterOp:
    def make(self):
        op = FilterOp(col("a").ge(3.0))
        op.bind(["a", "b", "k"], ["b", "k"], WIDTHS, 0.5)
        return op

    def test_apply(self):
        out = self.make().apply(batch(), ExecutionContext())
        assert set(out) == {"b", "k"}
        assert list(out["b"]) == [2.0, 1.0]

    def test_widths(self):
        op = self.make()
        assert op.in_width == 20
        assert op.out_width == 12

    def test_gpl_single_map(self):
        kernels = self.make().gpl_kernels()
        assert len(kernels) == 1
        assert kernels[0].spec.name == "k_map"
        assert not kernels[0].spec.blocking
        # Pipelined map reads every carried column.
        assert kernels[0].spec.memory_instr == 3.0

    def test_kbe_three_kernels(self):
        kernels = self.make().kbe_kernels()
        names = [k.spec.name for k in kernels]
        assert names == ["k_map", "k_prefix_sum", "k_scatter"]
        assert kernels[1].spec.blocking  # prefix sum blocks
        # flag map writes a 4-byte flag per tuple
        assert kernels[0].out_width == 4

    def test_kbe_scatter_carries_selectivity(self):
        kernels = self.make().kbe_kernels()
        assert kernels[0].est_selectivity == 1.0
        assert kernels[2].est_selectivity == 0.5


class TestComputeOp:
    def make(self):
        op = ComputeOp((("s", col("a") + col("b")),))
        op.bind(["a", "b", "k"], ["k", "s"], WIDTHS, 1.0)
        return op

    def test_apply(self):
        out = self.make().apply(batch(), ExecutionContext())
        assert list(out["s"]) == [5.0, 5.0, 5.0, 5.0]
        assert set(out) == {"k", "s"}

    def test_scalar_broadcast(self):
        op = ComputeOp((("c", lit(7.0)),))
        op.bind(["a"], ["c"], WIDTHS, 1.0)
        out = op.apply({"a": np.arange(3.0)}, ExecutionContext())
        assert list(out["c"]) == [7.0, 7.0, 7.0]

    def test_kernels(self):
        op = self.make()
        assert len(op.gpl_kernels()) == 1
        assert len(op.kbe_kernels()) == 1
        assert op.gpl_kernels()[0].spec.memory_instr == 3.0


class TestProbeAndBuild:
    def context_with_table(self):
        context = ExecutionContext()
        sink = BuildSink("ht", "p", ("p", "payload"))
        sink.bind(["p", "payload"], {"p": 4, "payload": 8})
        sink.start(context)
        sink.consume(
            {
                "p": np.array([0, 1, 2], dtype=np.int32),
                "payload": np.array([10.0, 11.0, 12.0]),
            },
            context,
        )
        assert sink.finalize(context) is None
        return context

    def make_probe(self):
        op = ProbeOp("ht", "k", ("payload",))
        op.bind(["a", "k"], ["a", "payload"], {"a": 8, "k": 4, "payload": 8}, 1.0)
        return op

    def test_probe_apply(self):
        context = self.context_with_table()
        out = self.make_probe().apply(
            {"a": np.array([1.0, 2.0]), "k": np.array([2, 0], dtype=np.int32)},
            context,
        )
        assert list(out["payload"]) == [12.0, 10.0]
        assert list(out["a"]) == [1.0, 2.0]

    def test_probe_drops_nonmatching(self):
        context = self.context_with_table()
        out = self.make_probe().apply(
            {"a": np.array([1.0]), "k": np.array([99], dtype=np.int32)},
            context,
        )
        assert batch_rows(out) == 0

    def test_gpl_probe_kernel(self):
        kernels = self.make_probe().gpl_kernels()
        assert len(kernels) == 1
        assert kernels[0].spec.name == "k_probe"
        assert kernels[0].aux_build_id == "ht"
        assert kernels[0].aux_reads_per_tuple > 2.0

    def test_kbe_probe_kernels(self):
        names = [k.spec.name for k in self.make_probe().kbe_kernels()]
        assert names == ["k_probe_count", "k_prefix_sum", "k_probe_scatter"]

    def test_build_sink_kernels(self):
        sink = BuildSink("ht", "p", ("p",))
        sink.bind(["p"], {"p": 4})
        assert sink.gpl_kernels()[0].spec.name == "k_hash_build"

    def test_build_sink_lifecycle_errors(self):
        from repro.errors import ExecutionError

        sink = BuildSink("ht", "p", ("p",))
        with pytest.raises(ExecutionError):
            sink.consume({"p": np.array([1])}, ExecutionContext())


class TestAggSink:
    def make(self, keys=("k",)):
        sink = AggSink(keys, (AggSpec("total", "sum", col("a")),))
        sink.bind(["a", "k"], WIDTHS)
        return sink

    def test_grouped(self):
        context = ExecutionContext()
        sink = self.make()
        sink.start(context)
        sink.consume(batch(), context)
        result = sink.finalize(context)
        assert list(result["k"]) == [0, 1, 2]
        assert list(result["total"]) == [4.0, 2.0, 4.0]

    def test_gpl_kernel_is_group_accum(self):
        assert self.make().gpl_kernels()[0].spec.name == "k_group_accum"

    def test_gpl_global_is_reduce(self):
        assert self.make(()).gpl_kernels()[0].spec.name == "k_reduce*"

    def test_kbe_kernels_include_blocking_scan(self):
        kernels = self.make().kbe_kernels()
        assert [k.spec.name for k in kernels] == ["k_agg_map", "k_prefix_scan"]
        assert kernels[1].spec.blocking


class TestSortAndCollect:
    def test_sort_ascending_descending(self):
        context = ExecutionContext()
        sink = SortSink(("a",), (True,))
        sink.bind(["a", "b"], WIDTHS)
        sink.start(context)
        sink.consume(batch(), context)
        result = sink.finalize(context)
        assert list(result["a"]) == [4.0, 3.0, 2.0, 1.0]

    def test_sort_multiple_batches(self):
        context = ExecutionContext()
        sink = SortSink(("a",))
        sink.bind(["a"], WIDTHS)
        sink.start(context)
        sink.consume({"a": np.array([3.0, 1.0])}, context)
        sink.consume({"a": np.array([2.0])}, context)
        assert list(sink.finalize(context)["a"]) == [1.0, 2.0, 3.0]

    def test_sort_kernel_blocking(self):
        sink = SortSink(("a",))
        sink.bind(["a"], WIDTHS)
        assert sink.gpl_kernels()[0].spec.blocking

    def test_collect(self):
        context = ExecutionContext()
        sink = CollectSink()
        sink.bind(["a"], WIDTHS)
        sink.start(context)
        sink.consume({"a": np.array([1.0])}, context)
        sink.consume({"a": np.array([2.0])}, context)
        assert list(sink.finalize(context)["a"]) == [1.0, 2.0]
        assert sink.gpl_kernels() == []

    def test_collect_empty(self):
        context = ExecutionContext()
        sink = CollectSink()
        sink.bind(["a"], WIDTHS)
        sink.start(context)
        assert batch_rows(sink.finalize(context)) == 0
