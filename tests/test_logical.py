"""Tests for query specs and logical plan nodes."""

import pytest

from repro.errors import PlanError
from repro.plans import (
    AggSpec,
    GroupAggregate,
    Join,
    JoinEdge,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    Select,
    TableRef,
)
from repro.relational import col
from repro.tpch import q5, q7, q8, q9, q14


class TestAggSpec:
    def test_valid_functions(self):
        for func in ("sum", "count", "avg", "min", "max"):
            AggSpec("x", func, col("a"))

    def test_unknown_function(self):
        with pytest.raises(PlanError):
            AggSpec("x", "median", col("a"))

    def test_count_star(self):
        AggSpec("n", "count")  # no expression needed

    def test_sum_requires_expression(self):
        with pytest.raises(PlanError):
            AggSpec("x", "sum")


class TestJoinEdge:
    def test_helpers(self):
        edge = JoinEdge("l", "lk", "r", "rk")
        assert edge.touches("l") and edge.touches("r")
        assert not edge.touches("x")
        assert edge.other("l") == "r"
        assert edge.key_for("l") == "lk"
        assert edge.key_for("r") == "rk"

    def test_bad_alias(self):
        edge = JoinEdge("l", "lk", "r", "rk")
        with pytest.raises(PlanError):
            edge.other("x")
        with pytest.raises(PlanError):
            edge.key_for("x")


class TestTableRef:
    def test_rename_applies(self, tiny_db):
        ref = TableRef("nation", "n1", rename={"n_name": "n1_name"})
        schema = ref.renamed_schema(tiny_db.table("nation").schema)
        assert "n1_name" in schema
        assert "n_name" not in schema


class TestQuerySpecValidation:
    def _tables(self):
        return (
            TableRef("lineitem", "lineitem"),
            TableRef("part", "part"),
        )

    def test_duplicate_alias(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                tables=(TableRef("part", "p"), TableRef("orders", "p")),
                join_edges=(),
                fact="p",
            )

    def test_unknown_fact(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad", tables=self._tables(), join_edges=(), fact="zzz"
            )

    def test_edge_references_unknown_alias(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                tables=self._tables(),
                join_edges=(JoinEdge("lineitem", "l_partkey", "ghost", "x"),),
                fact="lineitem",
            )

    def test_filter_references_unknown_alias(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                tables=self._tables(),
                join_edges=(),
                fact="lineitem",
                filters={"ghost": col("x").eq(1)},
            )

    def test_table_ref_lookup(self):
        spec = q14()
        assert spec.table_ref("part").table == "part"
        with pytest.raises(PlanError):
            spec.table_ref("ghost")

    def test_num_joins(self):
        assert q14().num_joins == 1
        assert q5().num_joins == 5
        assert q8().num_joins == 7


class TestWorkloadSpecs:
    @pytest.mark.parametrize("factory", [q5, q7, q8, q9, q14])
    def test_all_fact_is_lineitem(self, factory):
        assert factory().fact == "lineitem"

    def test_q14_selectivity_parameter(self):
        default = q14()
        swept = q14(selectivity=0.5)
        assert default.filters["lineitem"] != swept.filters["lineitem"]
        with pytest.raises(ValueError):
            q14(selectivity=0.0)
        with pytest.raises(ValueError):
            q14(selectivity=1.5)

    def test_q7_has_two_nation_aliases(self):
        aliases = [ref.alias for ref in q7().tables]
        assert "n1" in aliases and "n2" in aliases

    def test_q9_residual_composite_key(self):
        spec = q9()
        assert spec.residual_filters, "Q9 needs the ps_suppkey residual"


class TestPlanTree:
    def test_post_order(self):
        ref = TableRef("part", "part")
        tree = OrderBy(
            GroupAggregate(
                Select(Scan(ref), col("p_size").gt(10)),
                ("p_type",),
                (AggSpec("n", "count"),),
            ),
            ("n",),
        )
        nodes = tree.post_order()
        kinds = [type(node).__name__ for node in nodes]
        assert kinds == ["Scan", "Select", "GroupAggregate", "OrderBy"]

    def test_join_children(self):
        left = Scan(TableRef("lineitem", "lineitem"))
        right = Scan(TableRef("part", "part"))
        join = Join(left, right, "l_partkey", "p_partkey")
        assert join.children() == (left, right)

    def test_describe_nested(self):
        tree = Select(
            Scan(TableRef("nation", "n1", rename={"n_name": "n1_name"})),
            col("n1_name").eq(1),
        )
        text = tree.describe()
        assert "Scan(nation AS n1)" in text
        assert "Select" in text

    def test_project_label(self):
        node = Project(
            Scan(TableRef("part", "part")), (("x", col("p_size")),)
        )
        assert "Project(x)" in node.describe()
