"""Tests for repro.obs: tracing, metrics, drift, and the obs CLI.

The load-bearing properties: traces are deterministic (two identical
runs serialize byte-identically), one serve drain produces spans from
all five layers, the metrics registry enforces the catalogue, and the
drift recorder reproduces Fig 11's predicted-vs-measured numbers from
serving telemetry alone.
"""

import json

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.model import (
    ConfigurationSearch,
    calibrate_channels,
    clear_calibration_cache,
    clear_search_cache,
    plan_cost_inputs,
)
from repro.obs import (
    CATEGORY_TRACKS,
    DriftRecord,
    DriftRecorder,
    MetricsRegistry,
    Tracer,
    add_event,
    current_tracer,
    load_trace,
    maybe_span,
    metric_catalogue,
    summarize_trace,
    use_tracer,
)
from repro.serve import QueryService
from repro.tpch import q5


def _clear_model_caches():
    clear_search_cache()
    clear_calibration_cache()


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------


class TestTracer:
    def test_nesting_and_clock(self):
        tracer = Tracer()
        with tracer.span("outer", category="serve", query="Q5") as outer:
            tracer.advance(10.0)
            with tracer.span("inner", category="simulator") as inner:
                tracer.advance(5.0)
        assert tracer.roots == [outer]
        assert outer.children == [inner]
        assert outer.start == 0.0 and outer.end == 15.0
        assert inner.start == 10.0 and inner.end == 15.0
        assert outer.attrs == {"query": "Q5"}
        assert tracer.num_spans() == 2
        assert tracer.categories() == ["serve", "simulator"]

    def test_zero_duration_span_ticks_one_cycle(self):
        tracer = Tracer()
        with tracer.span("noop", category="plan") as span:
            pass
        assert span.duration == 1.0
        assert tracer.clock == 1.0

    def test_clock_never_moves_backward(self):
        tracer = Tracer()
        tracer.advance(5.0)
        tracer.advance(-3.0)
        assert tracer.clock == 5.0

    def test_events_attach_to_open_span(self):
        tracer = Tracer()
        with tracer.span("s", category="resilience") as span:
            tracer.advance(2.0)
            tracer.event("retry", engine="GPL")
        assert len(span.events) == 1
        assert span.events[0].name == "retry"
        assert span.events[0].ts == 2.0
        assert span.events[0].attrs == {"engine": "GPL"}

    def test_add_span_explicit_timestamps(self):
        tracer = Tracer()
        with tracer.span("seg", category="simulator"):
            child = tracer.add_span(
                "stage", category="simulator", start=3.0, end=1.0
            )
        assert child.start == 3.0
        assert child.end == 3.0  # end clamped to start

    def test_ambient_install_and_noop(self):
        assert current_tracer() is None
        with maybe_span("x", category="plan") as span:
            assert span is None
        add_event("ignored")  # must not raise without a tracer
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
            with maybe_span("x", category="plan") as span:
                assert span is not None
        assert current_tracer() is None
        assert tracer.num_spans() == 1


class TestPerfettoExport:
    def make_tracer(self):
        tracer = Tracer()
        with tracer.span("drain", category="serve"):
            tracer.advance(4.0)
            tracer.event("mark", detail=1)
            with tracer.span("seg", category="simulator"):
                tracer.advance(2.0)
        return tracer

    def test_schema(self):
        payload = self.make_tracer().to_perfetto()
        events = payload["traceEvents"]
        metadata = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {m["args"]["name"] for m in metadata} == set(CATEGORY_TRACKS)
        assert len(spans) == 2 and len(instants) == 1
        for span in spans:
            assert {"args", "cat", "dur", "name", "ph", "pid", "tid", "ts"} <= (
                set(span)
            )
            assert span["tid"] == CATEGORY_TRACKS[span["cat"]]
        assert instants[0]["s"] == "t"

    def test_byte_identical_serialization(self):
        assert self.make_tracer().to_json() == self.make_tracer().to_json()

    def test_write_and_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.json")
        tracer = self.make_tracer()
        tracer.write_json(path)
        payload = load_trace(path)
        assert payload == tracer.to_perfetto()

    def test_load_trace_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError):
            load_trace(str(path))

    def test_summarize(self):
        payload = self.make_tracer().to_perfetto()
        text = summarize_trace(payload, top=1)
        assert "2 spans, 1 events" in text
        assert "serve" in text and "simulator" in text
        filtered = summarize_trace(payload, category="simulator")
        assert "seg" in filtered and "drain" not in filtered
        assert "no spans" in summarize_trace(payload, category="plan")


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_catalogue_is_registry_surface(self):
        registry = MetricsRegistry()
        assert registry.names() == sorted(
            spec.name for spec in metric_catalogue()
        )

    def test_counter_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve_queries_total")
        counter.inc(status="ok")
        counter.inc(2, status="ok")
        counter.inc(status="failed")
        assert counter.value(status="ok") == 3.0
        assert counter.value(status="failed") == 1.0

    def test_label_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("serve_queries_total").inc()  # missing label
        with pytest.raises(ValueError):
            registry.counter("serve_rounds_total").inc(status="ok")  # extra
        with pytest.raises(ValueError):
            registry.counter("serve_queries_total").inc(-1, status="ok")

    def test_typed_lookup(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter("not_a_metric")
        with pytest.raises(TypeError):
            registry.counter("serve_wait_ms")  # histogram, not counter
        with pytest.raises(TypeError):
            registry.histogram("serve_rounds_total")

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("model_drift_relative_error")
        for value in (0.005, 0.05, 0.05, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(5.105)
        cumulative = dict(snapshot["buckets"])
        assert cumulative[0.01] == 1
        assert cumulative[0.05] == 3
        assert cumulative[2.0] == 3
        assert cumulative[float("inf")] == 4

    def test_json_export_omits_untouched(self):
        registry = MetricsRegistry()
        registry.counter("serve_rounds_total").inc()
        registry.histogram("serve_wait_ms").observe(1.5)
        out = registry.to_json()
        assert set(out) == {"serve_rounds_total", "serve_wait_ms"}
        assert out["serve_rounds_total"]["series"] == [
            {"labels": {}, "value": 1.0}
        ]
        assert out["serve_wait_ms"]["series"][0]["count"] == 1

    def test_prometheus_export(self):
        registry = MetricsRegistry()
        registry.counter("serve_queries_total").inc(status="ok")
        registry.histogram("serve_wait_ms").observe(0.3)
        text = registry.to_prometheus()
        assert "# TYPE serve_queries_total counter" in text
        assert 'serve_queries_total{status="ok"} 1' in text
        assert "# TYPE serve_wait_ms histogram" in text
        assert 'serve_wait_ms_bucket{le="0.5"} 1' in text
        assert 'serve_wait_ms_bucket{le="+Inf"} 1' in text
        assert "serve_wait_ms_count 1" in text


# ---------------------------------------------------------------------------
# drift
# ---------------------------------------------------------------------------


class TestDrift:
    def test_record_math(self):
        under = DriftRecord("Q5", "amd", 1 << 20, 80.0, 100.0)
        assert under.relative_error == pytest.approx(0.2)
        assert under.underestimated and under.direction == "under"
        over = DriftRecord("Q5", "amd", 1 << 20, 120.0, 100.0)
        assert over.relative_error == pytest.approx(0.2)
        assert not over.underestimated and over.direction == "over"
        exact = DriftRecord("Q5", "amd", 1 << 20, 100.0, 100.0)
        assert exact.relative_error == 0.0 and exact.direction == "exact"
        degenerate = DriftRecord("Q5", "amd", 1 << 20, 10.0, 0.0)
        assert degenerate.relative_error == 0.0

    def test_summaries(self):
        recorder = DriftRecorder()
        recorder.record("Q5", "amd", 1 << 20, 80.0, 100.0)
        recorder.record("Q5", "amd", 1 << 20, 110.0, 100.0)
        recorder.record("Q7", "amd", 1 << 20, 50.0, 100.0)
        assert len(recorder) == 3
        per_query = recorder.per_query()
        assert list(per_query) == ["Q5", "Q7"]
        assert per_query["Q5"]["observations"] == 2
        assert per_query["Q5"]["mean_relative_error"] == pytest.approx(0.15)
        assert per_query["Q5"]["underestimated_share"] == pytest.approx(0.5)
        overall = recorder.overall()
        assert overall["observations"] == 3
        assert overall["max_relative_error"] == pytest.approx(0.5)
        assert overall["underestimated_share"] == pytest.approx(2 / 3)

    def test_empty_overall(self):
        assert DriftRecorder().overall() == {
            "observations": 0,
            "mean_relative_error": 0.0,
            "max_relative_error": 0.0,
            "underestimated_share": 0.0,
        }

    def test_feeds_registry(self):
        registry = MetricsRegistry()
        recorder = DriftRecorder(registry=registry)
        recorder.record("Q5", "amd", 1 << 20, 80.0, 100.0)
        recorder.record("Q5", "amd", 1 << 20, 100.0, 100.0)
        counter = registry.counter("model_drift_observations_total")
        assert counter.value(direction="under") == 1.0
        assert counter.value(direction="exact") == 1.0
        assert registry.histogram(
            "model_drift_relative_error"
        ).snapshot()["count"] == 2


# ---------------------------------------------------------------------------
# end-to-end: one serve drain, all five layers, byte-identical
# ---------------------------------------------------------------------------


class TestServeTracing:
    def drain(self, db):
        _clear_model_caches()
        tracer = Tracer()
        service = QueryService(db, AMD_A10, max_concurrent=2)
        with use_tracer(tracer):
            service.run([q5(), q5()])
        return tracer

    def test_all_five_layers_and_determinism(self, tiny_db):
        first = self.drain(tiny_db)
        assert first.categories() == [
            "plan",
            "resilience",
            "search",
            "serve",
            "simulator",
        ]
        names = {span.name for span in first.walk()}
        assert {
            "serve.drain",
            "serve.plan",
            "serve.round",
            "serve.query",
            "plan.prepare",
            "search.segment",
            "resilience.execute",
            "sim.segment",
            "sim.stage",
        } <= names
        second = self.drain(tiny_db)
        assert first.to_json() == second.to_json()

    def test_report_carries_metrics_and_drift(self, tiny_db):
        _clear_model_caches()
        service = QueryService(tiny_db, AMD_A10, max_concurrent=2)
        report = service.run([q5(), q5()])
        assert report.metrics["serve_queries_total"]["series"] == [
            {"labels": {"status": "ok"}, "value": 2.0}
        ]
        assert report.metrics["serve_drains_total"]["series"][0]["value"] == 1.0
        assert report.drift["overall"]["observations"] == 2
        assert "cost-model drift" in report.to_text()
        assert registry_names_subset(report.metrics)

    def test_fig11_parity_from_serve_telemetry(self, tiny_db):
        """A tuned serve drain reproduces the Fig 11 two-pass numbers."""
        _clear_model_caches()
        service = QueryService(
            tiny_db, AMD_A10, max_concurrent=1, resilient=False, tuned=True
        )
        service.run([q5()])
        observation = service.drift.records[0]

        # The dedicated-experiment computation (benchmarks/test_fig11):
        # model-optimal configs, predicted cycles, one measured run.
        probe = GPLEngine(tiny_db, AMD_A10)
        plan = probe.prepare(q5())
        segments = plan_cost_inputs(plan, tiny_db)
        search = ConfigurationSearch(AMD_A10, calibrate_channels(AMD_A10))
        configs, predicted = search.optimize_plan(segments)
        measured = (
            GPLEngine(tiny_db, AMD_A10, segment_configs=configs)
            .execute(q5())
            .counters.elapsed_cycles
        )

        assert observation.predicted_cycles == pytest.approx(predicted)
        assert observation.measured_cycles == pytest.approx(measured)
        assert observation.underestimated == (predicted < measured)


def registry_names_subset(metrics_json):
    """Every exported metric name must come from the catalogue."""
    return set(metrics_json) <= {spec.name for spec in metric_catalogue()}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def serve_args(self, out_path):
        return [
            "serve",
            "--queries",
            "Q5",
            "--repeat",
            "1",
            "--scale",
            "0.002",
            "--max-concurrent",
            "1",
            "--trace-out",
            out_path,
        ]

    def test_run_trace_out(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "run.json")
        assert main(
            ["run", "Q14", "--scale", "0.002", "--trace-out", path]
        ) == 0
        out = capsys.readouterr().out
        assert "wrote" in out and "spans" in out
        payload = load_trace(path)
        categories = {
            e.get("cat") for e in payload["traceEvents"] if e.get("ph") == "X"
        }
        assert {"plan", "simulator"} <= categories

    def test_serve_trace_out_byte_identical(self, tmp_path, capsys):
        from repro.__main__ import main

        first = str(tmp_path / "a.json")
        second = str(tmp_path / "b.json")
        _clear_model_caches()
        assert main(self.serve_args(first)) == 0
        _clear_model_caches()
        assert main(self.serve_args(second)) == 0
        capsys.readouterr()
        with open(first, "rb") as fa, open(second, "rb") as fb:
            assert fa.read() == fb.read()
        categories = {
            e.get("cat")
            for e in load_trace(first)["traceEvents"]
            if e.get("ph") == "X"
        }
        assert {"serve", "plan", "search", "resilience", "simulator"} <= (
            categories
        )

    def test_obs_summarizes(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "t.json")
        tracer = Tracer()
        with tracer.span("drain", category="serve"):
            tracer.advance(3.0)
        tracer.write_json(path)
        assert main(["obs", path]) == 0
        out = capsys.readouterr().out
        assert "1 spans" in out and "drain" in out

    def test_obs_missing_file_is_typed_error(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["obs", str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err
