"""Serving resilience: breakers, backpressure, deadlines, fault audit.

The contract: every way a query can leave the service — ``ok``,
``failed``, ``deadline``, ``shed`` — is distinguishable in the report
counters, the Prometheus export, and the CLI exit code; circuit
breakers degrade repeat offenders to KBE without dropping them; the
bounded queue sheds deterministically per policy; and every drain
audits its fault schedule (scheduled vs fired vs unfired).
"""

import dataclasses

import pytest

from repro.errors import ReproError
from repro.faults import FaultPlan
from repro.gpu import AMD_A10
from repro.serve import (
    BREAKER_STATES,
    CircuitBreaker,
    QUEUE_POLICIES,
    QueryService,
)
from repro.tpch import q5, q9, q14, query_by_name


def service_for(db, **kwargs):
    kwargs.setdefault("max_concurrent", 4)
    return QueryService(db, AMD_A10, **kwargs)


class TestCircuitBreakerUnit:
    def test_validates_parameters(self):
        for bad in ({"threshold": 0}, {"cooldown": 0}, {"probe_budget": 0}):
            with pytest.raises(ValueError):
                CircuitBreaker(**bad)

    def test_trips_only_on_consecutive_faults(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.on_arrival(); breaker.on_result(fault=True)
        breaker.on_arrival(); breaker.on_result(fault=False)  # resets
        breaker.on_arrival(); breaker.on_result(fault=True)
        assert breaker.state == "closed"
        breaker.on_arrival(); breaker.on_result(fault=True)
        assert breaker.state == "open"
        assert breaker.trips == 1

    def test_open_serves_cooldown_degraded_then_half_opens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2, probe_budget=1)
        breaker.on_arrival(); breaker.on_result(fault=True)
        assert breaker.state == "open"
        assert breaker.on_arrival() == "degraded"
        assert breaker.on_arrival() == "degraded"
        assert breaker.on_arrival() == "full"  # half-open probe
        assert breaker.state == "half-open"
        assert breaker.degraded_served == 2

    def test_successful_probe_closes_failing_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1, probe_budget=1)
        breaker.on_arrival(); breaker.on_result(fault=True)
        breaker.on_arrival()  # degraded (cooldown)
        breaker.on_result(fault=False)  # degraded results never count
        assert breaker.on_arrival() == "full"
        breaker.on_result(fault=True)  # probe faulted
        assert breaker.state == "open"
        breaker.on_arrival()  # degraded again
        assert breaker.on_arrival() == "full"
        breaker.on_result(fault=False)  # clean probe
        assert breaker.state == "closed"

    def test_transitions_drain_in_order(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1, probe_budget=1)
        breaker.on_arrival(); breaker.on_result(fault=True)
        breaker.on_arrival()
        breaker.on_arrival(); breaker.on_result(fault=False)
        assert breaker.drain_transitions() == ["open", "half-open", "closed"]
        assert breaker.drain_transitions() == []
        assert all(state in BREAKER_STATES for state in ("open", "half-open"))


class TestBreakerService:
    def test_breaker_degrades_repeat_offender(self, tiny_db):
        service = service_for(
            tiny_db,
            fault_plan=FaultPlan.parse("stall@main,times=10"),
            breaker_threshold=2,
            breaker_cooldown=2,
        )
        report = service.run([q14() for _ in range(6)])
        assert report.completed == 6  # degraded, never dropped
        assert report.breaker_degraded >= 1
        degraded = [r for r in report.records if r.breaker_degraded]
        assert all(r.engine == "KBE" for r in degraded)
        assert report.breaker == {"Q14": service._breakers["Q14"].state}

    def test_degraded_rows_match_clean_rows(self, tiny_db):
        faulty = service_for(
            tiny_db,
            fault_plan=FaultPlan.parse("stall@main,times=10"),
            breaker_threshold=1,
            breaker_cooldown=4,
        )
        faulty.run([q14() for _ in range(3)])
        reference = service_for(tiny_db).submit(q14()).sorted_rows()
        for ticket in sorted(faulty.results):
            assert faulty.results[ticket].sorted_rows() == reference

    def test_breaker_disabled_when_threshold_none(self, tiny_db):
        service = service_for(
            tiny_db,
            fault_plan=FaultPlan.parse("stall@main,times=10"),
            breaker_threshold=None,
        )
        report = service.run([q14() for _ in range(4)])
        assert report.breaker_degraded == 0
        assert report.breaker == {}

    def test_deadline_errors_do_not_trip_breaker(self, tiny_db):
        service = service_for(
            tiny_db, breaker_threshold=1, default_deadline_cycles=100.0
        )
        report = service.run([q14() for _ in range(3)])
        assert report.deadline_exceeded == 3
        assert report.breaker_degraded == 0
        assert service._breakers["Q14"].state == "closed"


class TestBoundedQueue:
    def test_queue_policies_constant(self):
        assert QUEUE_POLICIES == ("reject", "shed-oldest")
        with pytest.raises(ReproError):
            service_for(None, queue_policy="drop-newest")
        with pytest.raises(ReproError):
            service_for(None, max_pending=0)

    def test_reject_sheds_arriving_query(self, tiny_db):
        service = service_for(tiny_db, max_pending=2, queue_policy="reject")
        tickets = [service.enqueue(q) for q in (q5(), q9(), q14())]
        assert service.pending == 2
        report = service.drain()
        shed = [r for r in report.records if r.outcome == "shed"]
        assert [r.index for r in shed] == [tickets[2]]  # the newest
        assert shed[0].query == "Q14"
        assert shed[0].round == -1 and not shed[0].ok
        assert tickets[2] not in service.results

    def test_shed_oldest_drops_head_of_queue(self, tiny_db):
        service = service_for(
            tiny_db, max_pending=2, queue_policy="shed-oldest"
        )
        tickets = [service.enqueue(q) for q in (q5(), q9(), q14())]
        report = service.drain()
        shed = [r for r in report.records if r.outcome == "shed"]
        assert [r.index for r in shed] == [tickets[0]]  # the oldest
        assert report.shed == 1 and report.completed == 2
        assert tickets[2] in service.results

    def test_sync_submit_bypasses_backpressure(self, tiny_db):
        service = service_for(tiny_db, max_pending=1)
        service.enqueue(q5())
        result = service.submit(q14())  # full queue, still answered
        assert result.num_rows > 0
        assert service.pending == 1


class TestOutcomeDistinguishability:
    """One drain, four fates — every surface tells them apart."""

    def _mixed_report(self, db):
        service = service_for(
            db,
            max_pending=3,
            queue_policy="reject",
            resilient=False,
        )
        service.enqueue(q5())
        service.enqueue(
            dataclasses.replace(q9(), deadline_cycles=100.0)
        )
        service.enqueue(q14(), fault_plan=FaultPlan.parse("abort@*:*"))
        service.enqueue(q14())  # over max_pending: shed
        return service, service.drain()

    def test_counters_partition_outcomes(self, tiny_db):
        service, report = self._mixed_report(tiny_db)
        counters = report.counters_dict()
        assert counters["outcomes"] == {
            "ok": 1, "failed": 1, "deadline": 1, "shed": 1, "cached": 0,
        }
        assert report.completed == 1
        assert report.hard_failures == 1
        assert report.deadline_exceeded == 1
        assert report.shed == 1
        # Schedule tuples carry the outcome per record.
        outcomes = {t[0]: t[6] for t in counters["schedule"]}
        assert sorted(outcomes.values()) == [
            "deadline", "failed", "ok", "shed",
        ]

    def test_prometheus_export_distinguishes(self, tiny_db):
        service, report = self._mixed_report(tiny_db)
        text = service.registry.to_prometheus()
        assert 'serve_queries_total{status="ok"} 1' in text
        assert 'serve_queries_total{status="failed"} 1' in text
        assert 'serve_queries_total{status="deadline"} 1' in text
        assert 'serve_queries_total{status="shed"} 1' in text
        assert "serve_deadline_exceeded_total 1" in text
        assert 'serve_shed_total{policy="reject"} 1' in text

    def test_to_text_labels_every_fate(self, tiny_db):
        _, report = self._mixed_report(tiny_db)
        text = report.to_text()
        assert "DEADLINE" in text
        assert "SHED" in text
        assert "FAILED" in text
        assert "resilience: 1 deadline-exceeded | 1 shed" in text


class TestCLIServeExitCodes:
    def test_deadline_only_exits_3(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve", "--queries", "Q14", "--repeat", "1",
                "--scale", "0.002", "--deadline-cycles", "100",
            ]
        )
        assert code == 3
        assert "DEADLINE" in capsys.readouterr().out

    def test_shed_only_exits_4(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve", "--queries", "Q5,Q9,Q14", "--repeat", "1",
                "--scale", "0.002", "--max-pending", "2",
                "--queue-policy", "shed-oldest",
            ]
        )
        assert code == 4
        assert "SHED" in capsys.readouterr().out

    def test_hard_failure_outranks_both(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "serve", "--queries", "Q5,Q14", "--repeat", "1",
                "--scale", "0.002", "--no-resilient",
                "--inject-faults", "abort@*:*",
                "--max-pending", "1", "--queue-policy", "reject",
            ]
        )
        assert code == 1


class TestFaultAudit:
    def test_unfired_faults_reported(self, tiny_db):
        service = service_for(
            tiny_db,
            fault_plan=FaultPlan.parse("oom@no_such_segment,times=3"),
        )
        report = service.run([q14()])
        assert report.faults_scheduled == 3
        assert report.faults_fired_total == 0
        assert len(report.faults_unfired) == 1
        assert "unfired" in report.to_text()

    def test_exhausted_schedule_reports_all_fired(self, tiny_db):
        service = service_for(tiny_db, fault_plan=FaultPlan.parse("oom"))
        report = service.run([q14()])
        assert report.faults_scheduled == 1
        assert report.faults_fired_total == 1
        assert report.faults_unfired == []
        assert "all 1 scheduled firings fired" in report.to_text()


class TestSoakSmoke:
    def test_tiny_soak_is_deterministic(self, tmp_path):
        import importlib.util
        import json
        import pathlib

        script = (
            pathlib.Path(__file__).resolve().parent.parent
            / "scripts" / "soak.py"
        )
        spec = importlib.util.spec_from_file_location("_soak", script)
        soak = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(soak)

        out = tmp_path / "SOAK_test.json"
        code = soak.main(
            [
                "--queries", "25", "--runs", "2", "--scale", "0.002",
                "--quiet", "--out", str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["submitted"] == 25
        assert sum(payload["outcomes"].values()) == 25
        assert payload["faults_fired"] <= payload["faults_scheduled"]
        # The recorded baseline re-verifies against itself.
        assert soak.check(str(out), verbose=False) == 0
