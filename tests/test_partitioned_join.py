"""Tests for the partitioned hash join extension (paper Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GPLEngine
from repro.errors import ExecutionError
from repro.kbe import KBEEngine
from repro.plans import SelingerOptimizer, lower
from repro.plans.physical import PartitionOp, PartitionedBuildSink, ProbeOp
from repro.plans.runtime import ExecutionContext, HashTable, PartitionedHashTable
from repro.tpch import q9, query_by_name, reference_answer

from .conftest import assert_rows_close

int_arrays = st.lists(
    st.integers(min_value=0, max_value=100), min_size=0, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.int64))


class TestPartitionedHashTable:
    def build(self, keys, num_partitions=4):
        table = PartitionedHashTable("k", ("k", "v"), num_partitions)
        table.insert(
            {
                "k": np.asarray(keys, dtype=np.int64),
                "v": np.asarray(keys, dtype=np.float64) * 10.0,
            }
        )
        table.finalize()
        return table

    def test_basic_probe(self):
        table = self.build([1, 2, 3, 2])
        probe_idx, build_idx = table.probe(np.array([2, 9]))
        assert list(probe_idx) == [0, 0]
        payload = table.payload_rows(build_idx)
        assert sorted(payload["v"]) == [20.0, 20.0]

    def test_row_and_byte_counts(self):
        table = self.build(range(100))
        assert table.num_rows == 100
        assert table.nbytes > 0
        assert table.probe_working_set <= table.nbytes

    def test_partition_bound(self):
        table = self.build(range(1000), num_partitions=8)
        # The largest partition is far smaller than the whole table.
        assert table.probe_working_set < table.nbytes / 2

    def test_lifecycle_errors(self):
        table = PartitionedHashTable("k", ("k",), 4)
        with pytest.raises(ExecutionError):
            table.probe(np.array([1]))
        table.finalize()
        with pytest.raises(ExecutionError):
            table.insert({"k": np.array([1])})

    def test_bad_partition_count(self):
        with pytest.raises(ExecutionError):
            PartitionedHashTable("k", ("k",), 0)

    def test_empty(self):
        table = PartitionedHashTable("k", ("k",), 4)
        table.finalize()
        probe_idx, _ = table.probe(np.array([1, 2, 3]))
        assert probe_idx.size == 0

    @given(build=int_arrays, probe=int_arrays)
    @settings(max_examples=60, deadline=None)
    def test_equivalent_to_flat_table(self, build, probe):
        """Partitioned and flat tables give identical join results."""
        flat = HashTable("k", ("k",))
        flat.insert({"k": build})
        flat.finalize()
        parted = PartitionedHashTable("k", ("k",), 8)
        parted.insert({"k": build})
        parted.finalize()

        fi, fb = flat.probe(probe)
        pi, pb = parted.probe(probe)
        flat_pairs = sorted(
            zip(fi.tolist(), flat.payload_rows(fb)["k"].tolist())
        )
        part_pairs = sorted(
            zip(pi.tolist(), parted.payload_rows(pb)["k"].tolist())
        )
        assert flat_pairs == part_pairs


class TestPartitionOp:
    def test_reorders_but_preserves_rows(self):
        op = PartitionOp("k", 4)
        op.bind(["k", "v"], ["k", "v"], {"k": 4, "v": 8}, 1.0)
        batch = {
            "k": np.arange(100, dtype=np.int64),
            "v": np.arange(100, dtype=np.float64),
        }
        out = op.apply(batch, ExecutionContext())
        # multiset preserved, rows stay aligned
        assert sorted(out["k"]) == sorted(batch["k"])
        assert np.array_equal(out["v"], out["k"].astype(np.float64))

    def test_clusters_by_partition(self):
        op = PartitionOp("k", 4)
        op.bind(["k"], ["k"], {"k": 4}, 1.0)
        out = op.apply(
            {"k": np.arange(64, dtype=np.int64)}, ExecutionContext()
        )
        parts = (out["k"] * np.int64(2654435761)) % 4
        # partition ids are non-decreasing after clustering
        assert all(b >= a for a, b in zip(parts, parts[1:]))

    def test_kernels(self):
        op = PartitionOp("k", 16)
        op.bind(["k"], ["k"], {"k": 4}, 1.0)
        gpl = op.gpl_kernels()
        assert len(gpl) == 1 and gpl[0].spec.name == "k_partition"
        assert not gpl[0].spec.blocking
        kbe = [k.spec.name for k in op.kbe_kernels()]
        assert kbe == ["k_histogram", "k_prefix_sum", "k_scatter"]


class TestLoweringWithPartitions:
    def test_large_builds_partitioned(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(q9())
        plan = lower(
            optimized, small_db,
            partitioned_joins=True,
            partition_threshold_rows=10_000,
        )
        partitioned_sinks = [
            p for p in plan.pipelines
            if isinstance(p.sink, PartitionedBuildSink)
        ]
        assert partitioned_sinks, "orders/partsupp must partition"
        main = plan.pipeline("main")
        partition_ops = [
            op for op in main.ops if isinstance(op, PartitionOp)
        ]
        assert len(partition_ops) == len(partitioned_sinks)

    def test_small_builds_stay_flat(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(q9())
        plan = lower(
            optimized, small_db,
            partitioned_joins=True,
            partition_threshold_rows=10_000,
        )
        nation_build = next(
            p for p in plan.pipelines if p.pipeline_id.endswith("nation")
        )
        assert not isinstance(nation_build.sink, PartitionedBuildSink)

    def test_disabled_by_default(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(q9())
        plan = lower(optimized, small_db)
        assert not any(
            isinstance(p.sink, PartitionedBuildSink) for p in plan.pipelines
        )

    def test_probe_marks_partitioning(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(q9())
        plan = lower(
            optimized, small_db,
            partitioned_joins=True,
            partition_threshold_rows=10_000,
        )
        main = plan.pipeline("main")
        partitioned_probes = [
            op
            for op in main.ops
            if isinstance(op, ProbeOp) and op.partitioned
        ]
        assert partitioned_probes
        for probe in partitioned_probes:
            assert probe.num_partitions == 16
            template = probe.gpl_kernels()[0]
            assert template.aux_partitions == 16


class TestEngineCorrectness:
    @pytest.mark.parametrize("name", ["Q5", "Q9", "Q14"])
    def test_gpl_partitioned_matches_reference(self, small_db, amd, name):
        reference = reference_answer(small_db, name)
        expected = sorted(zip(*[reference[c] for c in reference]))
        engine = GPLEngine(
            small_db, amd, partitioned_joins=True, num_partitions=8
        )
        result = engine.execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), expected)

    def test_kbe_partitioned_matches_reference(self, small_db, amd):
        reference = reference_answer(small_db, "Q9")
        expected = sorted(zip(*[reference[c] for c in reference]))
        engine = KBEEngine(small_db, amd, partitioned_joins=True)
        result = engine.execute(query_by_name("Q9"))
        assert_rows_close(result.sorted_rows(), expected)

    def test_partitioned_launches_more_kernels(self, small_db, amd):
        plain = GPLEngine(small_db, amd).execute(query_by_name("Q9"))
        parted = GPLEngine(
            small_db, amd, partitioned_joins=True
        ).execute(query_by_name("Q9"))
        assert (
            parted.counters.kernel_launches >= plain.counters.kernel_launches
        )
