"""Tests for the profiler facade and the error hierarchy."""

import pytest

from repro import errors
from repro.gpu import (
    AMD_A10,
    HardwareCounters,
    KernelLaunch,
    KernelRunStats,
    KernelSpec,
    Profiler,
    Simulator,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "SchemaError",
            "ExpressionError",
            "PlanError",
            "SimulationError",
            "ChannelError",
            "OccupancyError",
            "CalibrationError",
            "ModelError",
            "ExecutionError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_simulation_subtypes(self):
        assert issubclass(errors.ChannelError, errors.SimulationError)
        assert issubclass(errors.OccupancyError, errors.SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.PlanError("nope")


class TestKernelRunStats:
    def make(self, **kwargs):
        base = dict(
            name="k",
            elapsed_cycles=1000.0,
            compute_cycles=4000.0,
            memory_cycles=2000.0,
            tuples=100,
            workgroups=10,
            active_workgroups=5,
            cache_hits=80.0,
            cache_accesses=100.0,
        )
        base.update(kwargs)
        return KernelRunStats(**base)

    def test_cache_hit_ratio(self):
        assert self.make().cache_hit_ratio == pytest.approx(0.8)
        assert self.make(cache_accesses=0.0).cache_hit_ratio == 0.0

    def test_occupancy(self):
        assert self.make().occupancy == pytest.approx(0.5)
        assert self.make(workgroups=0).occupancy == 0.0
        assert self.make(active_workgroups=100).occupancy == 1.0  # capped


class TestHardwareCounters:
    def test_busy_ratios(self):
        counters = HardwareCounters(num_cus=8)
        counters.record(
            KernelRunStats(
                name="k",
                elapsed_cycles=1000.0,
                compute_cycles=4000.0,
                memory_cycles=2000.0,
            )
        )
        counters.add_elapsed(1000.0)
        assert counters.valu_busy == pytest.approx(0.5)
        assert counters.mem_unit_busy == pytest.approx(0.25)

    def test_zero_elapsed(self):
        counters = HardwareCounters(num_cus=8)
        assert counters.valu_busy == 0.0
        assert counters.mem_unit_busy == 0.0
        assert counters.breakdown() == {
            "Compute": 0.0,
            "Mem_cost": 0.0,
            "DC_cost": 0.0,
            "Delay": 0.0,
        }

    def test_merge(self):
        a = HardwareCounters(num_cus=8)
        a.add_elapsed(100.0)
        a.bytes_materialized = 50.0
        b = HardwareCounters(num_cus=8)
        b.add_elapsed(200.0)
        b.bytes_materialized = 25.0
        a.merge(b)
        assert a.elapsed_cycles == 300.0
        assert a.bytes_materialized == 75.0


class TestProfiler:
    def test_zero_elapsed_kernel_reports_idle_units(self):
        # Regression: the old epsilon denominator made a kernel that
        # never retired a cycle report valu_busy == 1.0 (compute / ~0).
        stats = KernelRunStats(
            name="k_empty",
            elapsed_cycles=0.0,
            compute_cycles=4000.0,
            memory_cycles=2000.0,
            tuples=0,
            workgroups=10,
            active_workgroups=5,
            cache_hits=3.0,
            cache_accesses=4.0,
        )
        profile = Profiler(AMD_A10).kernel_profile(stats)
        assert profile.elapsed_ms == 0.0
        assert profile.valu_busy == 0.0
        assert profile.mem_unit_busy == 0.0
        # Fields unrelated to elapsed time are still carried through.
        assert profile.name == "k_empty"
        assert profile.occupancy == pytest.approx(0.5)
        assert profile.cache_hit_ratio == pytest.approx(0.75)

    def test_report_fields(self):
        simulator = Simulator(AMD_A10)
        spec = KernelSpec(
            name="k_test",
            compute_instr=10,
            memory_instr=2,
            pm_per_workitem=32,
            lm_per_workitem=8,
        )
        simulator.launch_overhead()
        simulator.run_exclusive(
            KernelLaunch(
                spec=spec,
                tuples=10_000,
                workgroups=16,
                in_bytes_per_tuple=8,
                out_bytes_per_tuple=8,
            )
        )
        report = Profiler(AMD_A10).report(simulator.counters)
        assert report.device == AMD_A10.name
        assert report.elapsed_ms > 0
        assert report.kernel_launches == 1
        assert len(report.kernels) == 1
        kernel = report.kernels[0]
        assert kernel.name == "k_test"
        assert kernel.tuples == 10_000
        assert 0 <= kernel.valu_busy <= 1
        assert 0 <= kernel.mem_unit_busy <= 1
        assert sum(report.breakdown.values()) == pytest.approx(1.0)
