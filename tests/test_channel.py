"""Tests for the channel (pipe) configuration, cost model, and runtime."""

import pytest

from repro.errors import ChannelError
from repro.gpu import AMD_A10, ChannelConfig, ChannelModel, ChannelState

MIB = 1024 * 1024


class TestChannelConfig:
    def test_defaults_match_paper(self):
        config = ChannelConfig()
        assert config.packet_bytes == 16  # "packet size is set as 16 bytes"

    def test_capacity(self):
        config = ChannelConfig(num_channels=4, packet_bytes=16, depth_packets=100)
        assert config.capacity_packets == 400
        assert config.capacity_bytes == 6400

    def test_packets_for(self):
        config = ChannelConfig(packet_bytes=16)
        assert config.packets_for(0) == 0
        assert config.packets_for(1) == 1
        assert config.packets_for(16) == 1
        assert config.packets_for(17) == 2
        assert config.packets_for(160) == 10

    @pytest.mark.parametrize("bad", [0, -1, 33])
    def test_channel_count_bounds(self, bad):
        with pytest.raises(ChannelError):
            ChannelConfig(num_channels=bad)

    def test_packet_size_bounds(self):
        with pytest.raises(ChannelError):
            ChannelConfig(packet_bytes=2)
        with pytest.raises(ChannelError):
            ChannelConfig(packet_bytes=8192)

    def test_depth_bounds(self):
        with pytest.raises(ChannelError):
            ChannelConfig(depth_packets=0)


class TestChannelModel:
    @pytest.fixture()
    def model(self):
        return ChannelModel.for_device(AMD_A10)

    def test_reservation_u_shape_in_channels(self, model):
        costs = {n: model.reservation_cycles(n) for n in (1, 4, 16, 32)}
        assert costs[1] > costs[4]  # contention relief
        assert costs[32] > costs[16] or costs[16] <= costs[4]

    def test_packet_cost_u_shape_in_channels(self, model):
        def per_byte(n):
            config = ChannelConfig(num_channels=n)
            return model.packet_cycles_per_byte(config)

        assert per_byte(1) > per_byte(8)
        assert per_byte(32) > per_byte(16)

    def test_packet_size_sweet_spot(self, model):
        def per_byte(p):
            config = ChannelConfig(packet_bytes=p, num_channels=8)
            return (
                model.packet_transfer_cycles(config, 1024) / p
            )

        # 16-32B packets beat both tiny and huge ones.
        assert per_byte(16) < per_byte(4)
        assert per_byte(32) < per_byte(256)

    def test_thrash_raises_transfer_cost(self, model):
        config = ChannelConfig()
        cached = model.packet_transfer_cycles(config, 1 * MIB)
        thrashed = model.packet_transfer_cycles(config, 64 * MIB)
        assert thrashed > cached

    def test_transfer_cycles_scale(self, model):
        config = ChannelConfig()
        one = model.transfer_cycles(1 * MIB, config, stream_bytes=1 * MIB)
        two = model.transfer_cycles(2 * MIB, config, stream_bytes=1 * MIB)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_throughput_positive(self, model):
        assert model.throughput_gbps(1 * MIB, ChannelConfig()) > 0


class TestChannelState:
    def test_reserve_commit_consume(self):
        state = ChannelState(ChannelConfig(num_channels=1, depth_packets=10))
        state.reserve(4)
        assert state.in_flight == 4
        assert state.buffered_packets == 0
        state.commit(4)
        assert state.buffered_packets == 4
        state.consume(4)
        assert state.buffered_packets == 0
        assert state.total_packets == 4
        assert state.total_bytes == 4 * 16

    def test_capacity_enforced(self):
        state = ChannelState(ChannelConfig(num_channels=1, depth_packets=4))
        assert state.can_reserve(4)
        assert not state.can_reserve(5)
        state.reserve(4)
        with pytest.raises(ChannelError):
            state.reserve(1)

    def test_commit_without_reserve(self):
        state = ChannelState(ChannelConfig())
        with pytest.raises(ChannelError):
            state.commit(1)

    def test_consume_more_than_buffered(self):
        state = ChannelState(ChannelConfig())
        state.reserve(2)
        state.commit(2)
        with pytest.raises(ChannelError):
            state.consume(3)

    def test_peak_tracking(self):
        state = ChannelState(ChannelConfig(num_channels=1, depth_packets=10))
        state.reserve(6)
        state.commit(6)
        state.consume(6)
        state.reserve(3)
        state.commit(3)
        assert state.peak_packets == 6
