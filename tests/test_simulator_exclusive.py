"""Tests for exclusive (KBE-mode) kernel simulation."""

import pytest

from repro.gpu import (
    AMD_A10,
    DataLocation,
    KernelLaunch,
    KernelSpec,
    Simulator,
)

MIB = 1024 * 1024


def spec(compute=10.0, memory=2.0, lm=8) -> KernelSpec:
    return KernelSpec(
        name="k",
        compute_instr=compute,
        memory_instr=memory,
        pm_per_workitem=32,
        lm_per_workitem=lm,
    )


def launch(tuples=100_000, wg=128, sel=1.0, out_loc=DataLocation.GLOBAL, **spec_kwargs):
    return KernelLaunch(
        spec=spec(**spec_kwargs),
        tuples=tuples,
        workgroups=wg,
        in_bytes_per_tuple=16,
        out_bytes_per_tuple=8,
        selectivity=sel,
        output_location=out_loc,
    )


class TestScaling:
    def test_time_scales_with_tuples(self):
        sim = Simulator(AMD_A10)
        small = sim.run_exclusive(launch(tuples=100_000))
        large = sim.run_exclusive(launch(tuples=400_000, wg=512))
        assert large.elapsed_cycles > 2 * small.elapsed_cycles

    def test_compute_bound_kernel(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch(compute=500.0, memory=0.5))
        assert stats.compute_cycles > stats.memory_cycles

    def test_memory_bound_kernel(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch(compute=1.0, memory=8.0))
        assert stats.memory_cycles > stats.compute_cycles

    def test_zero_tuples(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch(tuples=0))
        assert stats.elapsed_cycles == 0.0


class TestOverlap:
    def test_more_workgroups_hide_latency(self):
        # Same work split over more work-groups -> better latency hiding.
        slow = Simulator(AMD_A10).run_exclusive(launch(wg=8))
        fast = Simulator(AMD_A10).run_exclusive(launch(wg=128))
        assert fast.elapsed_cycles < slow.elapsed_cycles

    def test_elapsed_at_least_max_component(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch())
        per_cu_compute = stats.compute_cycles / AMD_A10.num_cus
        per_cu_memory = stats.memory_cycles / AMD_A10.num_cus
        assert stats.elapsed_cycles >= max(per_cu_compute, per_cu_memory) * 0.99


class TestAccounting:
    def test_materialization_counted(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch(sel=0.5))
        assert stats.bytes_written_global == 100_000 * 0.5 * 8
        assert sim.counters.bytes_materialized == stats.bytes_written_global

    def test_channel_output_not_materialized(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch(out_loc=DataLocation.CHANNEL))
        assert stats.bytes_written_global == 0.0

    def test_stall_classification(self):
        base = Simulator(AMD_A10).run_exclusive(
            launch(out_loc=DataLocation.NONE)
        )
        reload = Simulator(AMD_A10).run_exclusive(
            launch(out_loc=DataLocation.NONE), input_is_intermediate=True
        )
        # Intermediate reads count as stalls; base-table streams do not.
        assert base.stall_cycles == 0.0
        assert reload.stall_cycles > 0.0
        assert reload.stall_cycles <= reload.memory_cycles

    def test_aux_working_set_effect(self):
        cheap = Simulator(AMD_A10).run_exclusive(
            launch(), aux_reads_per_tuple=2.0, aux_working_set_bytes=64 * 1024
        )
        costly = Simulator(AMD_A10).run_exclusive(
            launch(), aux_reads_per_tuple=2.0, aux_working_set_bytes=256 * MIB
        )
        assert costly.memory_cycles > cheap.memory_cycles

    def test_cache_counters(self):
        sim = Simulator(AMD_A10)
        stats = sim.run_exclusive(launch())
        assert 0 < stats.cache_hits <= stats.cache_accesses
        assert 0.0 < stats.cache_hit_ratio <= 1.0

    def test_elapsed_accumulates(self):
        sim = Simulator(AMD_A10)
        first = sim.run_exclusive(launch())
        total_after_one = sim.counters.elapsed_cycles
        sim.run_exclusive(launch())
        assert sim.counters.elapsed_cycles > total_after_one
        assert total_after_one == first.elapsed_cycles

    def test_launch_overhead(self):
        sim = Simulator(AMD_A10)
        sim.launch_overhead(3)
        assert sim.counters.kernel_launches == 3
        assert sim.counters.elapsed_cycles == (
            3 * AMD_A10.launch_overhead_cycles
        )

    def test_determinism(self):
        a = Simulator(AMD_A10).run_exclusive(launch())
        b = Simulator(AMD_A10).run_exclusive(launch())
        assert a.elapsed_cycles == b.elapsed_cycles
