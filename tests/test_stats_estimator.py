"""Tests for selectivity and cardinality estimation."""

import pytest

from repro.plans import DEFAULT_SELECTIVITY, StatisticsEstimator
from repro.relational import col, lit
from repro.relational.types import date_to_days


@pytest.fixture()
def estimator(tiny_db):
    est = StatisticsEstimator(tiny_db)
    est.register_columns("lineitem", tiny_db.table("lineitem").schema, {})
    est.register_columns("orders", tiny_db.table("orders").schema, {})
    est.register_columns(
        "nation",
        tiny_db.table("nation").schema,
        {"n_name": "n1_name", "n_nationkey": "n1_nationkey", "n_regionkey": "n1_regionkey"},
    )
    return est


class TestPredicateSelectivity:
    def test_range_half(self, estimator, tiny_db):
        stats = tiny_db.stats("lineitem", "l_shipdate")
        midpoint = (stats.minimum + stats.maximum) / 2
        selectivity = estimator.selectivity(col("l_shipdate").le(midpoint))
        assert selectivity == pytest.approx(0.5, abs=0.05)

    def test_range_flipped_literal(self, estimator, tiny_db):
        stats = tiny_db.stats("lineitem", "l_shipdate")
        midpoint = (stats.minimum + stats.maximum) / 2
        # literal <= column is the mirror image
        selectivity = estimator.selectivity(lit(midpoint).le(col("l_shipdate")))
        assert selectivity == pytest.approx(0.5, abs=0.05)

    def test_impossible_range(self, estimator):
        far_future = date_to_days("2050-01-01")
        assert estimator.selectivity(col("l_shipdate").ge(far_future)) == 0.0

    def test_equality_uses_distinct(self, estimator, tiny_db):
        distinct = tiny_db.stats("orders", "o_custkey").distinct
        selectivity = estimator.selectivity(col("o_custkey").eq(5))
        assert selectivity == pytest.approx(1.0 / distinct)

    def test_interval_recognized(self, estimator, tiny_db):
        stats = tiny_db.stats("lineitem", "l_shipdate")
        span = stats.maximum - stats.minimum
        lo = stats.minimum + span * 0.4
        hi = stats.minimum + span * 0.6
        predicate = col("l_shipdate").ge(lo) & col("l_shipdate").lt(hi)
        # Interval detection gives ~0.2, not independence's ~0.24*0.6.
        assert estimator.selectivity(predicate) == pytest.approx(0.2, abs=0.03)

    def test_interval_different_columns_not_confused(self, estimator):
        predicate = col("l_discount").ge(0.02) & col("l_tax").lt(0.04)
        a = estimator.selectivity(col("l_discount").ge(0.02))
        b = estimator.selectivity(col("l_tax").lt(0.04))
        assert estimator.selectivity(predicate) == pytest.approx(a * b)

    def test_conjunction_multiplies(self, estimator):
        a = col("l_discount").le(0.05)
        b = col("l_tax").le(0.04)
        combined = estimator.selectivity(a & b)
        assert combined == pytest.approx(
            estimator.selectivity(a) * estimator.selectivity(b)
        )

    def test_disjunction_inclusion_exclusion(self, estimator):
        a = col("l_discount").le(0.05)
        b = col("l_tax").le(0.04)
        sa, sb = estimator.selectivity(a), estimator.selectivity(b)
        assert estimator.selectivity(a | b) == pytest.approx(
            sa + sb - sa * sb
        )

    def test_negation(self, estimator):
        a = col("l_discount").le(0.05)
        assert estimator.selectivity(~a) == pytest.approx(
            1.0 - estimator.selectivity(a)
        )

    def test_renamed_column_resolves(self, estimator):
        selectivity = estimator.selectivity(col("n1_name").eq(6))
        assert selectivity == pytest.approx(1.0 / 25)

    def test_unknown_column_falls_back(self, estimator):
        assert estimator.selectivity(col("mystery").le(5)) == (
            DEFAULT_SELECTIVITY
        )

    def test_column_equals_column(self, estimator, tiny_db):
        predicate = col("o_custkey").eq(col("l_orderkey"))
        distinct = max(
            tiny_db.stats("orders", "o_custkey").distinct,
            tiny_db.stats("lineitem", "l_orderkey").distinct,
        )
        assert estimator.selectivity(predicate) == pytest.approx(1.0 / distinct)

    def test_inlist(self, estimator):
        selectivity = estimator.selectivity(col("n1_name").isin([1, 2, 3]))
        assert selectivity == pytest.approx(3 / 25)

    def test_inlist_caps_at_one(self, estimator):
        selectivity = estimator.selectivity(
            col("n1_name").isin(list(range(100)))
        )
        assert selectivity == 1.0


class TestJoinAndGroup:
    def test_join_cardinality_pk_fk(self, estimator, tiny_db):
        lineitem_rows = tiny_db.num_rows("lineitem")
        orders_rows = tiny_db.num_rows("orders")
        estimate = estimator.join_cardinality(
            lineitem_rows, orders_rows, "l_orderkey", "o_orderkey"
        )
        # PK-FK join keeps roughly the fact-table cardinality.
        assert estimate == pytest.approx(lineitem_rows, rel=0.05)

    def test_join_cardinality_without_stats(self):
        from repro.relational import Database

        estimator = StatisticsEstimator(Database())
        assert estimator.join_cardinality(100, 50, "a", "b") == 5000.0

    def test_group_cardinality_capped_by_rows(self, estimator):
        assert estimator.group_cardinality(10, ["n1_name"]) == 10

    def test_group_cardinality_product(self, estimator):
        estimate = estimator.group_cardinality(1e9, ["n1_name", "n1_regionkey"])
        assert estimate == pytest.approx(25 * 5)

    def test_global_aggregate(self, estimator):
        assert estimator.group_cardinality(1e9, []) == 1.0
