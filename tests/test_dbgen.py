"""Tests for the TPC-H data generator."""

import numpy as np
import pytest

from repro.relational.types import date_to_days
from repro.tpch import generate_database
from repro.tpch.dbgen import DbgenConfig, generate
from repro.tpch.schema import NATION_REGION, NATIONS, PART_TYPES, REGIONS


@pytest.fixture(scope="module")
def db():
    return generate_database(scale=0.005)


class TestCardinalities:
    def test_fixed_tables(self, db):
        assert db.num_rows("region") == 5
        assert db.num_rows("nation") == 25

    def test_scaled_tables(self, db):
        assert db.num_rows("supplier") == 50
        assert db.num_rows("customer") == 750
        assert db.num_rows("part") == 1000
        assert db.num_rows("orders") == 7500

    def test_partsupp_four_per_part(self, db):
        assert db.num_rows("partsupp") == 4 * db.num_rows("part")

    def test_lineitem_one_to_seven_per_order(self, db):
        ratio = db.num_rows("lineitem") / db.num_rows("orders")
        assert 1.0 <= ratio <= 7.0
        assert ratio == pytest.approx(4.0, abs=0.5)  # uniform 1..7 averages 4

    def test_scale_scales_linearly(self):
        small = generate_database(scale=0.002)
        large = generate_database(scale=0.004)
        assert large.num_rows("orders") == 2 * small.num_rows("orders")

    def test_minimum_one_row(self):
        db = generate_database(scale=1e-9)
        for name in db.names:
            assert db.num_rows(name) >= 1

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            DbgenConfig(scale=0.0)


class TestDeterminism:
    def test_same_seed_same_data(self):
        a = generate(DbgenConfig(scale=0.002, seed=42))
        b = generate(DbgenConfig(scale=0.002, seed=42))
        assert np.array_equal(
            a.table("lineitem")["l_extendedprice"],
            b.table("lineitem")["l_extendedprice"],
        )

    def test_different_seed_different_data(self):
        a = generate(DbgenConfig(scale=0.002, seed=1))
        b = generate(DbgenConfig(scale=0.002, seed=2))
        assert not np.array_equal(
            a.table("lineitem")["l_extendedprice"],
            b.table("lineitem")["l_extendedprice"],
        )


class TestReferentialIntegrity:
    def test_nation_region_mapping(self, db):
        nation = db.table("nation")
        assert list(nation["n_regionkey"]) == list(NATION_REGION)
        assert set(nation["n_regionkey"]) <= set(range(len(REGIONS)))

    def test_supplier_nation_fk(self, db):
        assert db.table("supplier")["s_nationkey"].max() < len(NATIONS)

    def test_customer_nation_fk(self, db):
        assert db.table("customer")["c_nationkey"].max() < len(NATIONS)

    def test_orders_customer_fk(self, db):
        assert db.table("orders")["o_custkey"].max() < db.num_rows("customer")

    def test_lineitem_fks(self, db):
        lineitem = db.table("lineitem")
        assert lineitem["l_orderkey"].max() < db.num_rows("orders")
        assert lineitem["l_partkey"].max() < db.num_rows("part")
        assert lineitem["l_suppkey"].max() < db.num_rows("supplier")

    def test_partsupp_pairs_distinct(self, db):
        partsupp = db.table("partsupp")
        pairs = set(
            zip(
                partsupp["ps_partkey"].tolist(),
                partsupp["ps_suppkey"].tolist(),
            )
        )
        assert len(pairs) == db.num_rows("partsupp")

    def test_every_lineitem_order_exists(self, db):
        # Every order key appears, since lineitems are generated per order.
        orders = set(db.table("orders")["o_orderkey"].tolist())
        lineitem_orders = set(db.table("lineitem")["l_orderkey"].tolist())
        assert lineitem_orders <= orders


class TestValueDistributions:
    def test_discount_and_tax_ranges(self, db):
        lineitem = db.table("lineitem")
        assert lineitem["l_discount"].min() >= 0.0
        assert lineitem["l_discount"].max() <= 0.10
        assert lineitem["l_tax"].min() >= 0.0
        assert lineitem["l_tax"].max() <= 0.08

    def test_quantity_range(self, db):
        q = db.table("lineitem")["l_quantity"]
        assert q.min() >= 1 and q.max() <= 50

    def test_orderdate_range(self, db):
        dates = db.table("orders")["o_orderdate"]
        assert dates.min() >= date_to_days("1992-01-01")
        assert dates.max() <= date_to_days("1998-08-02")

    def test_shipdate_after_orderdate(self, db):
        orders = db.table("orders")
        lineitem = db.table("lineitem")
        order_dates = dict(
            zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist())
        )
        ship = lineitem["l_shipdate"]
        okeys = lineitem["l_orderkey"]
        for index in range(0, lineitem.num_rows, 97):  # sample
            gap = int(ship[index]) - order_dates[int(okeys[index])]
            assert 1 <= gap <= 121

    def test_part_types_cover_promo(self, db):
        codes = set(db.table("part")["p_type"].tolist())
        promo = {
            code
            for code, name in enumerate(PART_TYPES)
            if name.startswith("PROMO")
        }
        assert codes & promo, "some parts must be promotional"

    def test_extendedprice_consistent_with_quantity(self, db):
        lineitem = db.table("lineitem")
        unit = lineitem["l_extendedprice"] / lineitem["l_quantity"]
        assert unit.min() >= 900.0
        assert unit.max() <= 2100.0
