"""Shared fixtures: one small TPC-H database and engine factories.

The database is session-scoped (generation is deterministic, engines
never mutate it), so the whole suite shares one copy.
"""

from __future__ import annotations

import pytest

from repro.gpu import AMD_A10, NVIDIA_K40
from repro.relational import Database
from repro.tpch import generate_database

TINY_SCALE = 0.002
SMALL_SCALE = 0.01


@pytest.fixture(scope="session")
def tiny_db() -> Database:
    """A very small database for per-operator and planning tests."""
    return generate_database(scale=TINY_SCALE)


@pytest.fixture(scope="session")
def small_db() -> Database:
    """A small database for end-to-end engine tests."""
    return generate_database(scale=SMALL_SCALE)


@pytest.fixture(scope="session")
def amd():
    return AMD_A10


@pytest.fixture(scope="session")
def nvidia():
    return NVIDIA_K40


def assert_rows_close(actual, expected, rel=1e-9):
    """Compare two sorted row lists with floating-point tolerance."""
    assert len(actual) == len(expected), (
        f"row count {len(actual)} != {len(expected)}"
    )
    for row_a, row_e in zip(actual, expected):
        assert len(row_a) == len(row_e)
        for a, e in zip(row_a, row_e):
            tolerance = rel * max(1.0, abs(float(a)), abs(float(e)))
            assert abs(float(a) - float(e)) <= tolerance, (
                f"{a} != {e} (tolerance {tolerance})"
            )
