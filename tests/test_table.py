"""Unit tests for the columnar Table."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import ColumnDef, DataType, Table, TableSchema


def schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("k", DataType.INT32),
        ColumnDef("v", DataType.FLOAT64),
    )


def table() -> Table:
    return Table(
        schema(),
        {"k": np.array([3, 1, 2, 1]), "v": np.array([0.3, 0.1, 0.2, 0.4])},
    )


class TestConstruction:
    def test_basic(self):
        t = table()
        assert t.num_rows == 4
        assert len(t) == 4
        assert t.nbytes == 4 * (4 + 8)

    def test_missing_column(self):
        with pytest.raises(SchemaError):
            Table(schema(), {"k": np.array([1])})

    def test_extra_column(self):
        with pytest.raises(SchemaError):
            Table(
                schema(),
                {"k": np.array([1]), "v": np.array([1.0]), "x": np.array([1])},
            )

    def test_ragged_columns(self):
        with pytest.raises(SchemaError):
            Table(schema(), {"k": np.array([1, 2]), "v": np.array([1.0])})

    def test_2d_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                schema(),
                {"k": np.zeros((2, 2)), "v": np.array([1.0, 2.0])},
            )

    def test_dtype_coercion(self):
        t = Table(schema(), {"k": np.array([1.9, 2.9]), "v": np.array([1, 2])})
        assert t.column("k").dtype == np.int32
        assert t.column("v").dtype == np.float64

    def test_empty(self):
        t = Table.empty(schema())
        assert t.num_rows == 0
        assert t.nbytes == 0

    def test_from_rows(self):
        t = Table.from_rows(schema(), [(1, 1.5), (2, 2.5)])
        assert t.to_rows() == [(1, 1.5), (2, 2.5)]


class TestAccessors:
    def test_column_missing(self):
        with pytest.raises(SchemaError):
            table().column("zzz")

    def test_getitem(self):
        assert list(table()["k"]) == [3, 1, 2, 1]

    def test_columns_copy_is_shallow(self):
        t = table()
        mapping = t.columns
        assert set(mapping) == {"k", "v"}


class TestOperations:
    def test_project(self):
        t = table().project(["v"])
        assert t.schema.names == ("v",)
        assert t.num_rows == 4

    def test_rename(self):
        t = table().rename({"k": "key"})
        assert t.schema.names == ("key", "v")
        assert list(t["key"]) == [3, 1, 2, 1]

    def test_filter(self):
        mask = table()["k"] == 1
        filtered = table().filter(mask)
        assert filtered.num_rows == 2
        assert list(filtered["v"]) == [0.1, 0.4]

    def test_filter_bad_mask(self):
        with pytest.raises(SchemaError):
            table().filter(np.array([True, False]))
        with pytest.raises(SchemaError):
            table().filter(np.array([1, 0, 1, 0]))

    def test_take(self):
        taken = table().take(np.array([2, 0]))
        assert taken.to_rows() == [(2, 0.2), (3, 0.3)]

    def test_slice_is_view(self):
        t = table()
        sliced = t.slice(1, 3)
        assert sliced.num_rows == 2
        assert sliced.column("k").base is not None  # numpy view

    def test_with_column(self):
        extra = table().with_column(
            ColumnDef("w", DataType.INT64), np.array([1, 2, 3, 4])
        )
        assert extra.schema.names == ("k", "v", "w")

    def test_concat_rows(self):
        combined = table().concat_rows(table())
        assert combined.num_rows == 8

    def test_concat_rows_schema_mismatch(self):
        other = Table(
            TableSchema.of(ColumnDef("x", DataType.INT32)),
            {"x": np.array([1])},
        )
        with pytest.raises(SchemaError):
            table().concat_rows(other)

    def test_concat_all(self):
        combined = Table.concat_all([table(), table(), table()])
        assert combined.num_rows == 12

    def test_concat_all_empty(self):
        with pytest.raises(SchemaError):
            Table.concat_all([])


class TestSorting:
    def test_single_key(self):
        t = table().sort_by(["k"])
        assert [row[0] for row in t.to_rows()] == [1, 1, 2, 3]

    def test_descending(self):
        t = table().sort_by(["k"], [True])
        assert [row[0] for row in t.to_rows()] == [3, 2, 1, 1]

    def test_stability(self):
        # equal keys keep input order
        t = table().sort_by(["k"])
        ones = [row for row in t.to_rows() if row[0] == 1]
        assert [row[1] for row in ones] == [0.1, 0.4]

    def test_stability_under_descending(self):
        t = table().sort_by(["k"], [True])
        ones = [row for row in t.to_rows() if row[0] == 1]
        assert [row[1] for row in ones] == [0.1, 0.4]

    def test_multi_key(self):
        t = Table.from_rows(
            schema(), [(1, 2.0), (2, 1.0), (1, 1.0), (2, 2.0)]
        ).sort_by(["k", "v"], [False, True])
        assert t.to_rows() == [(1, 2.0), (1, 1.0), (2, 2.0), (2, 1.0)]

    def test_no_keys_is_identity(self):
        assert table().sort_by([]).to_rows() == table().to_rows()


class TestDecoding:
    def test_decoded_rows(self):
        s = TableSchema.of(
            ColumnDef("name", DataType.DICT, ("ann", "bob")),
            ColumnDef("n", DataType.INT32),
        )
        t = Table(s, {"name": np.array([1, 0]), "n": np.array([10, 20])})
        assert t.decoded_rows() == [("bob", 10), ("ann", 20)]
