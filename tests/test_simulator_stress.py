"""Stress properties: random pipelines must simulate safely.

The discrete-event simulator must never deadlock, lose work, or produce
non-physical results, whatever (feasible) pipeline shape it is given —
and when a fault *is* injected, it must fail with a typed, diagnosable
error instead of hanging or corrupting state.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PipelineDeadlockError
from repro.faults import FaultInjector, FaultPlan
from repro.gpu import (
    AMD_A10,
    ChannelConfig,
    DataLocation,
    KernelLaunch,
    KernelSpec,
    Simulator,
    StageSpec,
)


@st.composite
def pipelines(draw):
    """Random feasible pipeline descriptions."""
    num_stages = draw(st.integers(min_value=1, max_value=5))
    tuples = draw(st.integers(min_value=100, max_value=200_000))
    tiles = draw(st.integers(min_value=1, max_value=6))
    workgroups = draw(st.sampled_from([2, 4, 8, 16]))
    stages = []
    flowing = float(tuples)
    for index in range(num_stages):
        selectivity = draw(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False)
        )
        compute = draw(st.floats(min_value=1.0, max_value=200.0))
        memory = draw(st.floats(min_value=0.0, max_value=8.0))
        spec = KernelSpec(
            name=f"k{index}",
            compute_instr=compute,
            memory_instr=memory,
            pm_per_workitem=32,
            lm_per_workitem=8,
        )
        stages.append(
            StageSpec(
                KernelLaunch(
                    spec=spec,
                    tuples=max(1, int(flowing)),
                    workgroups=workgroups,
                    in_bytes_per_tuple=16,
                    out_bytes_per_tuple=8,
                    selectivity=selectivity,
                    input_location=(
                        DataLocation.GLOBAL
                        if index == 0
                        else DataLocation.CHANNEL
                    ),
                    output_location=(
                        DataLocation.GLOBAL
                        if index == num_stages - 1
                        else DataLocation.CHANNEL
                    ),
                    label=f"k{index}",
                )
            )
        )
        flowing *= selectivity
    return stages, tuples, tiles


class TestRandomPipelines:
    @given(description=pipelines())
    @settings(max_examples=80, deadline=None)
    def test_never_deadlocks_and_conserves_work(self, description):
        stages, tuples, tiles = description
        # size channels generously like the engine does
        tile_tuples = tuples / tiles
        unit_tuples = tile_tuples / stages[0].launch.workgroups
        channels = []
        for stage in stages[:-1]:
            launch = stage.launch
            out_bytes = (
                unit_tuples
                * launch.selectivity
                * launch.out_bytes_per_tuple
            )
            packets = max(1, int(np.ceil(out_bytes / 16)))
            depth = max(2048, 2 * launch.workgroups * packets)
            channels.append(
                ChannelConfig(num_channels=4, depth_packets=depth)
            )
            unit_tuples *= launch.selectivity

        simulator = Simulator(AMD_A10)
        result = simulator.run_pipeline(
            stages,
            channels,
            num_tiles=tiles,
            tile_tuples=tile_tuples,
            tile_bytes=tile_tuples * 16,
        )
        # 1. terminates with sensible time
        assert result.elapsed_cycles > 0
        assert np.isfinite(result.elapsed_cycles)
        # 2. non-negative, finite accounting
        assert result.delay_cycles >= 0
        for stats in result.stage_stats:
            assert stats.compute_cycles >= 0
            assert stats.memory_cycles >= 0
            assert stats.channel_cycles >= 0
        # 3. device-level physics: elapsed >= max resource demand / #CU
        total_compute = sum(s.compute_cycles for s in result.stage_stats)
        assert result.elapsed_cycles >= (
            total_compute / AMD_A10.num_cus - 1e-6
        )
        # 4. determinism
        again = Simulator(AMD_A10).run_pipeline(
            stages,
            channels,
            num_tiles=tiles,
            tile_tuples=tile_tuples,
            tile_bytes=tile_tuples * 16,
        )
        assert again.elapsed_cycles == result.elapsed_cycles

    @given(
        tuples=st.integers(min_value=1000, max_value=100_000),
        selectivity=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_selectivity_traffic(self, tuples, selectivity):
        """More surviving tuples never means less channel traffic."""

        def run(sel):
            stages = [
                StageSpec(
                    KernelLaunch(
                        spec=KernelSpec(
                            name="p",
                            compute_instr=10,
                            memory_instr=1,
                            pm_per_workitem=32,
                            lm_per_workitem=8,
                        ),
                        tuples=tuples,
                        workgroups=8,
                        in_bytes_per_tuple=16,
                        out_bytes_per_tuple=8,
                        selectivity=sel,
                        output_location=DataLocation.CHANNEL,
                        label="p",
                    )
                ),
                StageSpec(
                    KernelLaunch(
                        spec=KernelSpec(
                            name="c",
                            compute_instr=10,
                            memory_instr=0,
                            pm_per_workitem=32,
                            lm_per_workitem=8,
                        ),
                        tuples=int(tuples * sel),
                        workgroups=8,
                        in_bytes_per_tuple=8,
                        out_bytes_per_tuple=8,
                        selectivity=0.0,
                        input_location=DataLocation.CHANNEL,
                        output_location=DataLocation.NONE,
                        label="c",
                    )
                ),
            ]
            channel = ChannelConfig(num_channels=4, depth_packets=65536)
            return Simulator(AMD_A10).run_pipeline(
                stages,
                [channel],
                num_tiles=1,
                tile_tuples=tuples,
                tile_bytes=tuples * 16,
            ).channel_bytes

        low = run(selectivity / 2)
        high = run(selectivity)
        assert high >= low


def _two_stage_pipeline(tuples=10_000):
    """A producer/consumer chain for watchdog tests."""
    producer = StageSpec(
        KernelLaunch(
            spec=KernelSpec(
                name="prod",
                compute_instr=10,
                memory_instr=1,
                pm_per_workitem=32,
                lm_per_workitem=8,
            ),
            tuples=tuples,
            workgroups=8,
            in_bytes_per_tuple=16,
            out_bytes_per_tuple=8,
            selectivity=1.0,
            output_location=DataLocation.CHANNEL,
            label="prod",
        )
    )
    consumer = StageSpec(
        KernelLaunch(
            spec=KernelSpec(
                name="cons",
                compute_instr=10,
                memory_instr=0,
                pm_per_workitem=32,
                lm_per_workitem=8,
            ),
            tuples=tuples,
            workgroups=8,
            in_bytes_per_tuple=8,
            out_bytes_per_tuple=8,
            selectivity=1.0,
            input_location=DataLocation.CHANNEL,
            output_location=DataLocation.GLOBAL,
            label="cons",
        )
    )
    return [producer, consumer]


class TestWatchdog:
    """Channel-stall faults must surface as diagnosable deadlocks."""

    def run_with_plan(self, plan):
        stages = _two_stage_pipeline()
        channel = ChannelConfig(num_channels=4, depth_packets=2048)
        simulator = Simulator(AMD_A10, injector=FaultInjector(plan))
        simulator.begin_segment("seg0")
        return simulator.run_pipeline(
            stages,
            [channel],
            num_tiles=2,
            tile_tuples=5_000,
            tile_bytes=5_000 * 16,
        )

    def test_stalled_consumer_raises_deadlock_with_snapshot(self):
        plan = FaultPlan.parse("stall@seg0:cons")
        with pytest.raises(PipelineDeadlockError) as excinfo:
            self.run_with_plan(plan)
        snapshot = excinfo.value.snapshot
        assert snapshot is not None
        assert snapshot.segment == "seg0"
        assert len(snapshot.stages) == 2
        assert len(snapshot.channels) == 1
        # The wedged consumer never ran; the producer filled the channel.
        cons = snapshot.stages[1]
        assert cons.name == "cons"
        assert cons.max_active == 0 and cons.completed == 0
        assert not cons.finished
        assert snapshot.unfinished_stages
        assert snapshot.channels[0].in_flight > 0
        assert snapshot.blocked_workgroups > 0
        # The error message embeds the human-readable snapshot.
        assert "cons" in str(excinfo.value)

    def test_stalled_producer_never_starts(self):
        plan = FaultPlan.parse("stall@seg0:prod")
        with pytest.raises(PipelineDeadlockError) as excinfo:
            self.run_with_plan(plan)
        assert excinfo.value.snapshot is not None
        assert excinfo.value.snapshot.stages[0].completed == 0

    def test_stall_is_deterministic(self):
        snapshots = []
        for _ in range(2):
            plan = FaultPlan.parse("stall@seg0:cons")
            with pytest.raises(PipelineDeadlockError) as excinfo:
                self.run_with_plan(plan)
            snapshots.append(excinfo.value.snapshot)
        assert snapshots[0] == snapshots[1]

    def test_unmatched_fault_leaves_run_untouched(self):
        clean = Simulator(AMD_A10).run_pipeline(
            _two_stage_pipeline(),
            [ChannelConfig(num_channels=4, depth_packets=2048)],
            num_tiles=2,
            tile_tuples=5_000,
            tile_bytes=5_000 * 16,
        )
        armed = self.run_with_plan(FaultPlan.parse("stall@other-seg:*"))
        assert armed.elapsed_cycles == clean.elapsed_cycles
