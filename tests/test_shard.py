"""Multi-device sharded execution: pools, partitioning, scatter-gather.

The sharding contract: a :class:`~repro.shard.ShardedExecutor` over any
:class:`~repro.shard.DevicePool` answers every query with rows identical
to single-device GPL execution — partials re-aggregate (never average
averages), ordered output re-sorts after the merge, empty shards never
poison global min/max — and does so deterministically: the same pool
spec always derives the same per-device seeds and the same partition
assignment.  The full-catalogue equivalence matrix (every TPC-H/SSB
bench query on 1, 2, and 4 devices) lives in
``test_shard_equivalence.py``; this module covers the units and the
edge cases.
"""

import numpy as np
import pytest

from repro.core import GPLEngine
from repro.errors import ExecutionError, PlanError, SchemaError
from repro.faults import FaultPlan
from repro.gpu import AMD_A10, NVIDIA_K40
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.relational import (
    Arith,
    Col,
    ColumnDef,
    Database,
    DataType,
    PartitionMetadata,
    Table,
    TableSchema,
    col,
    hash_shard_assignment,
    lit,
    partition_database,
    partition_table,
    round_robin_assignment,
)
from repro.serve import QueryService
from repro.shard import (
    DEFAULT_POOL_SEED,
    DevicePool,
    PARTIALS_TABLE,
    ShardedExecutor,
    choose_partition_key,
    decompose,
    substitute_columns,
)
from repro.tpch import q5, q9, q14, query_by_name

# ---------------------------------------------------------------------------
# device pools
# ---------------------------------------------------------------------------


class TestDevicePool:
    def test_count_form_replicates_default_preset(self):
        pool = DevicePool(3)
        assert len(pool) == 3
        assert [slot.name for slot in pool] == ["dev0", "dev1", "dev2"]
        assert all(slot.spec is AMD_A10 for slot in pool)

    def test_mixed_presets_by_name_and_spec(self):
        pool = DevicePool(["amd", NVIDIA_K40, "nvidia"])
        assert pool.specs == (AMD_A10, NVIDIA_K40, NVIDIA_K40)
        assert pool.total_kernel_slots == sum(
            spec.concurrency for spec in pool.specs
        )

    def test_seeds_deterministic_and_distinct(self):
        first, second = DevicePool(4), DevicePool(4)
        seeds = [slot.seed for slot in first]
        assert seeds == [slot.seed for slot in second]
        assert len(set(seeds)) == 4
        reseeded = DevicePool(4, seed=DEFAULT_POOL_SEED + 1)
        assert seeds != [slot.seed for slot in reseeded]

    def test_budget_scalar_broadcasts_and_sequence_must_match(self):
        pool = DevicePool(2, memory_budget_bytes=1024.0)
        assert [s.effective_budget_bytes for s in pool] == [1024.0, 1024.0]
        per_device = DevicePool(2, memory_budget_bytes=[None, 2048.0])
        assert per_device.slot(0).effective_budget_bytes == float(
            AMD_A10.global_mem_bytes
        )
        assert per_device.slot(1).effective_budget_bytes == 2048.0
        with pytest.raises(SchemaError):
            DevicePool(2, memory_budget_bytes=[1.0, 2.0, 3.0])

    def test_empty_pools_rejected(self):
        with pytest.raises(SchemaError):
            DevicePool(0)
        with pytest.raises(SchemaError):
            DevicePool([])

    def test_from_spec_count_and_preset_list(self):
        assert len(DevicePool.from_spec("4")) == 4
        assert DevicePool.from_spec("4", default="nvidia").specs == (
            NVIDIA_K40,
        ) * 4
        mixed = DevicePool.from_spec(" amd , nvidia ")
        assert mixed.specs == (AMD_A10, NVIDIA_K40)

    def test_from_spec_rejects_garbage(self):
        with pytest.raises(SchemaError):
            DevicePool.from_spec("")
        with pytest.raises(SchemaError):
            DevicePool.from_spec("amd,warp9")


# ---------------------------------------------------------------------------
# partitioning (satellite: edge cases + determinism)
# ---------------------------------------------------------------------------


def _table(**columns) -> Table:
    defs = []
    arrays = {}
    for name, values in columns.items():
        array = np.asarray(values)
        dtype = (
            DataType.INT64
            if np.issubdtype(array.dtype, np.integer)
            else DataType.FLOAT64
        )
        defs.append(ColumnDef(name, dtype))
        arrays[name] = array
    return Table(TableSchema(tuple(defs)), arrays)


class TestPartitioning:
    def test_hash_assignment_pinned(self):
        # Locks the splitmix64 mix cross-platform: partition layout is
        # part of the determinism contract, not an implementation detail.
        assert hash_shard_assignment(np.arange(12), 4).tolist() == [
            3, 1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1,
        ]

    def test_equal_keys_share_a_shard(self):
        keys = np.asarray([7, 3, 7, 7, 3, 11, 3])
        assignment = hash_shard_assignment(keys, 3)
        for key in (3, 7, 11):
            assert len(set(assignment[keys == key].tolist())) == 1

    def test_hash_requires_integral_keys(self):
        with pytest.raises(SchemaError):
            hash_shard_assignment(np.asarray([1.5, 2.5]), 2)
        with pytest.raises(SchemaError):
            hash_shard_assignment(np.arange(4), 0)

    def test_round_robin_balances_perfectly(self):
        assignment = round_robin_assignment(10, 3)
        counts = np.bincount(assignment, minlength=3).tolist()
        assert counts == [4, 3, 3]

    def test_partition_deterministic_across_runs(self, tiny_db):
        lineitem = tiny_db.table("lineitem")
        first_tables, first_assign = partition_table(
            lineitem, 4, key="l_orderkey"
        )
        second_tables, second_assign = partition_table(
            lineitem, 4, key="l_orderkey"
        )
        assert np.array_equal(first_assign, second_assign)
        for a, b in zip(first_tables, second_tables):
            assert a.num_rows == b.num_rows
            for name in a.schema.names:
                assert np.array_equal(a.column(name), b.column(name))

    def test_skewed_keys_all_rows_one_shard(self):
        table = _table(k=[42] * 8, v=np.arange(8.0))
        shards, assignment = partition_table(table, 4, key="k")
        assert len(set(assignment.tolist())) == 1
        rows = [shard.num_rows for shard in shards]
        assert sorted(rows) == [0, 0, 0, 8]
        meta = PartitionMetadata(
            table="t", scheme="hash", key="k",
            num_shards=4, shard_rows=tuple(rows),
        )
        assert meta.skew == 4.0  # worst case: sharding bought nothing
        assert meta.empty_shards == 3

    def test_more_shards_than_rows(self):
        table = _table(k=[1, 2, 3], v=[0.0, 1.0, 2.0])
        shards, _ = partition_table(table, 8, key="k")
        rows = [shard.num_rows for shard in shards]
        assert sum(rows) == 3
        assert sum(1 for r in rows if r == 0) >= 5

    def test_empty_table_partitions_to_empty_shards(self):
        table = _table(k=np.asarray([], dtype=np.int64))
        shards, assignment = partition_table(table, 3, key="k")
        assert assignment.size == 0
        assert all(shard.num_rows == 0 for shard in shards)

    def test_partition_database_shares_dimension_tables(self, tiny_db):
        shard_dbs, meta = partition_database(
            tiny_db, 2, "lineitem", key="l_orderkey"
        )
        assert meta.scheme == "hash" and meta.key == "l_orderkey"
        assert meta.total_rows == tiny_db.table("lineitem").num_rows
        # dimension tables are replicated by reference, not copied
        assert shard_dbs[0].table("nation") is tiny_db.table("nation")
        assert shard_dbs[1].table("nation") is tiny_db.table("nation")
        assert (
            shard_dbs[0].table("lineitem").num_rows
            + shard_dbs[1].table("lineitem").num_rows
            == meta.total_rows
        )


# ---------------------------------------------------------------------------
# planner: decomposition, avg rewrite, limit pushdown
# ---------------------------------------------------------------------------


def _selection_spec(limit=None, order=True) -> QuerySpec:
    return QuerySpec(
        name="sel",
        tables=(TableRef("lineitem", "lineitem"),),
        join_edges=(),
        fact="lineitem",
        filters={"lineitem": col("l_quantity").gt(45.0)},
        order_by=("l_extendedprice",) if order else (),
        order_desc=(True,) if order else (),
        limit=limit,
    )


def _avg_spec(group=True) -> QuerySpec:
    return QuerySpec(
        name="avg_price",
        tables=(TableRef("lineitem", "lineitem"),),
        join_edges=(),
        fact="lineitem",
        group_keys=("l_suppkey",) if group else (),
        aggregates=(
            AggSpec("avg_price", "avg", col("l_extendedprice")),
            AggSpec("n", "count", None),
        ),
        order_by=("l_suppkey",) if group else (),
    )


class TestPlanner:
    def test_substitute_columns_rewrites_nested_trees(self):
        expr = Arith("+", col("a"), Arith("*", col("b"), lit(2.0)))
        swapped = substitute_columns(expr, {"b": col("c")})
        assert isinstance(swapped.right.left, Col)
        assert swapped.right.left.name == "c"
        assert swapped.left.name == "a"
        # untouched trees come back identical, not copied
        assert substitute_columns(expr, {"zzz": col("c")}) is expr

    def test_avg_rewritten_to_sum_count_pair(self, tiny_db):
        plan = decompose(_avg_spec(), tiny_db)
        names = [agg.name for agg in plan.scatter_spec.aggregates]
        assert names == ["avg_price__psum", "avg_price__pcnt", "n"]
        funcs = [agg.func for agg in plan.scatter_spec.aggregates]
        assert funcs == ["sum", "count", "count"]
        # gather re-sums the pair and projects avg back by division
        merged = {a.name: a.func for a in plan.gather_spec.aggregates}
        assert merged == {
            "avg_price__psum": "sum", "avg_price__pcnt": "sum", "n": "sum",
        }
        assert [n for n, _ in plan.gather_spec.post_projection] == [
            "avg_price", "n",
        ]
        assert plan.merge_kind == "reaggregate"

    def test_aggregate_epilogue_stays_on_gather_side(self, tiny_db):
        plan = decompose(query_by_name("Q5"), tiny_db)
        assert plan.scatter_spec.order_by == ()
        assert plan.scatter_spec.limit is None
        assert plan.scatter_spec.post_projection == ()
        assert plan.gather_spec.order_by == q5().order_by
        assert plan.gather_spec.limit == q5().limit
        assert plan.gather_spec.fact == PARTIALS_TABLE

    def test_ungrouped_aggregates_carry_shard_rows_guard(self, tiny_db):
        plan = decompose(_avg_spec(group=False), tiny_db)
        assert plan.scatter_spec.aggregates[-1].name == "__shard_rows"
        assert PARTIALS_TABLE in plan.gather_spec.filters

    def test_selection_limit_pushes_down_with_its_ordering(self, tiny_db):
        # A per-shard limit without the sort would keep K arbitrary rows.
        plan = decompose(_selection_spec(limit=10), tiny_db)
        assert plan.gather_spec is None and plan.merge_kind == "concat"
        assert plan.scatter_spec.limit == 10
        assert plan.scatter_spec.order_by == ("l_extendedprice",)
        unlimited = decompose(_selection_spec(limit=None), tiny_db)
        assert unlimited.scatter_spec.order_by == ()

    def test_choose_partition_key_prefers_fact_join_keys(self, tiny_db):
        key = choose_partition_key(q5(), tiny_db)
        assert key in tiny_db.table("lineitem").schema.names
        # a keyless single-table selection falls back to round-robin
        assert choose_partition_key(_selection_spec(), tiny_db) is None

    def test_decompose_rejects_unknown_fact_table(self):
        with pytest.raises(PlanError):
            decompose(_selection_spec(), Database())


# ---------------------------------------------------------------------------
# scatter-gather executor: edge-case equivalence with one device
# ---------------------------------------------------------------------------


def _rows(result):
    # Round-6 rows: the repo-wide float-equivalence standard (matches
    # the golden fixtures and the bench checksums).  Shard-order sums
    # can differ from single-device sums in the last ULP.
    return sorted(
        tuple(round(float(v), 6) for v in row) for row in result.rows()
    )


@pytest.fixture(scope="module")
def pool3():
    return DevicePool(3)


class TestShardedEquivalence:
    def assert_matches_single(self, db, spec, pool, ordered=False):
        single = GPLEngine(db, AMD_A10).execute(spec)
        sharded = ShardedExecutor(db, pool).execute(spec)
        if ordered:
            assert single.rows() == sharded.rows()
        else:
            assert _rows(single) == _rows(sharded)
        return sharded

    def test_grouped_avg_reaggregates_not_averages(self, tiny_db, pool3):
        result = self.assert_matches_single(tiny_db, _avg_spec(), pool3)
        assert result.engine.startswith("sharded:")
        assert result.shard.merge_kind == "reaggregate"
        assert result.shard.fanout == 3

    def test_ordered_selection_with_limit(self, tiny_db, pool3):
        self.assert_matches_single(
            tiny_db, _selection_spec(limit=10), pool3, ordered=True
        )

    def test_global_aggregates_survive_empty_filter_shards(self, tiny_db):
        # A filter selective enough that some shard keeps zero rows must
        # not let that shard's identity row poison the min/max merge.
        keys = tiny_db.table("lineitem").column("l_orderkey")
        lone = int(keys[0])
        spec = QuerySpec(
            name="global",
            tables=(TableRef("lineitem", "lineitem"),),
            join_edges=(),
            fact="lineitem",
            filters={"lineitem": col("l_orderkey").eq(float(lone))},
            aggregates=(
                AggSpec("lo", "min", col("l_extendedprice")),
                AggSpec("hi", "max", col("l_extendedprice")),
                AggSpec("total", "sum", col("l_extendedprice")),
                AggSpec("n", "count", None),
                AggSpec("mean", "avg", col("l_extendedprice")),
            ),
        )
        self.assert_matches_single(tiny_db, spec, DevicePool(4))

    def test_filter_rejecting_every_row_matches_identity(self, tiny_db):
        spec = QuerySpec(
            name="void",
            tables=(TableRef("lineitem", "lineitem"),),
            join_edges=(),
            fact="lineitem",
            filters={"lineitem": col("l_quantity").gt(1e9)},
            aggregates=(
                AggSpec("total", "sum", col("l_extendedprice")),
                AggSpec("n", "count", None),
                AggSpec("mean", "avg", col("l_extendedprice")),
            ),
        )
        self.assert_matches_single(tiny_db, spec, DevicePool(3))

    def test_distinct_merges_distinctly(self, tiny_db, pool3):
        spec = QuerySpec(
            name="distinct_nations",
            tables=(TableRef("customer", "customer"),),
            join_edges=(),
            fact="customer",
            filters={"customer": col("c_acctbal").gt(0.0)},
            distinct=("c_nationkey",),
            order_by=("c_nationkey",),
        )
        result = self.assert_matches_single(
            tiny_db, spec, pool3, ordered=True
        )
        assert result.shard.merge_kind == "distinct"

    def test_joined_query_on_mixed_pool(self, tiny_db):
        single = GPLEngine(tiny_db, AMD_A10).execute(q9())
        pool = DevicePool(["amd", "nvidia"])
        sharded = ShardedExecutor(tiny_db, pool).execute(q9())
        assert single.approx_equals(sharded)
        assert sharded.device == "pool[2: AMD A10 APU + NVIDIA Tesla K40]"

    def test_single_device_pool_degenerates_cleanly(self, tiny_db):
        self.assert_matches_single(tiny_db, q14(), DevicePool(1))

    def test_partition_cache_reused_across_queries(self, tiny_db):
        executor = ShardedExecutor(tiny_db, DevicePool(2))
        executor.execute(q5())
        cached = dict(executor._partition_cache)
        executor.execute(q5())
        assert executor._partition_cache == cached

    def test_report_accounting(self, tiny_db, pool3):
        result = ShardedExecutor(tiny_db, pool3).execute(q5())
        report = result.shard
        assert report.devices == 3
        assert report.fanout == sum(
            1 for r in report.records if not r.skipped
        )
        assert report.makespan_ms == pytest.approx(
            max(r.elapsed_ms for r in report.records) + report.merge_ms
        )
        assert result.elapsed_ms == pytest.approx(report.makespan_ms)
        busy = report.device_busy_ms()
        assert set(busy) >= {"dev0"}
        assert busy["dev0"] >= report.merge_ms
        assert report.partition.describe() in report.describe()

    def test_per_device_fault_plans_and_engine_overrides(self, tiny_db):
        pool = DevicePool(2)
        plans = [FaultPlan.parse("abort@*:*,times=2"), None]
        executor = ShardedExecutor(tiny_db, pool, fault_plans=plans)
        result = executor.execute(q5())
        records = result.shard.records
        assert records[0].retries + records[0].fallbacks > 0
        assert records[1].retries == 0 and records[1].fallbacks == 0
        # engines_by_device degrades exactly the named device
        degraded = ShardedExecutor(tiny_db, pool).execute(
            q5(), engines_by_device={1: ("kbe",)}
        )
        assert degraded.shard.records[0].engine == "GPL"
        assert degraded.shard.records[1].engine == "KBE"
        single = GPLEngine(tiny_db, AMD_A10).execute(q5())
        assert single.approx_equals(degraded)


# ---------------------------------------------------------------------------
# serving integration
# ---------------------------------------------------------------------------


class TestPooledService:
    def test_pooled_drain_matches_single_device(self, tiny_db):
        specs = [q5(), q9(), q14()]
        alone = QueryService(tiny_db, AMD_A10, max_concurrent=4)
        rows_alone = {
            spec.name: _rows(alone.submit(spec)) for spec in specs
        }
        pooled = QueryService(
            tiny_db, AMD_A10, max_concurrent=4, pool=DevicePool(2)
        )
        report = pooled.run(specs)
        for spec in specs:
            assert _rows(pooled.submit(spec)) == rows_alone[spec.name]
        assert report.devices == 2
        assert all(r.shards >= 1 for r in report.records)
        assert report.counters_dict()["devices"] == 2

    def test_pooled_report_exports_shard_metrics(self, tiny_db):
        service = QueryService(
            tiny_db, AMD_A10, max_concurrent=2, pool=DevicePool(2)
        )
        report = service.run([q5(), q14()])
        assert report.metrics["shard_queries_total"]["series"]
        fanout = report.metrics["shard_fanout"]["series"][0]
        assert fanout["count"] == 2
        devices = {
            entry["labels"]["device"]
            for entry in report.metrics[
                "shard_device_busy_ms_total"
            ]["series"]
        }
        assert "dev0" in devices
        assert "x2 (sharded)" in report.to_text()

    def test_pooled_breaker_scopes_are_per_device(self, tiny_db):
        service = QueryService(
            tiny_db,
            AMD_A10,
            max_concurrent=2,
            pool=DevicePool(2),
            fault_plan=FaultPlan.parse("stall@main,times=20"),
            breaker_threshold=2,
            breaker_cooldown=2,
        )
        report = service.run([q5() for _ in range(6)])
        assert report.completed == 6
        assert set(report.breaker) == {"Q5@dev0", "Q5@dev1"}
        assert report.breaker_degraded >= 1

    def test_pool_plus_tuned_rejected(self, tiny_db):
        with pytest.raises(ExecutionError):
            QueryService(tiny_db, AMD_A10, tuned=True, pool=DevicePool(2))
