"""Tests for segment generation, tiling, and GPL configuration."""

import numpy as np
import pytest

from repro.core import GPLConfig, Segment, TilePlan, Tiler, split_into_segments
from repro.core.segments import pipeline_kernel_specs
from repro.gpu import AMD_A10, KernelLaunch, KernelSpec
from repro.gpu.occupancy import check_segment_feasible
from repro.plans import SelingerOptimizer, lower
from repro.tpch import q14


def spec(name, blocking=False):
    return KernelSpec(
        name=name,
        compute_instr=10,
        memory_instr=2,
        pm_per_workitem=32,
        lm_per_workitem=8,
        blocking=blocking,
    )


class TestSegmentation:
    def test_paper_example(self):
        # map -> reduce* are both non-blocking: one segment (Fig 7c).
        kernels = [spec("k_map"), spec("k_reduce*")]
        segments = split_into_segments(kernels)
        assert len(segments) == 1
        assert len(segments[0]) == 2

    def test_kbe_selection_splits(self):
        kernels = [
            spec("k_map"),
            spec("k_prefix_sum", blocking=True),
            spec("k_scatter"),
        ]
        segments = split_into_segments(kernels)
        assert len(segments) == 2
        assert segments[0].blocking_kernel.name == "k_prefix_sum"
        assert segments[0].non_blocking[0].name == "k_map"

    def test_every_segment_ends_with_blocker_except_last(self):
        kernels = [
            spec("a"),
            spec("b", blocking=True),
            spec("c"),
            spec("d", blocking=True),
            spec("e"),
        ]
        segments = split_into_segments(kernels)
        assert len(segments) == 3
        for segment in segments[:-1]:
            assert segment.blocking_kernel.blocking
        # Order is preserved end to end.
        flattened = [k.name for s in segments for k in s.kernels]
        assert flattened == ["a", "b", "c", "d", "e"]

    def test_empty(self):
        assert split_into_segments([]) == []

    def test_pipeline_kernel_specs_flavors(self, tiny_db):
        plan = lower(SelingerOptimizer(tiny_db).optimize(q14()), tiny_db)
        main = plan.pipeline("main")
        gpl_specs = pipeline_kernel_specs(main, "gpl")
        kbe_specs = pipeline_kernel_specs(main, "kbe")
        assert len(kbe_specs) > len(gpl_specs)
        # GPL main segment is entirely non-blocking (Fig 7c).
        assert not any(k.blocking for k in gpl_specs)
        # KBE expansion contains blocking prefix sums.
        assert any(k.blocking for k in kbe_specs)


class TestTiler:
    def test_plan_covers_exactly(self):
        plan = Tiler(1024).plan(total_rows=1000, row_width=16)
        boundaries = plan.boundaries()
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == 1000
        for (a_start, a_stop), (b_start, _) in zip(boundaries, boundaries[1:]):
            assert a_stop == b_start

    def test_rows_per_tile(self):
        plan = Tiler(1024).plan(total_rows=1000, row_width=16)
        assert plan.rows_per_tile == 64
        assert plan.num_tiles == 16  # ceil(1000/64)

    def test_tiles_reassemble(self):
        batch = {"x": np.arange(777)}
        tiler = Tiler(100 * 8)
        tiles = list(tiler.tiles(batch, row_width=8))
        reassembled = np.concatenate([t["x"] for t in tiles])
        assert np.array_equal(reassembled, batch["x"])

    def test_ragged_last_tile(self):
        plan = Tiler(80).plan(total_rows=25, row_width=8)
        sizes = [stop - start for start, stop in plan.boundaries()]
        assert sizes == [10, 10, 5]

    def test_empty_input(self):
        plan = Tiler(1024).plan(total_rows=0, row_width=8)
        assert plan.num_tiles == 0
        assert plan.average_tile_rows == 0.0

    def test_wide_rows(self):
        # Rows wider than the tile still make progress one row at a time.
        plan = Tiler(16).plan(total_rows=5, row_width=100)
        assert plan.rows_per_tile == 1
        assert plan.num_tiles == 5

    def test_invalid_tile_size(self):
        with pytest.raises(ValueError):
            Tiler(0)


class TestGPLConfig:
    def test_defaults_match_paper(self):
        config = GPLConfig()
        assert config.tile_bytes == 1024 * 1024  # "the default size (1MB)"
        assert config.concurrent

    def test_validation(self):
        with pytest.raises(ValueError):
            GPLConfig(tile_bytes=100)
        with pytest.raises(ValueError):
            GPLConfig(default_workgroups=0)

    def test_with_helpers(self):
        config = GPLConfig()
        assert config.with_tile_bytes(2 << 20).tile_bytes == 2 << 20
        assert not config.without_concurrency().concurrent
        assert config.with_workgroups({0: 4}).workgroups_for_stage(0) == 4

    def test_workgroups_fallback(self):
        config = GPLConfig(workgroups={1: 4}, default_workgroups=16)
        assert config.workgroups_for_stage(0) == 16
        assert config.workgroups_for_stage(1) == 4

    def test_fit_workgroups_feasible_untouched(self):
        config = GPLConfig(default_workgroups=8)
        launches = [
            KernelLaunch(
                spec=spec(f"k{i}"),
                tuples=100,
                workgroups=8,
                in_bytes_per_tuple=8,
                out_bytes_per_tuple=8,
                label=f"k{i}",
            )
            for i in range(2)
        ]
        fitted = config.fit_workgroups(launches, AMD_A10)
        assert fitted == {0: 8, 1: 8}

    def test_fit_workgroups_scales_down(self):
        config = GPLConfig(default_workgroups=128)
        launches = [
            KernelLaunch(
                spec=spec(f"k{i}"),
                tuples=100,
                workgroups=128,
                in_bytes_per_tuple=8,
                out_bytes_per_tuple=8,
                label=f"k{i}",
            )
            for i in range(4)
        ]
        fitted = config.fit_workgroups(launches, AMD_A10)
        fitted_launches = [
            launch.with_workgroups(fitted[index])
            for index, launch in enumerate(launches)
        ]
        assert check_segment_feasible(fitted_launches, AMD_A10)
        # Relative allocation is preserved (all equal here).
        assert len(set(fitted.values())) == 1
