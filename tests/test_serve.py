"""Query serving: scheduling, admission, caches, determinism.

The serving contract: a :class:`~repro.serve.QueryService` answers every
query with exactly the rows the engines produce standalone, schedules
deterministically (same seed and trace => identical
:meth:`ServiceReport.counters_dict`), partitions the shared memory
budget via admission rounds, and caches make repeat shapes cheap without
ever changing an answer.
"""

import pytest

from repro.core import GPLConfig, GPLEngine
from repro.errors import ExecutionError, ReproError
from repro.faults import FaultPlan
from repro.gpu import AMD_A10, NVIDIA_K40
from repro.model import (
    calibration_cache_stats,
    clear_calibration_cache,
    clear_search_cache,
    search_cache_stats,
)
from repro.serve import (
    PlanCache,
    QueryService,
    Scheduler,
    ScheduledQuery,
    percentile,
)
from repro.tpch import generate_database, q5, q7, q9, q14

MIB = 1024 * 1024


def service_for(db, **kwargs):
    kwargs.setdefault("max_concurrent", 4)
    return QueryService(db, AMD_A10, **kwargs)


# ---------------------------------------------------------------------------
# scheduler unit behavior
# ---------------------------------------------------------------------------


def _sq(index, cost, footprint):
    return ScheduledQuery(
        index=index,
        spec=None,
        plan=None,
        est_cost_cycles=cost,
        footprint_bytes=footprint,
        plan_cache_hit=False,
    )


class TestScheduler:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ExecutionError):
            Scheduler("priority")

    def test_fifo_preserves_submission_order(self):
        queue = [_sq(2, 1.0, 0.0), _sq(0, 9.0, 0.0), _sq(1, 5.0, 0.0)]
        assert [q.index for q in Scheduler("fifo").order(queue)] == [0, 1, 2]

    def test_sjf_orders_by_cost_with_index_ties(self):
        queue = [_sq(0, 9.0, 0.0), _sq(1, 1.0, 0.0), _sq(2, 1.0, 0.0)]
        assert [q.index for q in Scheduler("sjf").order(queue)] == [1, 2, 0]

    def test_rounds_respect_slot_cap(self):
        queue = [_sq(i, 1.0, 1.0) for i in range(5)]
        rounds = Scheduler("fifo").admission_rounds(queue, 2, 100.0)
        assert [len(r) for r in rounds] == [2, 2, 1]

    def test_rounds_respect_budget(self):
        queue = [_sq(i, 1.0, 10.0) for i in range(4)]
        rounds = Scheduler("fifo").admission_rounds(queue, 4, 25.0)
        assert [len(r) for r in rounds] == [2, 2]

    def test_oversized_query_admitted_alone(self):
        # Never silently dropped: per-query admission control downstream
        # decides between the Delta ladder and a typed rejection.
        queue = [_sq(0, 1.0, 500.0), _sq(1, 1.0, 1.0)]
        rounds = Scheduler("fifo").admission_rounds(queue, 4, 100.0)
        assert [len(r) for r in rounds] == [1, 1]

    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.95) == 3.0
        values = [float(v) for v in range(1, 11)]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.95) == 10.0


# ---------------------------------------------------------------------------
# end-to-end serving
# ---------------------------------------------------------------------------


class TestQueryService:
    def test_answers_match_standalone_engine(self, tiny_db):
        service = service_for(tiny_db)
        report = service.run([q5(), q14()])
        assert report.completed == 2
        for ticket, spec in ((0, q5()), (1, q14())):
            standalone = GPLEngine(tiny_db, AMD_A10).execute(spec)
            assert service.result_for(ticket).approx_equals(standalone)

    def test_sync_submit_returns_result(self, tiny_db):
        service = service_for(tiny_db)
        result = service.submit(q14())
        assert result.num_rows == 1
        assert service.pending == 0
        # The sync path warms the same caches the async path uses.
        assert service.plan_cache.stats.misses >= 1

    def test_enqueue_tickets_and_drain(self, tiny_db):
        service = service_for(tiny_db)
        tickets = [service.enqueue(q) for q in (q5(), q9(), q14())]
        assert tickets == [0, 1, 2]
        assert service.pending == 3
        report = service.drain()
        assert service.pending == 0
        assert report.num_queries == 3
        assert {r.index for r in report.records} == {0, 1, 2}

    def test_fifo_vs_sjf_ordering(self, tiny_db):
        # Q9 is the most expensive of the paper's queries, Q14 the
        # cheapest; with one slot per round the policies must disagree.
        trace = [q9(), q14()]
        fifo = service_for(tiny_db, policy="fifo", max_concurrent=1)
        sjf = service_for(tiny_db, policy="sjf", max_concurrent=1)
        fifo_schedule = [
            r[1] for r in fifo.run(trace).counters_dict()["schedule"]
        ]
        sjf_schedule = [
            r[1] for r in sjf.run(trace).counters_dict()["schedule"]
        ]
        assert fifo_schedule == ["Q9", "Q14"]
        assert sjf_schedule == ["Q14", "Q9"]

    def test_sjf_improves_mean_latency(self, tiny_db):
        trace = [q9(), q14(), q14(), q14()]
        fifo = service_for(tiny_db, policy="fifo", max_concurrent=1)
        sjf = service_for(tiny_db, policy="sjf", max_concurrent=1)
        fifo_lat = fifo.run(trace).latencies_ms()
        sjf_lat = sjf.run(trace).latencies_ms()
        assert sum(sjf_lat) < sum(fifo_lat)

    def test_concurrent_rounds_beat_sequential_makespan(self, tiny_db):
        report = service_for(tiny_db, max_concurrent=4).run(
            [q5(), q9(), q14(), q7()]
        )
        assert report.num_rounds == 1
        assert report.makespan_ms < report.sequential_ms
        assert report.throughput_qps > 0

    def test_slot_partitioning_across_round_members(self, tiny_db):
        # Alone, a query gets the device's full concurrency; in a round
        # of >= C members everyone drops to one slot.
        alone = service_for(tiny_db, max_concurrent=1).run([q5()])
        shared = service_for(tiny_db, max_concurrent=4).run(
            [q5(), q9(), q14(), q7()]
        )
        assert alone.records[0].slots == AMD_A10.concurrency
        assert all(r.slots == 1 for r in shared.records)
        # Losing slots is the simulated cost of co-residency.
        q5_shared = next(r for r in shared.records if r.query == "Q5")
        assert q5_shared.exec_ms >= alone.records[0].exec_ms


class TestAdmission:
    def test_budget_splits_trace_into_rounds(self, tiny_db):
        # Footprints at the default tile: Q5 ~8.1 MiB, Q14 ~3.4 MiB,
        # Q7 ~8.0 MiB.  No pair fits a 10 MiB budget, so every query
        # gets its own round even with free slots.
        service = service_for(
            tiny_db, max_concurrent=4, memory_budget_bytes=10 * MIB
        )
        report = service.run([q5(), q14(), q7()])
        assert report.num_rounds == 3
        assert report.completed == 3

    def test_large_budget_single_round(self, tiny_db):
        service = service_for(
            tiny_db, max_concurrent=4, memory_budget_bytes=512 * MIB
        )
        report = service.run([q5(), q14(), q7()])
        assert report.num_rounds == 1

    def test_over_budget_query_shrinks_not_fails(self, tiny_db):
        # A budget below Q14's ~3.4 MiB default-config footprint but
        # above the Delta-ladder floor: admission control shrinks the
        # tile and the query still answers on GPL, correctly.
        service = service_for(tiny_db, memory_budget_bytes=2 * MIB)
        report = service.run([q14()])
        assert report.completed == 1
        assert report.records[0].engine == "GPL"
        standalone = GPLEngine(tiny_db, AMD_A10).execute(q14())
        assert service.result_for(0).approx_equals(standalone)

    def test_hopeless_budget_degrades_to_kbe(self, tiny_db):
        # Below even the Delta-ladder floor, the resilient fallback
        # chain answers via KBE (admission-exempt) instead of failing.
        service = service_for(tiny_db, memory_budget_bytes=64 * 1024)
        report = service.run([q5(), q14()])
        assert report.completed == 2
        assert all(r.engine == "KBE" for r in report.records)
        standalone = GPLEngine(tiny_db, AMD_A10).execute(q5())
        assert service.result_for(0).approx_equals(standalone)

    def test_sync_submit_propagates_typed_error(self, tiny_db):
        plan = FaultPlan.parse("abort@*:*,times=99")
        service = service_for(tiny_db, fault_plan=plan, resilient=False)
        with pytest.raises(ReproError):
            service.submit(q5())


class TestFaultComposition:
    def test_resilient_service_absorbs_faults(self, tiny_db):
        plan = FaultPlan.parse("oom")
        service = service_for(tiny_db, fault_plan=plan, resilient=True)
        report = service.run([q5(), q14()])
        assert report.completed == 2
        standalone = GPLEngine(tiny_db, AMD_A10).execute(q5())
        assert service.result_for(0).approx_equals(standalone)

    def test_bare_service_records_failures(self, tiny_db):
        plan = FaultPlan.parse("abort@*:*,times=99")
        service = service_for(tiny_db, fault_plan=plan, resilient=False)
        report = service.run([q5(), q14()])
        assert report.failed == 2
        assert all(not r.ok and r.error for r in report.records)


# ---------------------------------------------------------------------------
# caches
# ---------------------------------------------------------------------------


class TestCaches:
    def test_repeat_shapes_hit_plan_cache(self, tiny_db):
        service = service_for(tiny_db)
        first = service.run([q5(), q14()])
        second = service.run([q5(), q14()])
        assert first.plan_cache["misses"] == 2
        assert second.plan_cache["misses"] == 0
        assert second.plan_cache["hits"] >= 2

    def test_warm_results_identical_to_cold(self, tiny_db):
        service = service_for(tiny_db)
        service.run([q5(), q9(), q14()])
        service.run([q5(), q9(), q14()])
        for cold, warm in ((0, 3), (1, 4), (2, 5)):
            assert service.result_for(cold).approx_equals(
                service.result_for(warm)
            )

    def test_device_change_invalidates_plan_cache(self, tiny_db):
        shared = PlanCache()
        QueryService(
            tiny_db, AMD_A10, plan_cache=shared, max_concurrent=2
        ).run([q14()])
        misses_after_amd = shared.stats.misses
        QueryService(
            tiny_db, NVIDIA_K40, plan_cache=shared, max_concurrent=2
        ).run([q14()])
        # The NVIDIA run may not reuse any AMD entry: at least one fresh
        # miss despite the identical query shape.
        assert shared.stats.misses > misses_after_amd

    def test_config_change_invalidates_plan_cache(self, tiny_db):
        shared = PlanCache()
        service_for(tiny_db, plan_cache=shared).run([q14()])
        misses_plain = shared.stats.misses
        service_for(
            tiny_db, plan_cache=shared, partitioned_joins=True
        ).run([q14()])
        assert shared.stats.misses > misses_plain

    def test_database_change_invalidates_plan_cache(self, tiny_db):
        other_db = generate_database(scale=0.004)
        shared = PlanCache()
        service_for(tiny_db, plan_cache=shared).run([q14()])
        misses_first = shared.stats.misses
        QueryService(
            other_db, AMD_A10, plan_cache=shared, max_concurrent=2
        ).run([q14()])
        assert shared.stats.misses > misses_first

    def test_plan_cache_lru_eviction(self, tiny_db):
        cache = PlanCache(max_entries=1)
        service = service_for(tiny_db, plan_cache=cache)
        service.run([q5(), q14()])
        assert len(cache) == 1
        assert cache.stats.evictions >= 1

    def test_calibration_and_search_caches_warm_up(self, tiny_db):
        clear_calibration_cache()
        clear_search_cache()
        service = service_for(tiny_db, policy="sjf")
        cold = service.run([q5(), q14()])
        warm = service.run([q5(), q14()])
        hot = service.run([q5(), q14()])
        assert cold.calibration_cache["misses"] == 1
        assert warm.calibration_cache["misses"] == 0
        assert cold.search_cache["misses"] > 0
        # The warm run may refine one segment whose cost input depends
        # on the cardinality observed during the first execution (the
        # epilogue sort); by the third run every key is stable.
        assert warm.search_cache["misses"] <= 1
        assert warm.search_cache["hits"] > 0
        assert hot.search_cache["misses"] == 0


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_report_counters(self):
        def one_run():
            clear_calibration_cache()
            clear_search_cache()
            db = generate_database(scale=0.002, seed=7)
            service = QueryService(
                db,
                AMD_A10,
                policy="sjf",
                max_concurrent=4,
                fault_plan=FaultPlan.parse("oom"),
            )
            report = service.run([q5(), q9(), q14(), q5(), q14()])
            rows = {
                ticket: service.result_for(ticket).sorted_rows()
                for ticket in range(5)
                if ticket in service.results
            }
            return report.counters_dict(), report.makespan_ms, rows

        first, second = one_run(), one_run()
        assert first[0] == second[0]
        assert first[1] == pytest.approx(second[1])
        assert first[2] == second[2]
