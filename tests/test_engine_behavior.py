"""Behavioural tests: the performance properties the paper claims.

These run at a moderate scale so pipelines actually fill; they assert
relative orderings (who is faster, who materializes less), never absolute
times.
"""

import pytest

from repro.core import GPLConfig, GPLEngine, GPLWithoutCEEngine
from repro.kbe import KBEEngine
from repro.ocelot import OcelotEngine
from repro.tpch import generate_database, query_by_name


@pytest.fixture(scope="module")
def db():
    return generate_database(scale=0.05)


@pytest.fixture(scope="module")
def runs(db, request):
    """One execution of Q8 per engine, shared across tests."""
    from repro.gpu import AMD_A10

    spec = query_by_name("Q8")
    return {
        "KBE": KBEEngine(db, AMD_A10).execute(spec),
        "GPL": GPLEngine(db, AMD_A10).execute(spec),
        "woCE": GPLWithoutCEEngine(db, AMD_A10).execute(spec),
        "Ocelot": OcelotEngine(db, AMD_A10).execute(spec),
    }


class TestRelativePerformance:
    def test_gpl_beats_kbe(self, runs):
        assert runs["GPL"].elapsed_ms < runs["KBE"].elapsed_ms

    def test_without_ce_loses_gpl_advantage(self, runs):
        assert runs["woCE"].elapsed_ms > runs["GPL"].elapsed_ms

    def test_all_queries_gpl_beats_kbe(self, db, amd):
        for name in ("Q5", "Q7", "Q9", "Q14"):
            spec = query_by_name(name)
            kbe = KBEEngine(db, amd).execute(spec)
            gpl = GPLEngine(db, amd).execute(spec)
            assert gpl.elapsed_ms < kbe.elapsed_ms, name

    def test_nvidia_gpl_beats_kbe(self, db, nvidia):
        spec = query_by_name("Q8")
        kbe = KBEEngine(db, nvidia).execute(spec)
        gpl = GPLEngine(db, nvidia).execute(spec)
        assert gpl.elapsed_ms < kbe.elapsed_ms


class TestMaterialization:
    def test_gpl_materializes_fraction_of_kbe(self, runs):
        ratio = runs["GPL"].counters.bytes_materialized / (
            runs["KBE"].counters.bytes_materialized
        )
        assert 0.0 < ratio < 0.4  # paper: 15-33%

    def test_gpl_moves_data_through_channels(self, runs):
        assert runs["GPL"].counters.bytes_channel > 0
        assert runs["KBE"].counters.bytes_channel == 0

    def test_hash_tables_still_materialized_in_gpl(self, runs):
        # Blocking kernels (hash build) cannot avoid global memory.
        assert runs["GPL"].counters.bytes_materialized > 0


class TestCounters:
    def test_kbe_launches_once_per_kernel(self, db, amd):
        engine = KBEEngine(db, amd)
        plan = engine.prepare(query_by_name("Q14"))
        expected = sum(
            len(op.kbe_kernels())
            for pipeline in plan.pipelines
            for op in pipeline.ops
        ) + sum(
            len(pipeline.sink.kbe_kernels()) for pipeline in plan.pipelines
        )
        result = engine.execute(query_by_name("Q14"))
        assert result.counters.kernel_launches == expected

    def test_gpl_launches_once_per_segment_kernel(self, db, amd):
        engine = GPLEngine(db, amd)
        result = engine.execute(query_by_name("Q14"))
        kbe_launches = KBEEngine(db, amd).execute(
            query_by_name("Q14")
        ).counters.kernel_launches
        assert result.counters.kernel_launches < kbe_launches

    def test_without_ce_launches_per_tile(self, db, amd):
        gpl = GPLEngine(db, amd).execute(query_by_name("Q14"))
        woce = GPLWithoutCEEngine(db, amd).execute(query_by_name("Q14"))
        assert woce.counters.kernel_launches > gpl.counters.kernel_launches

    def test_breakdown_sums_to_one(self, runs):
        for run in runs.values():
            breakdown = run.counters.breakdown()
            assert sum(breakdown.values()) == pytest.approx(1.0)

    def test_kbe_has_no_channel_or_delay(self, runs):
        breakdown = runs["KBE"].counters.breakdown()
        assert breakdown["DC_cost"] == 0.0
        assert breakdown["Delay"] == 0.0

    def test_utilization_in_unit_range(self, runs):
        for run in runs.values():
            assert 0.0 <= run.counters.valu_busy <= 1.0
            assert 0.0 <= run.counters.mem_unit_busy <= 1.0

    def test_profiler_report(self, runs):
        report = runs["GPL"].report
        assert report.elapsed_ms == pytest.approx(runs["GPL"].elapsed_ms)
        assert report.kernels, "per-kernel profiles present"
        for kernel in report.kernels:
            assert 0.0 <= kernel.valu_busy <= 1.0
            assert 0.0 <= kernel.occupancy <= 1.0


class TestConfiguration:
    def test_segment_configs_override(self, db, amd):
        base = GPLConfig()
        override = GPLConfig(tile_bytes=4 << 20)
        engine = GPLEngine(
            db, amd, base, segment_configs={"main": override}
        )
        assert engine.config_for("main") is override
        assert engine.config_for("anything_else") is base

    def test_without_ce_engine_name(self, db, amd):
        assert GPLWithoutCEEngine(db, amd).name == "GPL (w/o CE)"
        assert GPLEngine(db, amd).name == "GPL"
        assert GPLEngine(
            db, amd, GPLConfig(concurrent=False)
        ).name == "GPL (w/o CE)"

    def test_determinism_across_runs(self, db, amd):
        spec = query_by_name("Q5")
        a = GPLEngine(db, amd).execute(spec)
        b = GPLEngine(db, amd).execute(spec)
        assert a.counters.elapsed_cycles == b.counters.elapsed_cycles


class TestOcelotBehavior:
    def test_hash_table_cache_speeds_second_run(self, db, amd):
        engine = OcelotEngine(db, amd)
        first = engine.execute(query_by_name("Q5"))
        second = engine.execute(query_by_name("Q5"))
        assert second.elapsed_ms < first.elapsed_ms

    def test_cache_clear_restores_cost(self, db, amd):
        engine = OcelotEngine(db, amd)
        first = engine.execute(query_by_name("Q5"))
        engine.clear_hash_table_cache()
        third = engine.execute(query_by_name("Q5"))
        assert third.elapsed_ms == pytest.approx(first.elapsed_ms)

    def test_bitmap_kernel_used(self, db, amd):
        result = OcelotEngine(db, amd).execute(query_by_name("Q14"))
        names = {k.name for k in result.counters.kernel_stats}
        assert "k_bitmap_select" in names
        # No prefix-sum/scatter selection kernels in Ocelot.
        assert "k_scatter" not in names

    def test_ocelot_fewer_kernels_than_kbe(self, db, amd):
        spec = query_by_name("Q14")
        ocelot = OcelotEngine(db, amd).execute(spec)
        kbe = KBEEngine(db, amd).execute(spec)
        assert (
            ocelot.counters.kernel_launches < kbe.counters.kernel_launches
        )
