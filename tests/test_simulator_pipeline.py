"""Tests for the discrete-event pipelined (GPL-mode) simulation."""

import pytest

from repro.errors import SimulationError
from repro.gpu import (
    AMD_A10,
    ChannelConfig,
    DataLocation,
    KernelLaunch,
    KernelSpec,
    Simulator,
    StageSpec,
)


def spec(name, compute=10.0, memory=2.0):
    return KernelSpec(
        name=name,
        compute_instr=compute,
        memory_instr=memory,
        pm_per_workitem=32,
        lm_per_workitem=8,
    )


def stage(
    name,
    tuples,
    sel=1.0,
    wg=16,
    first=False,
    last=False,
    compute=10.0,
    memory=2.0,
    aux_reads=0.0,
    aux_ws=0.0,
):
    return StageSpec(
        launch=KernelLaunch(
            spec=spec(name, compute, memory),
            tuples=tuples,
            workgroups=wg,
            in_bytes_per_tuple=16,
            out_bytes_per_tuple=8,
            selectivity=sel,
            input_location=(
                DataLocation.GLOBAL if first else DataLocation.CHANNEL
            ),
            output_location=(
                DataLocation.GLOBAL if last else DataLocation.CHANNEL
            ),
            label=name,
        ),
        aux_reads_per_tuple=aux_reads,
        aux_working_set_bytes=aux_ws,
    )


def two_stage(tuples=100_000, sel=0.5, channel=None):
    stages = [
        stage("producer", tuples, sel=sel, first=True),
        stage("consumer", int(tuples * sel), sel=0.0, last=True),
    ]
    channels = [channel or ChannelConfig(depth_packets=8192)]
    return stages, channels


class TestBasics:
    def test_runs_and_is_positive(self):
        sim = Simulator(AMD_A10)
        stages, channels = two_stage()
        result = sim.run_pipeline(
            stages, channels, num_tiles=4, tile_tuples=25_000,
            tile_bytes=25_000 * 16,
        )
        assert result.elapsed_cycles > 0
        assert len(result.stage_stats) == 2

    def test_all_units_complete(self):
        sim = Simulator(AMD_A10)
        stages, channels = two_stage()
        result = sim.run_pipeline(
            stages, channels, num_tiles=4, tile_tuples=25_000,
            tile_bytes=25_000 * 16,
        )
        # consumer processed as many units as producer committed
        expected_units = 4 * stages[0].launch.workgroups
        assert result.stage_stats[0].tuples == pytest.approx(
            100_000, rel=0.02
        )
        assert result.peak_channel_packets[0] > 0
        assert result.channel_bytes > 0

    def test_empty_pipeline_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(AMD_A10).run_pipeline(
                [], [], num_tiles=1, tile_tuples=10, tile_bytes=100
            )

    def test_channel_count_mismatch(self):
        stages, _ = two_stage()
        with pytest.raises(SimulationError):
            Simulator(AMD_A10).run_pipeline(
                stages, [], num_tiles=1, tile_tuples=100, tile_bytes=1600
            )

    def test_zero_tiles_is_noop(self):
        sim = Simulator(AMD_A10)
        stages, channels = two_stage()
        result = sim.run_pipeline(
            stages, channels, num_tiles=0, tile_tuples=0, tile_bytes=0
        )
        assert result.elapsed_cycles == 0.0

    def test_single_stage_pipeline(self):
        sim = Simulator(AMD_A10)
        only = [stage("solo", 50_000, sel=1.0, first=True, last=True)]
        result = sim.run_pipeline(
            only, [], num_tiles=2, tile_tuples=25_000, tile_bytes=25_000 * 16
        )
        assert result.elapsed_cycles > 0

    def test_determinism(self):
        def run():
            stages, channels = two_stage()
            return Simulator(AMD_A10).run_pipeline(
                stages, channels, num_tiles=4, tile_tuples=25_000,
                tile_bytes=25_000 * 16,
            ).elapsed_cycles

        assert run() == run()


class TestResourceRules:
    def test_infeasible_segment_rejected(self):
        # Work-group counts violating Eq. 2 must be rejected.
        stages = [
            stage("a", 1000, first=True, wg=100),
            stage("b", 1000, last=True, wg=100),
        ]
        with pytest.raises(SimulationError):
            Simulator(AMD_A10).run_pipeline(
                stages, [ChannelConfig()], num_tiles=1, tile_tuples=1000,
                tile_bytes=16_000,
            )

    def test_elapsed_at_least_resource_floor(self):
        sim = Simulator(AMD_A10)
        stages, channels = two_stage()
        result = sim.run_pipeline(
            stages, channels, num_tiles=4, tile_tuples=25_000,
            tile_bytes=25_000 * 16,
        )
        total_compute = sum(s.compute_cycles for s in result.stage_stats)
        assert result.elapsed_cycles >= (
            total_compute / AMD_A10.num_cus * 0.999
        )

    def test_oversized_burst_rejected(self):
        # One work-group's output exceeding channel capacity deadlocks by
        # construction and must be diagnosed eagerly.
        stages = [
            stage("a", 1_000_000, sel=1.0, wg=2, first=True),
            stage("b", 1_000_000, sel=0.0, wg=2, last=True),
        ]
        tiny = ChannelConfig(num_channels=1, depth_packets=16)
        with pytest.raises(SimulationError):
            Simulator(AMD_A10).run_pipeline(
                stages, [tiny], num_tiles=1, tile_tuples=1_000_000,
                tile_bytes=16_000_000,
            )

    def test_contention_slows_pipeline(self):
        def run(factor):
            stages, channels = two_stage()
            return Simulator(AMD_A10).run_pipeline(
                stages, channels, num_tiles=4, tile_tuples=25_000,
                tile_bytes=25_000 * 16, contention_factor=factor,
            ).elapsed_cycles

        assert run(1.5) > run(1.0)


class TestPipelineDynamics:
    def test_concurrency_improves_elapsed(self):
        serial_device = AMD_A10.with_overrides(concurrency=1)

        def run(device):
            stages, channels = two_stage(tuples=400_000)
            return Simulator(device).run_pipeline(
                stages, channels, num_tiles=8, tile_tuples=50_000,
                tile_bytes=50_000 * 16,
            ).elapsed_cycles

        assert run(AMD_A10) <= run(serial_device)

    def test_delay_nonnegative(self):
        sim = Simulator(AMD_A10)
        stages, channels = two_stage()
        result = sim.run_pipeline(
            stages, channels, num_tiles=4, tile_tuples=25_000,
            tile_bytes=25_000 * 16,
        )
        assert result.delay_cycles >= 0.0

    def test_imbalanced_pipeline_has_more_delay(self):
        def run(consumer_compute):
            stages = [
                stage("p", 100_000, sel=1.0, first=True),
                stage(
                    "c", 100_000, sel=0.0, last=True,
                    compute=consumer_compute,
                ),
            ]
            return Simulator(AMD_A10).run_pipeline(
                stages, [ChannelConfig(depth_packets=8192)], num_tiles=4,
                tile_tuples=25_000, tile_bytes=25_000 * 16,
            )

        balanced = run(10.0)
        imbalanced = run(400.0)
        assert imbalanced.elapsed_cycles > balanced.elapsed_cycles

    def test_three_stage_chain(self):
        stages = [
            stage("s0", 100_000, sel=0.5, first=True),
            stage("s1", 50_000, sel=0.5),
            stage("s2", 25_000, sel=0.0, last=True),
        ]
        channels = [ChannelConfig(depth_packets=8192)] * 2
        result = Simulator(AMD_A10).run_pipeline(
            stages, channels, num_tiles=4, tile_tuples=25_000,
            tile_bytes=25_000 * 16,
        )
        assert result.elapsed_cycles > 0
        assert len(result.stage_stats) == 3
        # Selectivity shrinks traffic down the chain.
        assert (
            result.stage_stats[0].bytes_channel
            > result.stage_stats[1].bytes_channel
        )

    def test_exclusive_vs_single_stage_pipeline_consistency(self):
        """The two execution modes must agree on single-kernel workloads
        within a small factor — they share the same cost primitives and
        differ only in scheduling machinery."""
        launch = KernelLaunch(
            spec=spec("solo", compute=40, memory=3),
            tuples=200_000,
            workgroups=64,
            in_bytes_per_tuple=16,
            out_bytes_per_tuple=8,
            selectivity=0.5,
            output_location=DataLocation.GLOBAL,
            label="solo",
        )
        exclusive = Simulator(AMD_A10).run_exclusive(launch)
        pipelined = Simulator(AMD_A10).run_pipeline(
            [StageSpec(launch.with_workgroups(16))],
            [],
            num_tiles=4,
            tile_tuples=50_000,
            tile_bytes=50_000 * 16,
        )
        ratio = pipelined.elapsed_cycles / exclusive.elapsed_cycles
        assert 0.3 < ratio < 3.0

    def test_aux_reads_increase_cost(self):
        def run(aux_ws):
            stages = [
                stage("p", 100_000, sel=1.0, first=True),
                stage(
                    "probe", 100_000, sel=0.0, last=True,
                    aux_reads=3.0, aux_ws=aux_ws,
                ),
            ]
            return Simulator(AMD_A10).run_pipeline(
                stages, [ChannelConfig(depth_packets=8192)], num_tiles=4,
                tile_tuples=25_000, tile_bytes=25_000 * 16,
            ).elapsed_cycles

        assert run(512 * 1024 * 1024) > run(64 * 1024)
