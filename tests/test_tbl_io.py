"""Tests for dbgen-style .tbl export/import."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.relational import ColumnDef, DataType, Table, TableSchema
from repro.tpch import export_database, generate_database, import_database
from repro.tpch.tbl import read_tbl, write_tbl


@pytest.fixture(scope="module")
def db():
    return generate_database(scale=0.002)


class TestRoundTrip:
    def test_database_round_trip(self, db, tmp_path):
        written = export_database(db, tmp_path)
        assert set(written) == set(db.names)
        reloaded = import_database(tmp_path)
        for name in db.names:
            original = db.table(name)
            loaded = reloaded.table(name)
            assert loaded.num_rows == original.num_rows
            for column in original.schema:
                if column.dtype in (DataType.FLOAT32, DataType.FLOAT64):
                    # .tbl stores 2 decimal places, like dbgen
                    assert np.allclose(
                        loaded[column.name],
                        original[column.name],
                        atol=0.005,
                    )
                else:
                    assert np.array_equal(
                        loaded[column.name], original[column.name]
                    )

    def test_selected_tables_only(self, db, tmp_path):
        export_database(db, tmp_path, tables=["nation", "region"])
        assert (tmp_path / "nation.tbl").exists()
        assert not (tmp_path / "lineitem.tbl").exists()
        reloaded = import_database(tmp_path, tables=["nation", "region"])
        assert set(reloaded.names) == {"nation", "region"}

    def test_queries_agree_on_reimported_data(self, db, tmp_path, amd):
        from repro.core import GPLEngine
        from repro.tpch import q14

        export_database(db, tmp_path)
        reloaded = import_database(tmp_path)
        original_run = GPLEngine(db, amd).execute(q14())
        reloaded_run = GPLEngine(reloaded, amd).execute(q14())
        # prices round to cents in the file format; answers stay close
        assert abs(
            original_run.rows()[0][0] - reloaded_run.rows()[0][0]
        ) < 0.01


class TestFormat:
    def test_dbgen_line_format(self, db, tmp_path):
        write_tbl(db.table("nation"), tmp_path / "nation.tbl")
        lines = (tmp_path / "nation.tbl").read_text().splitlines()
        assert len(lines) == 25
        # trailing pipe, decoded strings, ISO-free integer keys
        assert lines[0] == "0|ALGERIA|0|"

    def test_dates_are_iso(self, db, tmp_path):
        write_tbl(db.table("orders"), tmp_path / "orders.tbl")
        first = (tmp_path / "orders.tbl").read_text().splitlines()[0]
        fields = first.split("|")
        year = fields[2].split("-")[0]
        assert 1992 <= int(year) <= 1998

    def test_floats_two_decimals(self, db, tmp_path):
        write_tbl(db.table("partsupp"), tmp_path / "ps.tbl")
        first = (tmp_path / "ps.tbl").read_text().splitlines()[0]
        cost = first.split("|")[3]
        assert len(cost.split(".")[1]) == 2


class TestErrors:
    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.tbl"
        path.write_text("1|2|3|\n")
        schema = TableSchema.of(
            ColumnDef("a", DataType.INT32), ColumnDef("b", DataType.INT32)
        )
        with pytest.raises(SchemaError):
            read_tbl(schema, path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SchemaError):
            import_database(tmp_path, tables=["nation"])

    def test_unknown_table(self, tmp_path):
        (tmp_path / "mystery.tbl").write_text("")
        with pytest.raises(SchemaError):
            import_database(tmp_path, tables=["mystery"])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "ok.tbl"
        path.write_text("1|2|\n\n3|4|\n")
        schema = TableSchema.of(
            ColumnDef("a", DataType.INT32), ColumnDef("b", DataType.INT32)
        )
        table = read_tbl(schema, path)
        assert table.to_rows() == [(1, 2), (3, 4)]
