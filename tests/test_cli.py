"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Q14"])
        assert args.command == "run"
        assert args.engine == "gpl"
        assert args.device == "amd"
        assert args.scale == 0.02

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Q14", "--engine", "duckdb"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_dbgen(self, capsys):
        assert main(["dbgen", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out and "total" in out

    def test_run_q14(self, capsys):
        assert main(["run", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "promo_revenue" in out
        assert "elapsed" in out

    def test_run_kbe_engine(self, capsys):
        assert main(
            ["run", "Q14", "--engine", "kbe", "--scale", "0.002"]
        ) == 0
        assert "KBE" in capsys.readouterr().out

    def test_run_partitioned(self, capsys):
        assert main(
            ["run", "Q9", "--scale", "0.002", "--partitioned-joins"]
        ) == 0

    def test_compare(self, capsys):
        assert main(["compare", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "vs KBE" in out
        assert "Ocelot" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--device", "amd"]) == 0
        out = capsys.readouterr().out
        assert "best for" in out

    def test_tune(self, capsys):
        assert main(["tune", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "segment" in out and "predicted" in out

    def test_explain(self, capsys):
        assert main(["explain", "Q5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "probe order" in out and "ProbeOp" in out

    def test_nvidia_device(self, capsys):
        assert main(
            ["run", "Q14", "--device", "nvidia", "--scale", "0.002"]
        ) == 0
        assert "NVIDIA" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.policy == "fifo"
        assert args.max_concurrent == 8
        assert args.repeat == 2
        assert args.resilient is True

    def test_serve_policy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "edf"])

    def test_serve_replay(self, capsys):
        assert main(["serve", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "serving 10 queries" in out
        assert "throughput" in out and "p95" in out

    def test_serve_sjf_policy(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--policy", "sjf",
             "--queries", "Q9,Q14", "--repeat", "1"]
        ) == 0
        assert "sjf" in capsys.readouterr().out

    def test_serve_ssb_trace(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q1.1,Q2.1",
             "--repeat", "1"]
        ) == 0
        assert "2/2 ok" in capsys.readouterr().out

    def test_serve_mixed_trace_exits_2(self, capsys):
        # Exit-path consistency: typed ReproErrors from serve flow
        # through the same top-level handler as every other command.
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14,Q1.1"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_unknown_query_exits_2(self, capsys):
        assert main(["serve", "--queries", "Q99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_faults_compose_with_resilience(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14",
             "--repeat", "2", "--inject-faults", "oom"]
        ) == 0
        assert "2/2 ok" in capsys.readouterr().out

    def test_serve_faults_without_resilience_exit_1(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14",
             "--repeat", "1", "--inject-faults", "abort@*:*,times=99",
             "--no-resilient"]
        ) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_serve_caching_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.result_cache_bytes == 64 * 1024 * 1024
        assert args.no_result_cache is False
        assert args.batch_dedupe is False

    def test_serve_batch_dedupe(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q5,Q9",
             "--repeat", "2", "--batch-dedupe"]
        ) == 0
        out = capsys.readouterr().out
        assert "deduped" in out and "shared-scan" in out
        assert "4/4 ok" in out

    def test_serve_result_cache_budget(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14",
             "--repeat", "2", "--result-cache-bytes", "134217728"]
        ) == 0
        assert "result cache" in capsys.readouterr().out

    def test_serve_no_result_cache(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14",
             "--repeat", "1", "--no-result-cache"]
        ) == 0
        assert "result cache" not in capsys.readouterr().out


class TestDevicesFlag:
    def test_run_sharded(self, capsys):
        assert main(
            ["run", "Q14", "--scale", "0.002", "--devices", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "shard report" in out
        assert "slowest shard + merge" in out
        assert "promo_revenue" in out

    def test_run_mixed_pool_spec(self, capsys):
        assert main(
            ["run", "Q14", "--scale", "0.002",
             "--devices", "amd,nvidia"]
        ) == 0
        assert "shard report" in capsys.readouterr().out

    def test_run_devices_rejects_non_gpl_engine(self, capsys):
        assert main(
            ["run", "Q14", "--scale", "0.002", "--devices", "2",
             "--engine", "kbe"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_run_bad_pool_spec_exits_2(self, capsys):
        assert main(
            ["run", "Q14", "--scale", "0.002",
             "--devices", "amd,warp9"]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_sharded(self, capsys):
        assert main(
            ["serve", "--scale", "0.002", "--queries", "Q14",
             "--repeat", "2", "--devices", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "a pool of 2 devices" in out
        assert "x2 (sharded)" in out
