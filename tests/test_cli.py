"""Tests for the command-line interface (python -m repro)."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "Q14"])
        assert args.command == "run"
        assert args.engine == "gpl"
        assert args.device == "amd"
        assert args.scale == 0.02

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "Q14", "--engine", "duckdb"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_dbgen(self, capsys):
        assert main(["dbgen", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out and "total" in out

    def test_run_q14(self, capsys):
        assert main(["run", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "promo_revenue" in out
        assert "elapsed" in out

    def test_run_kbe_engine(self, capsys):
        assert main(
            ["run", "Q14", "--engine", "kbe", "--scale", "0.002"]
        ) == 0
        assert "KBE" in capsys.readouterr().out

    def test_run_partitioned(self, capsys):
        assert main(
            ["run", "Q9", "--scale", "0.002", "--partitioned-joins"]
        ) == 0

    def test_compare(self, capsys):
        assert main(["compare", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "vs KBE" in out
        assert "Ocelot" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--device", "amd"]) == 0
        out = capsys.readouterr().out
        assert "best for" in out

    def test_tune(self, capsys):
        assert main(["tune", "Q14", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "segment" in out and "predicted" in out

    def test_explain(self, capsys):
        assert main(["explain", "Q5", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "probe order" in out and "ProbeOp" in out

    def test_nvidia_device(self, capsys):
        assert main(
            ["run", "Q14", "--device", "nvidia", "--scale", "0.002"]
        ) == 0
        assert "NVIDIA" in capsys.readouterr().out
