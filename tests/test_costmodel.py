"""Tests for the analytical cost model (Eqs. 2–9)."""

import dataclasses

import pytest

from repro.core import GPLConfig, GPLEngine
from repro.gpu import AMD_A10, KernelSpec
from repro.model import (
    CostModel,
    KernelCostInput,
    SegmentCostInput,
    calibrate_channels,
    plan_cost_inputs,
)
from repro.tpch import q8, q14

MIB = 1024 * 1024


@pytest.fixture(scope="module")
def model():
    return CostModel(AMD_A10, calibrate_channels(AMD_A10))


def kernel_input(
    compute=20.0, memory=2.0, sel=1.0, leaf=False, aux=0.0, aux_ws=0.0
):
    return KernelCostInput(
        spec=KernelSpec(
            name="k",
            compute_instr=compute,
            memory_instr=memory,
            pm_per_workitem=32,
            lm_per_workitem=8,
        ),
        selectivity=sel,
        in_width=16,
        out_width=8,
        aux_reads_per_tuple=aux,
        aux_working_set_bytes=aux_ws,
        is_leaf=leaf,
    )


def segment(kernels, rows=1_000_000, width=16, name="seg"):
    return SegmentCostInput(
        name=name, kernels=tuple(kernels), source_rows=rows, source_width=width
    )


class TestSegmentEstimates:
    def test_positive_and_decomposed(self, model):
        seg = segment([kernel_input(leaf=True), kernel_input(sel=0.0)])
        estimate = model.estimate_segment(seg, GPLConfig())
        assert estimate.total_cycles > 0
        assert estimate.num_tiles >= 1
        assert len(estimate.kernels) == 2
        for kernel in estimate.kernels:
            assert kernel.compute_cycles > 0
            assert kernel.time_cycles == (
                kernel.compute_cycles + kernel.memory_cycles
            )

    def test_empty_segment(self, model):
        estimate = model.estimate_segment(segment([]), GPLConfig())
        assert estimate.total_cycles == 0.0

    def test_monotone_in_compute_instructions(self, model):
        cheap = model.estimate_segment(
            segment([kernel_input(compute=10, leaf=True)]), GPLConfig()
        )
        costly = model.estimate_segment(
            segment([kernel_input(compute=200, leaf=True)]), GPLConfig()
        )
        assert costly.total_cycles > cheap.total_cycles

    def test_monotone_in_rows(self, model):
        small = model.estimate_segment(
            segment([kernel_input(leaf=True)], rows=100_000), GPLConfig()
        )
        large = model.estimate_segment(
            segment([kernel_input(leaf=True)], rows=1_000_000), GPLConfig()
        )
        assert large.total_cycles > small.total_cycles

    def test_aux_working_set_raises_cost(self, model):
        cold = model.estimate_segment(
            segment(
                [kernel_input(leaf=True, aux=3.0, aux_ws=512 * MIB)]
            ),
            GPLConfig(),
        )
        warm = model.estimate_segment(
            segment([kernel_input(leaf=True, aux=3.0, aux_ws=1024)]),
            GPLConfig(),
        )
        assert cold.total_cycles > warm.total_cycles

    def test_tile_count_matches_tiler(self, model):
        seg = segment([kernel_input(leaf=True)], rows=1_000_000, width=16)
        estimate = model.estimate_segment(
            seg, GPLConfig(tile_bytes=1 * MIB)
        )
        # 16 MB of input in 1 MB tiles
        assert estimate.num_tiles == 16

    def test_infeasible_config_fitted_with_contention(self, model):
        seg = segment([kernel_input(leaf=True) for _ in range(4)])
        # wg=512 per kernel violates Eq. 2 and is halved down to wg=32,
        # so the fair comparison is against a feasible wg=32 request: the
        # oversubscribed one must pay scheduling contention on top.
        fitted_equivalent = model.estimate_segment(
            seg, GPLConfig(default_workgroups=32)
        )
        oversubscribed = model.estimate_segment(
            seg, GPLConfig(default_workgroups=512)
        )
        assert fitted_equivalent.feasible
        assert not oversubscribed.feasible
        assert oversubscribed.total_cycles > fitted_equivalent.total_cycles

    def test_delay_zero_for_single_kernel(self, model):
        estimate = model.estimate_segment(
            segment([kernel_input(leaf=True)]), GPLConfig()
        )
        assert estimate.delay_cycles == 0.0

    def test_imbalance_produces_delay(self, model):
        balanced = model.estimate_segment(
            segment(
                [kernel_input(leaf=True), kernel_input(compute=20)]
            ),
            GPLConfig(),
        )
        imbalanced = model.estimate_segment(
            segment(
                [kernel_input(leaf=True), kernel_input(compute=2000)]
            ),
            GPLConfig(),
        )
        assert imbalanced.delay_cycles > balanced.delay_cycles


class TestPlanInputs:
    def test_plan_cost_inputs_cover_pipelines(self, small_db):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q8())
        segments = plan_cost_inputs(plan, small_db)
        assert {s.name for s in segments} == {
            p.pipeline_id for p in plan.pipelines
        }

    def test_leaf_flags(self, small_db):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q14())
        segments = plan_cost_inputs(plan, small_db)
        main = next(s for s in segments if s.name == "main")
        assert main.kernels[0].is_leaf
        assert not any(k.is_leaf for k in main.kernels[1:])

    def test_probe_aux_estimated(self, small_db):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q14())
        segments = plan_cost_inputs(plan, small_db)
        main = next(s for s in segments if s.name == "main")
        probes = [k for k in main.kernels if k.spec.name == "k_probe"]
        assert probes and probes[0].aux_working_set_bytes > 0

    def test_source_rows_flow(self, small_db):
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q14())
        segments = plan_cost_inputs(plan, small_db)
        main = next(s for s in segments if s.name == "main")
        assert main.source_rows == small_db.num_rows("lineitem")
        epilogue = next(s for s in segments if s.name == "epilogue")
        assert epilogue.source_rows <= 2  # global aggregate output


class TestEndToEndAccuracy:
    @pytest.mark.parametrize("factory", [q8, q14])
    def test_default_config_within_50_percent(self, small_db, factory):
        model = CostModel(AMD_A10, calibrate_channels(AMD_A10))
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(factory())
        segments = plan_cost_inputs(plan, small_db)
        estimated = model.estimate_plan(segments, default=GPLConfig())
        measured = engine.execute(factory()).counters.elapsed_cycles
        assert abs(measured - estimated) / measured < 0.5

    def test_estimate_plan_sums_segments(self, small_db):
        model = CostModel(AMD_A10, calibrate_channels(AMD_A10))
        engine = GPLEngine(small_db, AMD_A10)
        plan = engine.prepare(q14())
        segments = plan_cost_inputs(plan, small_db)
        config = GPLConfig()
        total = model.estimate_plan(segments, default=config)
        parts = sum(
            model.estimate_segment(s, config).total_cycles for s in segments
        )
        assert total == pytest.approx(parts)
