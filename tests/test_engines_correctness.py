"""End-to-end correctness: every engine vs the independent reference.

This is the load-bearing integration suite: the KBE baseline, GPL, the
w/o-CE variant, and the Ocelot comparator must all return the reference
answers for every workload query — whatever tiling, channel, or
work-group configuration is in effect.
"""

import pytest

from repro.core import GPLConfig, GPLEngine, GPLWithoutCEEngine
from repro.gpu import ChannelConfig
from repro.kbe import KBEEngine
from repro.ocelot import OcelotEngine
from repro.tpch import query_by_name, reference_answer
from repro.tpch.queries import q14

from .conftest import assert_rows_close

QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")


def reference_rows(db, name, **kwargs):
    answer = reference_answer(db, name, **kwargs)
    return sorted(zip(*[answer[column] for column in answer]))


@pytest.fixture(scope="module")
def references(small_db):
    return {name: reference_rows(small_db, name) for name in QUERIES}


class TestKBECorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_matches_reference(self, small_db, amd, references, name):
        result = KBEEngine(small_db, amd).execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), references[name])


class TestGPLCorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_matches_reference(self, small_db, amd, references, name):
        result = GPLEngine(small_db, amd).execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), references[name])

    @pytest.mark.parametrize("name", QUERIES)
    def test_nvidia_device_same_answers(
        self, small_db, nvidia, references, name
    ):
        result = GPLEngine(small_db, nvidia).execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), references[name])

    @pytest.mark.parametrize("tile_kb", [64, 256, 4096])
    def test_tile_size_never_changes_answers(
        self, small_db, amd, references, tile_kb
    ):
        engine = GPLEngine(
            small_db, amd, GPLConfig(tile_bytes=tile_kb * 1024)
        )
        result = engine.execute(query_by_name("Q5"))
        assert_rows_close(result.sorted_rows(), references["Q5"])

    def test_channel_config_never_changes_answers(
        self, small_db, amd, references
    ):
        engine = GPLEngine(
            small_db,
            amd,
            GPLConfig(channel=ChannelConfig(num_channels=1, packet_bytes=64)),
        )
        result = engine.execute(query_by_name("Q9"))
        assert_rows_close(result.sorted_rows(), references["Q9"])

    def test_workgroups_never_change_answers(self, small_db, amd, references):
        engine = GPLEngine(small_db, amd, GPLConfig(default_workgroups=2))
        result = engine.execute(query_by_name("Q8"))
        assert_rows_close(result.sorted_rows(), references["Q8"])


class TestWithoutCECorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_matches_reference(self, small_db, amd, references, name):
        result = GPLWithoutCEEngine(small_db, amd).execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), references[name])


class TestOcelotCorrectness:
    @pytest.mark.parametrize("name", QUERIES)
    def test_matches_reference(self, small_db, amd, references, name):
        result = OcelotEngine(small_db, amd).execute(query_by_name(name))
        assert_rows_close(result.sorted_rows(), references[name])

    def test_cache_does_not_change_answers(self, small_db, amd, references):
        engine = OcelotEngine(small_db, amd)
        first = engine.execute(query_by_name("Q5"))
        second = engine.execute(query_by_name("Q5"))  # hash tables cached
        assert_rows_close(first.sorted_rows(), references["Q5"])
        assert_rows_close(second.sorted_rows(), references["Q5"])


class TestSelectivitySweep:
    @pytest.mark.parametrize("selectivity", [0.01, 0.25, 1.0])
    def test_q14_sweep_correct(self, small_db, amd, selectivity):
        expected = reference_rows(small_db, "Q14", selectivity=selectivity)
        for engine in (KBEEngine(small_db, amd), GPLEngine(small_db, amd)):
            result = engine.execute(q14(selectivity=selectivity))
            assert_rows_close(result.sorted_rows(), expected, rel=1e-8)

    def test_q14_full_selectivity_selects_everything(self, small_db, amd):
        result = GPLEngine(small_db, amd).execute(q14(selectivity=1.0))
        # With every lineitem selected, promo share approaches the PROMO
        # type fraction (25 of 150 types).
        (value,) = result.rows()[0]
        assert value == pytest.approx(100.0 * 25 / 150, rel=0.1)


class TestResultObject:
    def test_metadata(self, small_db, amd):
        result = GPLEngine(small_db, amd).execute(query_by_name("Q5"))
        assert result.query == "Q5"
        assert result.engine == "GPL"
        assert result.device == amd.name
        assert result.columns == ("n_name", "revenue")
        assert result.num_rows == len(result.rows())
        assert result.elapsed_ms > 0

    def test_column_access(self, small_db, amd):
        result = GPLEngine(small_db, amd).execute(query_by_name("Q5"))
        assert len(result.column("revenue")) == result.num_rows
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            result.column("ghost")

    def test_q5_ordered_by_revenue_desc(self, small_db, amd):
        result = GPLEngine(small_db, amd).execute(query_by_name("Q5"))
        revenue = list(result.column("revenue"))
        assert revenue == sorted(revenue, reverse=True)

    def test_decoded_rows(self, small_db, amd):
        from repro.tpch.schema import NATIONS

        result = GPLEngine(small_db, amd).execute(query_by_name("Q5"))
        decoded = result.decoded_rows()
        assert decoded, "Q5 returns rows"
        for name, revenue in decoded:
            assert name in NATIONS  # codes decoded to nation names
            assert isinstance(revenue, float) or revenue == revenue

    def test_decoded_rows_q7_derived(self, small_db, amd):
        from repro.tpch.schema import NATIONS

        result = GPLEngine(small_db, amd).execute(query_by_name("Q7"))
        for supp, cust, year, revenue in result.decoded_rows():
            assert supp in ("FRANCE", "GERMANY")
            assert cust in ("FRANCE", "GERMANY")
            assert supp != cust

    def test_decoded_rows_without_dictionaries(self, small_db, amd):
        result = GPLEngine(small_db, amd).execute(query_by_name("Q14"))
        assert result.decoded_rows() == result.rows()

    def test_approx_equals(self, small_db, amd):
        a = GPLEngine(small_db, amd).execute(query_by_name("Q14"))
        b = KBEEngine(small_db, amd).execute(query_by_name("Q14"))
        assert a.approx_equals(b)
        assert not a.approx_equals(
            GPLEngine(small_db, amd).execute(query_by_name("Q5"))
        )
