"""Targeted tests for paths the broader suites touch only indirectly."""

import numpy as np
import pytest

from repro.errors import ExecutionError, PlanError
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.plans.interpreter import naive_execute
from repro.plans.physical import PartitionOp, PartitionedBuildSink
from repro.plans.runtime import ExecutionContext
from repro.relational import col


class TestPartitionedBuildSinkKernels:
    def make(self):
        sink = PartitionedBuildSink("ht", "k", ("k", "v"), num_partitions=8)
        sink.bind(["k", "v"], {"k": 4, "v": 8})
        return sink

    def test_gpl_two_kernels(self):
        kernels = self.make().gpl_kernels()
        assert [k.spec.name for k in kernels] == [
            "k_partition",
            "k_hash_build",
        ]
        assert not any(k.spec.blocking for k in kernels)

    def test_kbe_four_kernels(self):
        kernels = self.make().kbe_kernels()
        assert [k.spec.name for k in kernels] == [
            "k_histogram",
            "k_prefix_sum",
            "k_scatter",
            "k_hash_build",
        ]

    def test_functional_lifecycle(self):
        context = ExecutionContext()
        sink = self.make()
        sink.start(context)
        sink.consume(
            {
                "k": np.array([1, 2, 3], dtype=np.int64),
                "v": np.array([1.0, 2.0, 3.0]),
            },
            context,
        )
        sink.finalize(context)
        table = context.hash_table("ht")
        assert table.num_rows == 3
        probe_idx, _ = table.probe(np.array([2]))
        assert probe_idx.size == 1

    def test_repr(self):
        assert "P=8" in repr(self.make())


class TestExecutionContext:
    def test_missing_hash_table(self):
        with pytest.raises(ExecutionError):
            ExecutionContext().hash_table("ghost")

    def test_missing_intermediate(self):
        with pytest.raises(ExecutionError):
            ExecutionContext().intermediate("ghost")


class TestInterpreterEdges:
    def test_disconnected_graph(self, tiny_db):
        spec = QuerySpec(
            name="cross",
            tables=(
                TableRef("lineitem", "lineitem"),
                TableRef("region", "region"),
            ),
            join_edges=(),
            fact="lineitem",
        )
        with pytest.raises(PlanError):
            naive_execute(spec, tiny_db)

    def test_no_aggregation_returns_raw_rows(self, tiny_db):
        spec = QuerySpec(
            name="raw",
            tables=(TableRef("region", "region"),),
            join_edges=(),
            fact="region",
        )
        answer = naive_execute(spec, tiny_db)
        assert len(answer["r_regionkey"]) == 5

    def test_empty_result(self, tiny_db):
        spec = QuerySpec(
            name="none",
            tables=(TableRef("region", "region"),),
            join_edges=(),
            fact="region",
            filters={"region": col("r_regionkey").gt(100)},
            aggregates=(AggSpec("n", "count"),),
        )
        answer = naive_execute(spec, tiny_db)
        assert answer["n"] == [0.0]

    def test_limit_and_order(self, tiny_db):
        spec = QuerySpec(
            name="top",
            tables=(TableRef("nation", "nation"),),
            join_edges=(),
            fact="nation",
            distinct=("n_regionkey",),
            order_by=("n_regionkey",),
            order_desc=(True,),
            limit=2,
        )
        answer = naive_execute(spec, tiny_db)
        assert answer["n_regionkey"] == [4, 3]


class TestPartitionOpBinding:
    def test_partition_op_binds_widths(self):
        op = PartitionOp("k", 4)
        op.bind(["k", "v"], ["k", "v"], {"k": 4, "v": 8}, 1.0)
        assert op.in_width == 12
        assert op.out_width == 12
        assert op.est_selectivity == 1.0
