"""Unit tests for the expression trees."""

import numpy as np
import pytest

from repro.errors import ExpressionError
from repro.relational import (
    And,
    Arith,
    CaseWhen,
    Col,
    Compare,
    InList,
    Lit,
    Not,
    Or,
    YearOf,
    col,
    lit,
)
from repro.relational.types import date_to_days

DATA = {
    "a": np.array([1.0, 2.0, 3.0, 4.0]),
    "b": np.array([4.0, 3.0, 2.0, 1.0]),
    "k": np.array([0, 1, 2, 3]),
}


class TestLeaves:
    def test_col(self):
        assert list(col("a").evaluate(DATA)) == [1.0, 2.0, 3.0, 4.0]

    def test_col_missing(self):
        with pytest.raises(ExpressionError):
            col("zzz").evaluate(DATA)

    def test_lit(self):
        assert float(lit(2.5).evaluate(DATA)) == 2.5

    def test_columns(self):
        assert col("a").columns() == {"a"}
        assert lit(1).columns() == frozenset()

    def test_leaf_instruction_counts(self):
        assert col("a").instruction_count() == 0
        assert lit(1).instruction_count() == 0


class TestArithmetic:
    def test_operator_sugar(self):
        expr = col("a") + col("b") * lit(2.0)
        assert list(expr.evaluate(DATA)) == [9.0, 8.0, 7.0, 6.0]

    def test_subtraction_and_division(self):
        expr = (col("a") - lit(1.0)) / lit(2.0)
        assert list(expr.evaluate(DATA)) == [0.0, 0.5, 1.0, 1.5]

    def test_reflected_operators(self):
        assert list((1.0 - col("a")).evaluate(DATA)) == [0.0, -1.0, -2.0, -3.0]
        assert list((2 * col("a")).evaluate(DATA))[0] == 2.0
        assert list((1 + col("a")).evaluate(DATA))[0] == 2.0

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Arith("%", col("a"), lit(2))

    def test_bad_operand(self):
        with pytest.raises(ExpressionError):
            col("a") + "not a number"

    def test_division_promotes_to_float(self):
        expr = col("k") / lit(2)
        assert expr.evaluate(DATA).dtype == np.float64

    def test_integer_division_allocates_no_float_copy(self, monkeypatch):
        """int/int division must not materialize a float64 copy of the
        operand column: ``np.true_divide`` already computes in float64,
        so the pre-cast was a same-valued whole-column allocation."""
        data = {
            "n": np.arange(1, 1001, dtype=np.int64),
            "d": np.arange(2, 1002, dtype=np.int32),
        }
        casts = []
        real_asarray = np.asarray

        def counting_asarray(*args, **kwargs):
            casts.append(kwargs.get("dtype"))
            return real_asarray(*args, **kwargs)

        monkeypatch.setattr(
            "repro.relational.expressions.np.asarray", counting_asarray
        )
        out = Arith("/", col("n"), col("d")).evaluate(data)
        assert casts == []  # no asarray call at all on the int/int path
        assert out.dtype == np.float64
        np.testing.assert_array_equal(
            out, data["n"].astype(np.float64) / data["d"].astype(np.float64)
        )

    def test_float32_division_still_widens_to_float64(self):
        data = {
            "n": np.array([1.0, 2.0, 3.0], dtype=np.float32),
            "d": np.array([4.0, 4.0, 4.0], dtype=np.float32),
        }
        out = Arith("/", col("n"), col("d")).evaluate(data)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, [0.25, 0.5, 0.75])

    def test_division_cost_exceeds_addition(self):
        add = (col("a") + col("b")).instruction_count()
        div = (col("a") / col("b")).instruction_count()
        assert div > add


class TestComparisons:
    @pytest.mark.parametrize(
        "method,expected",
        [
            ("eq", [False, False, False, False]),
            ("lt", [True, True, False, False]),
            ("le", [True, True, False, False]),
            ("gt", [False, False, True, True]),
            ("ge", [False, False, True, True]),
            ("ne", [True, True, True, True]),
        ],
    )
    def test_compare(self, method, expected):
        # a vs b: [1<4, 2<3, 3>2, 4>1]
        expr = getattr(col("a"), method)(col("b"))
        assert list(expr.evaluate(DATA)) == expected

    def test_eq_middle(self):
        data = {"a": np.array([1, 2, 2]), "b": np.array([2, 2, 3])}
        assert list(col("a").eq(col("b")).evaluate(data)) == [
            False,
            True,
            False,
        ]

    def test_unknown_comparison(self):
        with pytest.raises(ExpressionError):
            Compare("~", col("a"), col("b"))

    def test_between(self):
        expr = col("a").between(2, 3)
        assert list(expr.evaluate(DATA)) == [False, True, True, False]


class TestBoolean:
    def test_and_or_not(self):
        low = col("a").le(2)
        high = col("a").ge(3)
        assert list((low | high).evaluate(DATA)) == [True] * 4
        assert list((low & high).evaluate(DATA)) == [False] * 4
        assert list((~low).evaluate(DATA)) == [False, False, True, True]

    def test_columns_union(self):
        expr = col("a").lt(1) & col("b").gt(1)
        assert expr.columns() == {"a", "b"}

    def test_memory_reads(self):
        expr = col("a").lt(1) & col("b").gt(col("a"))
        assert expr.memory_reads() == 2


class TestInList:
    def test_membership(self):
        expr = col("k").isin([1, 3])
        assert list(expr.evaluate(DATA)) == [False, True, False, True]

    def test_empty_list(self):
        expr = col("k").isin([])
        assert list(expr.evaluate(DATA)) == [False] * 4

    def test_cost_scales_with_list(self):
        small = col("k").isin([1]).instruction_count()
        large = col("k").isin(list(range(20))).instruction_count()
        assert large > small


class TestCaseWhen:
    def test_basic(self):
        expr = CaseWhen(col("a").lt(3), col("b"), lit(0.0))
        assert list(expr.evaluate(DATA)) == [4.0, 3.0, 0.0, 0.0]

    def test_columns(self):
        expr = CaseWhen(col("a").lt(3), col("b"), col("k"))
        assert expr.columns() == {"a", "b", "k"}

    def test_instruction_count_positive(self):
        expr = CaseWhen(col("a").lt(3), col("b"), lit(0.0))
        assert expr.instruction_count() > 0


class TestYearOf:
    def test_exact_years(self):
        days = np.array(
            [
                date_to_days("1992-01-01"),
                date_to_days("1992-12-31"),
                date_to_days("1993-01-01"),
                date_to_days("1996-02-29"),  # leap day
            ],
            dtype=np.int32,
        )
        years = YearOf(col("d")).evaluate({"d": days})
        assert list(years) == [1992, 1992, 1993, 1996]

    def test_columns(self):
        assert YearOf(col("d")).columns() == {"d"}

    def test_instruction_count(self):
        assert YearOf(col("d")).instruction_count() > 0
