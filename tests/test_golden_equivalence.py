"""Golden equivalence: the vectorized runtime produces the seed's results.

The fixtures under ``tests/fixtures/`` were recorded from the seed commit
*before* the group-by/probe/simulator fast paths landed:

* ``golden_rows_sf005.json`` — a sha1 digest of the sorted, rounded
  result rows for every catalogue query (TPC-H Q5/Q7/Q8/Q9/Q14 and SSB
  Q1.1–Q4.3) under every engine at SF 0.05;
* ``trace_q9_gpl_sf005.json`` — the byte-exact ``--trace-out`` JSON of a
  traced GPL Q9 run;
* ``counters_q9_gpl_sf005.json`` — the simulator counters (elapsed
  cycles, cost breakdown, row count) of that same run.

Together they pin the optimization contract: identical rows, identical
simulator arithmetic, byte-identical trace export.  A legitimate
*model* change that moves cycles must re-record the fixtures and say so;
a perf-only change must never trip these tests.

The trace fixture was re-recorded once when ``CATEGORY_TRACKS`` gained
the ``shard`` track: only the header's track-name metadata changed —
every span event, counter, and cycle count stayed byte-identical.
"""

import hashlib
import json
import pathlib

import pytest

from repro.core import GPLEngine, GPLWithoutCEEngine
from repro.gpu import AMD_A10
from repro.kbe import KBEEngine
from repro.obs import Tracer, use_tracer
from repro.ssb import generate_ssb, ssb_query
from repro.tpch import generate_database, query_by_name

FIXTURES = pathlib.Path(__file__).parent / "fixtures"
ENGINES = {
    "GPLEngine": GPLEngine,
    "GPLWithoutCEEngine": GPLWithoutCEEngine,
    "KBEEngine": KBEEngine,
}
TPCH_QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")
SSB_QUERIES = (
    "Q1.1", "Q1.2", "Q1.3",
    "Q2.1", "Q2.2", "Q2.3",
    "Q3.1", "Q3.2", "Q3.3", "Q3.4",
    "Q4.1", "Q4.2", "Q4.3",
)


@pytest.fixture(scope="module")
def golden():
    return json.loads((FIXTURES / "golden_rows_sf005.json").read_text())


@pytest.fixture(scope="module")
def tpch_db():
    return generate_database(scale=0.05)


@pytest.fixture(scope="module")
def ssb_db():
    return generate_ssb(scale=0.05)


def _digest(result) -> str:
    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("query", TPCH_QUERIES)
def test_tpch_rows_match_seed(golden, tpch_db, query, engine_name):
    engine = ENGINES[engine_name](tpch_db, AMD_A10)
    result = engine.execute(query_by_name(query))
    assert _digest(result) == golden[f"tpch/{query}/{engine_name}"]


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("query", SSB_QUERIES)
def test_ssb_rows_match_seed(golden, ssb_db, query, engine_name):
    engine = ENGINES[engine_name](ssb_db, AMD_A10)
    result = engine.execute(ssb_query(query))
    assert _digest(result) == golden[f"ssb/{query}/{engine_name}"]


def test_traced_run_matches_seed_byte_for_byte(tpch_db, tmp_path):
    """Simulator determinism: counters and trace export are bit-equal."""
    from repro.model.search import clear_search_cache

    clear_search_cache()  # the fixture was recorded with a cold cache
    tracer = Tracer()
    with use_tracer(tracer):
        result = GPLEngine(tpch_db, AMD_A10).execute(query_by_name("Q9"))
    out = tmp_path / "trace.json"
    tracer.write_json(str(out))
    expected = (FIXTURES / "trace_q9_gpl_sf005.json").read_bytes()
    assert out.read_bytes() == expected

    witness = json.loads(
        (FIXTURES / "counters_q9_gpl_sf005.json").read_text()
    )
    assert result.counters.elapsed_cycles == witness["elapsed_cycles"]
    assert result.num_rows == witness["rows"]
    breakdown = {
        key: float(value)
        for key, value in result.counters.breakdown().items()
    }
    assert breakdown == witness["breakdown"]


def test_golden_fixture_covers_every_combination(golden):
    expected = {
        f"tpch/{query}/{engine}"
        for query in TPCH_QUERIES
        for engine in ENGINES
    } | {
        f"ssb/{query}/{engine}"
        for query in SSB_QUERIES
        for engine in ENGINES
    }
    assert set(golden) == expected
