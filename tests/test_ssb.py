"""Tests for the Star Schema Benchmark workload."""

import numpy as np
import pytest

from repro.core import GPLEngine
from repro.kbe import KBEEngine
from repro.plans.interpreter import naive_execute
from repro.ssb import (
    BRANDS,
    CATEGORIES,
    CITIES,
    MFGRS,
    SSB_QUERIES,
    generate_ssb,
    ssb_query,
)
from repro.ssb.schema import CITY_NATION
from repro.tpch.schema import NATION_REGION, NATIONS

from .conftest import assert_rows_close

ALL_QUERIES = tuple(SSB_QUERIES)


@pytest.fixture(scope="module")
def ssb_micro():
    return generate_ssb(scale=0.002)


@pytest.fixture(scope="module")
def ssb_small():
    return generate_ssb(scale=0.05)


class TestSchema:
    def test_hierarchies(self):
        assert len(MFGRS) == 5
        assert len(CATEGORIES) == 25
        assert len(BRANDS) == 1000
        assert len(CITIES) == 250
        # brand -> category -> mfgr rollup by construction
        assert BRANDS[0].startswith(CATEGORIES[0])
        assert CATEGORIES[0].startswith("MFGR#1")

    def test_city_nation_mapping(self):
        assert len(CITY_NATION) == len(CITIES)
        assert CITY_NATION[0] == 0
        assert CITY_NATION[19] == 1

    def test_lookup(self):
        assert ssb_query("Q1.1").name == "SSB-Q1.1"
        with pytest.raises(ValueError):
            ssb_query("Q9.9")


class TestDbgen:
    def test_cardinalities(self, ssb_micro):
        assert ssb_micro.num_rows("date") == 2557  # 7 years of days
        assert ssb_micro.num_rows("customer") == 60
        assert ssb_micro.num_rows("supplier") == 4
        assert ssb_micro.num_rows("part") == 400
        assert ssb_micro.num_rows("lineorder") == 12_000

    def test_revenue_identity(self, ssb_micro):
        lineorder = ssb_micro.table("lineorder")
        expected = (
            lineorder["lo_extendedprice"]
            * (100 - lineorder["lo_discount"])
            / 100.0
        )
        assert np.allclose(lineorder["lo_revenue"], expected)

    def test_geography_rollups(self, ssb_micro):
        customer = ssb_micro.table("customer")
        nation_of_city = np.asarray(CITY_NATION)
        region_of_nation = np.asarray(NATION_REGION)
        assert np.array_equal(
            customer["c_nation"], nation_of_city[customer["c_city"]]
        )
        assert np.array_equal(
            customer["c_region"], region_of_nation[customer["c_nation"]]
        )

    def test_orderdate_fk(self, ssb_micro):
        datekeys = set(ssb_micro.table("date")["d_datekey"].tolist())
        assert set(
            ssb_micro.table("lineorder")["lo_orderdate"].tolist()
        ) <= datekeys

    def test_determinism(self):
        a = generate_ssb(scale=0.002, seed=1)
        b = generate_ssb(scale=0.002, seed=1)
        assert np.array_equal(
            a.table("lineorder")["lo_revenue"],
            b.table("lineorder")["lo_revenue"],
        )

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            generate_ssb(scale=0)


class TestCorrectness:
    @pytest.mark.parametrize("name", ALL_QUERIES)
    def test_gpl_matches_interpreter(self, ssb_micro, amd, name):
        spec = ssb_query(name)
        reference = naive_execute(spec, ssb_micro)
        expected = sorted(zip(*[reference[c] for c in reference]))
        result = GPLEngine(ssb_micro, amd).execute(spec)
        assert_rows_close(result.sorted_rows(), expected, rel=1e-8)

    @pytest.mark.parametrize("name", ("Q1.1", "Q2.1", "Q3.1", "Q4.1"))
    def test_kbe_matches_interpreter(self, ssb_micro, amd, name):
        spec = ssb_query(name)
        reference = naive_execute(spec, ssb_micro)
        expected = sorted(zip(*[reference[c] for c in reference]))
        result = KBEEngine(ssb_micro, amd).execute(spec)
        assert_rows_close(result.sorted_rows(), expected, rel=1e-8)

    @pytest.mark.parametrize("name", ALL_QUERIES)
    def test_engines_agree_at_scale(self, ssb_small, amd, name):
        spec = ssb_query(name)
        kbe = KBEEngine(ssb_small, amd).execute(spec)
        gpl = GPLEngine(ssb_small, amd).execute(spec)
        assert kbe.approx_equals(gpl)

    def test_flight3_nonempty_at_scale(self, ssb_small, amd):
        result = GPLEngine(ssb_small, amd).execute(ssb_query("Q3.1"))
        assert result.num_rows > 0
        # ordered by year asc, then revenue desc within year
        rows = result.rows()
        years = [row[-2] for row in rows]
        assert years == sorted(years)

    def test_decoded_output(self, ssb_small, amd):
        result = GPLEngine(ssb_small, amd).execute(ssb_query("Q4.1"))
        for year, nation, profit in result.decoded_rows():
            assert nation in NATIONS
            assert 1992 <= year <= 1998


class TestPerformanceShape:
    def test_gpl_beats_kbe_on_ssb(self, ssb_small, amd):
        for name in ("Q2.1", "Q3.1", "Q4.1"):
            spec = ssb_query(name)
            kbe = KBEEngine(ssb_small, amd).execute(spec)
            gpl = GPLEngine(ssb_small, amd).execute(spec)
            assert gpl.elapsed_ms < kbe.elapsed_ms, name
