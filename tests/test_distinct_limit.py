"""Tests for SELECT DISTINCT and LIMIT support."""

import numpy as np
import pytest

from repro.core import GPLEngine
from repro.errors import PlanError
from repro.kbe import KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.relational import col


def distinct_nations_spec(limit=None) -> QuerySpec:
    return QuerySpec(
        name="distinct_nations",
        tables=(TableRef("customer", "customer"),),
        join_edges=(),
        fact="customer",
        filters={"customer": col("c_acctbal").gt(0.0)},
        distinct=("c_nationkey",),
        order_by=("c_nationkey",),
        limit=limit,
    )


def top_revenue_spec(limit) -> QuerySpec:
    return QuerySpec(
        name="top_suppliers",
        tables=(
            TableRef("lineitem", "lineitem"),
            TableRef("supplier", "supplier"),
        ),
        join_edges=(
            JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
        ),
        fact="lineitem",
        group_keys=("s_nationkey",),
        aggregates=(
            AggSpec("revenue", "sum", col("l_extendedprice")),
        ),
        order_by=("revenue",),
        order_desc=(True,),
        limit=limit,
    )


class TestDistinct:
    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_distinct_nations(self, tiny_db, amd, engine_cls):
        result = engine_cls(tiny_db, amd).execute(distinct_nations_spec())
        values = list(result.column("c_nationkey"))
        # genuinely distinct and sorted
        assert len(values) == len(set(values))
        assert values == sorted(values)
        # matches numpy ground truth
        table = tiny_db.table("customer")
        expected = sorted(
            set(
                table["c_nationkey"][table["c_acctbal"] > 0.0].tolist()
            )
        )
        assert values == expected

    def test_distinct_with_aggregates_rejected(self):
        with pytest.raises(PlanError):
            QuerySpec(
                name="bad",
                tables=(TableRef("customer", "customer"),),
                join_edges=(),
                fact="customer",
                distinct=("c_nationkey",),
                aggregates=(AggSpec("n", "count"),),
            )

    def test_distinct_engines_agree(self, tiny_db, amd):
        kbe = KBEEngine(tiny_db, amd).execute(distinct_nations_spec())
        gpl = GPLEngine(tiny_db, amd).execute(distinct_nations_spec())
        assert kbe.approx_equals(gpl)


class TestLimit:
    @pytest.mark.parametrize("engine_cls", (KBEEngine, GPLEngine))
    def test_top_n_with_order(self, tiny_db, amd, engine_cls):
        limited = engine_cls(tiny_db, amd).execute(top_revenue_spec(3))
        full = engine_cls(tiny_db, amd).execute(top_revenue_spec(None))
        assert limited.num_rows == 3
        # the top 3 of the full ordering
        assert limited.rows() == full.rows()[:3]

    def test_limit_larger_than_result(self, tiny_db, amd):
        result = GPLEngine(tiny_db, amd).execute(top_revenue_spec(10_000))
        assert result.num_rows <= 25  # at most one row per nation

    def test_limit_without_order(self, tiny_db, amd):
        result = GPLEngine(tiny_db, amd).execute(
            distinct_nations_spec(limit=5)
        )
        assert result.num_rows == 5

    def test_invalid_limit(self):
        with pytest.raises(PlanError):
            top_revenue_spec(0)

    def test_limit_preserves_correctness(self, tiny_db, amd):
        kbe = KBEEngine(tiny_db, amd).execute(top_revenue_spec(5))
        gpl = GPLEngine(tiny_db, amd).execute(top_revenue_spec(5))
        assert kbe.approx_equals(gpl)
