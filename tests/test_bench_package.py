"""Tests for the benchmark harness package (context, experiments, reports)."""

import pytest

from repro.bench import (
    ExperimentContext,
    banner,
    exp_fig2_channel_calibration,
    exp_fig5_kbe_utilization,
    exp_fig17_materialization,
    exp_table1_hardware,
    format_mapping,
    format_table,
)
from repro.gpu import AMD_A10, NVIDIA_K40


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(device=AMD_A10, scale=0.002)


class TestContext:
    def test_database_cached_per_scale(self, context):
        assert context.database() is context.database()
        assert context.database(0.003) is not context.database()

    def test_calibration_cached(self, context):
        assert context.calibration() is context.calibration()

    def test_engine_factories(self, context):
        assert context.kbe().name == "KBE"
        assert context.gpl().name == "GPL"
        assert context.gpl_without_ce().name == "GPL (w/o CE)"
        assert context.ocelot().name == "Ocelot"

    def test_optimized_gpl(self, context):
        from repro.tpch import q14

        optimized = context.optimized_gpl(q14())
        assert optimized.predicted_cycles > 0
        assert "main" in optimized.configs
        result = optimized.engine.execute(q14())
        assert result.num_rows == 1

    def test_model_estimate(self, context):
        from repro.tpch import q14

        assert context.model_estimate(q14()) > 0


class TestExperiments:
    def test_table1(self):
        result = exp_table1_hardware()
        assert result["AMD"]["#CU"] == 8
        assert result["NVIDIA"]["#CU"] == 15

    def test_fig2_structure(self, context):
        result = exp_fig2_channel_calibration(context)
        assert set(result) == {1, 4, 16}
        for series in result.values():
            assert len(series) >= 4
            assert all(gbps > 0 for _, gbps in series)

    def test_fig5_structure(self, context):
        result = exp_fig5_kbe_utilization(context, queries=("Q14",))
        valu, mem = result["Q14"]
        assert 0 <= valu <= 1 and 0 <= mem <= 1

    def test_fig17_structure(self, context):
        result = exp_fig17_materialization(context, queries=("Q14",))
        assert 0 < result["Q14"] < 1

    def test_nvidia_context(self):
        context = ExperimentContext(device=NVIDIA_K40, scale=0.002)
        result = exp_fig5_kbe_utilization(context, queries=("Q14",))
        assert "Q14" in result


class TestReporting:
    def test_banner(self):
        text = banner("Title")
        assert "Title" in text
        assert "=" in text

    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bbbb", 2]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "1.235" in text  # 4 significant digits
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_format_mapping(self):
        text = format_mapping({"alpha": 1.5, "b": "x"})
        assert "alpha" in text and "1.5" in text and "x" in text
        assert format_mapping({}) == ""
