"""Tests for execution tracing and the Gantt renderer."""

import pytest

from repro.core import GPLEngine
from repro.gpu import (
    AMD_A10,
    ChannelConfig,
    DataLocation,
    KernelLaunch,
    KernelSpec,
    Simulator,
    StageSpec,
    TraceEvent,
    render_gantt,
    stage_utilization,
)
from repro.tpch import q14


def two_stage_pipeline(trace):
    def spec(name):
        return KernelSpec(
            name=name,
            compute_instr=20,
            memory_instr=2,
            pm_per_workitem=32,
            lm_per_workitem=8,
        )

    stages = [
        StageSpec(
            KernelLaunch(
                spec=spec("producer"),
                tuples=50_000,
                workgroups=8,
                in_bytes_per_tuple=16,
                out_bytes_per_tuple=8,
                selectivity=0.5,
                output_location=DataLocation.CHANNEL,
                label="producer",
            )
        ),
        StageSpec(
            KernelLaunch(
                spec=spec("consumer"),
                tuples=25_000,
                workgroups=8,
                in_bytes_per_tuple=8,
                out_bytes_per_tuple=8,
                selectivity=0.0,
                input_location=DataLocation.CHANNEL,
                output_location=DataLocation.NONE,
                label="consumer",
            )
        ),
    ]
    return Simulator(AMD_A10).run_pipeline(
        stages,
        [ChannelConfig(depth_packets=8192)],
        num_tiles=2,
        tile_tuples=25_000,
        tile_bytes=25_000 * 16,
        trace=trace,
    )


class TestSimulatorTrace:
    def test_disabled_by_default(self):
        assert two_stage_pipeline(trace=False).trace == []

    def test_one_event_per_unit(self):
        result = two_stage_pipeline(trace=True)
        # 2 tiles x 8 producer units, each matched by one consumer unit
        assert len(result.trace) == 2 * 8 * 2
        for event in result.trace:
            assert event.end > event.start >= 0
            assert event.end <= result.elapsed_cycles + 1e-9

    def test_consumer_starts_after_producer(self):
        result = two_stage_pipeline(trace=True)
        first_producer = min(
            e.start for e in result.trace if e.label == "producer"
        )
        first_consumer = min(
            e.start for e in result.trace if e.label == "consumer"
        )
        assert first_consumer > first_producer

    def test_tracing_does_not_change_timing(self):
        assert (
            two_stage_pipeline(True).elapsed_cycles
            == two_stage_pipeline(False).elapsed_cycles
        )


class TestRenderers:
    def events(self):
        return [
            TraceEvent(0, "a", 0.0, 10.0),
            TraceEvent(0, "a", 10.0, 20.0),
            TraceEvent(1, "bb", 5.0, 15.0),
        ]

    def test_gantt_has_one_row_per_stage(self):
        chart = render_gantt(self.events(), elapsed=20.0, width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a ")
        assert lines[1].startswith("bb")

    def test_gantt_empty(self):
        assert "no trace" in render_gantt([], 0.0)

    def test_gantt_width(self):
        chart = render_gantt(self.events(), elapsed=20.0, width=30)
        for line in chart.splitlines():
            # label + 2 frame glyphs + 30 buckets
            assert len(line.split("▕")[1]) == 31  # 30 cells + closing frame

    def test_stage_utilization(self):
        utilization = stage_utilization(self.events(), elapsed=20.0)
        assert utilization["a"] == pytest.approx(1.0)
        assert utilization["bb"] == pytest.approx(0.5)

    def test_utilization_merges_overlaps(self):
        events = [
            TraceEvent(0, "x", 0.0, 10.0),
            TraceEvent(0, "x", 5.0, 12.0),  # overlapping unit
        ]
        utilization = stage_utilization(events, elapsed=20.0)
        assert utilization["x"] == pytest.approx(12.0 / 20.0)

    def test_utilization_empty(self):
        assert stage_utilization([], 0.0) == {}


class TestEngineTrace:
    def test_execute_with_trace(self, small_db, amd):
        engine = GPLEngine(small_db, amd)
        result, traces = engine.execute_with_trace(q14())
        assert result.num_rows == 1
        assert "main" in traces
        assert traces["main"], "main segment must record units"
        # Tracing is off again afterwards.
        assert not engine._capture_trace
        plain = engine.execute(q14())
        assert plain.approx_equals(result)

    def test_trace_labels_match_kernels(self, small_db, amd):
        engine = GPLEngine(small_db, amd)
        _, traces = engine.execute_with_trace(q14())
        labels = {event.label for event in traces["main"]}
        assert any("k_map" in label for label in labels)
        assert any("k_probe" in label for label in labels)
