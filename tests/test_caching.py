"""Result/segment caching and batched admission (see docs/caching.md).

The contract under test: caching never changes an answer.  A hot drain
answers from the result cache with byte-identical rows, cross-query
segment reuse splices only outputs an execution produced, dedupe runs
one leader per identical group and fans its result out, and eviction
under byte pressure degrades to plain execution — never to wrong rows.
"""

import dataclasses

import numpy as np
import pytest

from repro.core import GPLEngine
from repro.core.checkpoint import SegmentCache, SegmentCheckpoint
from repro.faults import FaultPlan
from repro.gpu import AMD_A10
from repro.kbe import KBEEngine
from repro.model import clear_calibration_cache, clear_search_cache
from repro.serve import QueryService, ResultCache
from repro.shard import DevicePool
from repro.tpch import generate_database, q5, q9, q14

MIB = 1024 * 1024


def service_for(db, **kwargs):
    kwargs.setdefault("max_concurrent", 4)
    return QueryService(db, AMD_A10, **kwargs)


def rows_for(service, ticket):
    return service.result_for(ticket).sorted_rows()


class _FakeResult:
    """Just enough of a QueryResult for ResultCache accounting."""

    def __init__(self, num_floats):
        self.batch = {"col": np.zeros(num_floats, dtype=np.float64)}


# ---------------------------------------------------------------------------
# ResultCache unit behavior
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            ResultCache(max_bytes=0)

    def test_hit_miss_accounting(self):
        cache = ResultCache(max_bytes=MIB)
        result = _FakeResult(8)
        assert cache.lookup("k") is None
        assert cache.store("k", result)
        assert cache.lookup("k") is result
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.live_bytes == 64

    def test_lru_eviction_under_byte_pressure(self):
        one = _FakeResult(8)  # 64 bytes each
        cache = ResultCache(max_bytes=2 * 64)
        cache.store("a", one)
        cache.store("b", _FakeResult(8))
        cache.lookup("a")  # refresh: b is now LRU
        cache.store("c", _FakeResult(8))
        assert cache.lookup("b") is None
        assert cache.lookup("a") is one
        assert cache.lookup("c") is not None
        assert cache.stats.evictions == 1
        assert cache.live_bytes == 2 * 64

    def test_oversized_result_never_admitted(self):
        cache = ResultCache(max_bytes=63)
        cache.store("small", _FakeResult(4))
        assert not cache.store("big", _FakeResult(8))
        # the oversized store evicted nothing
        assert cache.lookup("small") is not None
        assert len(cache) == 1

    def test_restore_refreshes_in_place(self):
        cache = ResultCache(max_bytes=MIB)
        cache.store("k", _FakeResult(8))
        cache.store("k", _FakeResult(16))
        assert len(cache) == 1
        assert cache.live_bytes == 128
        counters = cache.counters_dict()
        assert counters["stored"] == 2
        assert counters["evictions"] == 0
        assert counters["peak_bytes"] == 128


# ---------------------------------------------------------------------------
# SegmentCache unit behavior
# ---------------------------------------------------------------------------


def _segment(segment_id, num_floats):
    batch = {"col": np.zeros(num_floats, dtype=np.float64)}
    return SegmentCheckpoint.capture(segment_id, {segment_id: batch}, {})


class TestSegmentCacheBounds:
    def test_byte_pressure_evicts_lru(self):
        cache = SegmentCache(max_bytes=2 * 64, max_segments=256)
        cache.store("a", _segment("a", 8))
        cache.store("b", _segment("b", 8))
        cache.store("c", _segment("c", 8))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.entry_for("a") is None
        assert cache.live_bytes == 2 * 64

    def test_segment_count_bound(self):
        cache = SegmentCache(max_bytes=MIB, max_segments=1)
        cache.store("a", _segment("a", 8))
        cache.store("b", _segment("b", 8))
        assert len(cache) == 1
        assert cache.entry_for("b") is not None

    def test_oversized_segment_rejected(self):
        cache = SegmentCache(max_bytes=63, max_segments=256)
        assert not cache.store("big", _segment("big", 8))
        assert len(cache) == 0


# ---------------------------------------------------------------------------
# engine-level segment reuse
# ---------------------------------------------------------------------------


class TestEngineSegmentCache:
    def test_repeat_query_resumes_every_segment(self, tiny_db):
        reference = GPLEngine(tiny_db, AMD_A10).execute(q5()).sorted_rows()
        cache = SegmentCache()
        engine = GPLEngine(tiny_db, AMD_A10)
        engine.segment_cache = cache
        cold = engine.execute(q5())
        assert cache.hits == 0
        assert cache.stored == len(engine.prepare(q5()).pipelines)
        hot = engine.execute(q5())
        assert cache.hits == cache.stored
        assert cold.sorted_rows() == reference
        assert hot.sorted_rows() == reference

    def test_cross_query_prefix_reuse(self, tiny_db):
        # Two specs that differ only in LIMIT share every pipeline
        # except the one whose sink applies it — the shared prefix
        # resumes from the first query's materialized outputs.
        base = q5()
        variant = dataclasses.replace(base, limit=3)
        cache = SegmentCache()
        engine = GPLEngine(tiny_db, AMD_A10)
        engine.segment_cache = cache
        full = engine.execute(base)
        assert cache.hits == 0
        engine_b = GPLEngine(tiny_db, AMD_A10)
        engine_b.segment_cache = cache
        limited = engine_b.execute(variant)
        assert cache.hits > 0  # the shared build prefix was spliced
        reference = GPLEngine(tiny_db, AMD_A10).execute(variant)
        assert limited.sorted_rows() == reference.sorted_rows()
        assert len(limited.rows()) == 3
        assert full.sorted_rows() == GPLEngine(
            tiny_db, AMD_A10
        ).execute(base).sorted_rows()

    def test_database_change_changes_keys(self, tiny_db):
        other_db = generate_database(scale=0.002, seed=99)
        cache = SegmentCache()
        engine = GPLEngine(tiny_db, AMD_A10)
        engine.segment_cache = cache
        keys_a = cache.keys_for(engine.prepare(q5()), tiny_db, AMD_A10.name)
        keys_b = cache.keys_for(engine.prepare(q5()), other_db, AMD_A10.name)
        assert keys_a != keys_b


# ---------------------------------------------------------------------------
# service-level: hot drains, dedupe, shared-scan rounds
# ---------------------------------------------------------------------------


class TestServiceResultCache:
    def test_hot_drain_answers_from_cache(self, tiny_db):
        service = service_for(
            tiny_db, result_cache_bytes=64 * MIB, segment_cache_bytes=256 * MIB
        )
        trace = [q5(), q9(), q14()]
        cold = service.run(trace)
        assert cold.cached == 0
        cold_rows = [rows_for(service, t) for t in range(len(trace))]
        hot = service.run(trace)
        assert hot.cached == len(trace)
        assert all(r.outcome == "cached" for r in hot.records)
        assert all(r.round == -1 and r.exec_ms == 0.0 for r in hot.records)
        hot_rows = [
            rows_for(service, len(trace) + t) for t in range(len(trace))
        ]
        assert hot_rows == cold_rows
        assert hot.result_cache["hits"] == len(trace)
        counters = hot.counters_dict()
        assert sum(counters["outcomes"].values()) == len(hot.records)

    def test_cached_rows_match_both_engines(self, tiny_db):
        service = service_for(tiny_db, result_cache_bytes=64 * MIB)
        service.run([q9()])
        hot = service.run([q9()])
        assert hot.cached == 1
        served = rows_for(service, 1)
        gpl = GPLEngine(tiny_db, AMD_A10).execute(q9()).sorted_rows()
        kbe = KBEEngine(tiny_db, AMD_A10).execute(q9()).sorted_rows()
        assert served == gpl == kbe

    def test_eviction_under_pressure_stays_correct(self, tiny_db):
        probe = service_for(tiny_db, result_cache_bytes=64 * MIB)
        trace = [q5(), q9(), q14()]
        probe.run(trace)
        sizes = [
            ResultCache.result_bytes(probe.result_for(t))
            for t in range(len(trace))
        ]
        # a budget of one largest result: every store evicts the last
        service = service_for(tiny_db, result_cache=ResultCache(max(sizes)))
        service.run(trace)
        expected = [rows_for(service, t) for t in range(len(trace))]
        hot = service.run(trace)
        assert 0 < hot.cached < len(trace)
        assert service.result_cache.stats.evictions > 0
        actual = [rows_for(service, len(trace) + t) for t in range(len(trace))]
        assert actual == expected

    def test_fault_plans_bypass_the_cache(self, tiny_db):
        service = service_for(
            tiny_db,
            result_cache_bytes=64 * MIB,
            fault_plan=FaultPlan.parse("oom"),
        )
        service.run([q14()])
        hot = service.run([q14()])
        assert hot.cached == 0
        assert hot.result_cache == {} or hot.result_cache.get("hits", 0) == 0

    def test_per_query_fault_plan_bypasses_reads(self, tiny_db):
        service = service_for(tiny_db, result_cache_bytes=64 * MIB)
        service.run([q14()])  # populates the cache
        service.enqueue(q14(), fault_plan=FaultPlan.parse("oom"))
        report = service.drain()
        assert report.cached == 0
        assert report.records[0].outcome == "ok"  # resilient, not cached


class TestBatchedAdmission:
    def test_dedupe_executes_exactly_once(self, tiny_db):
        n = 6
        service = service_for(tiny_db, batch_dedupe=True)
        report = service.run([q5()] * n)
        executed = [
            r for r in report.records if r.outcome == "ok" and not r.deduped
        ]
        assert len(executed) == 1
        assert report.deduped == n - 1
        reference = GPLEngine(tiny_db, AMD_A10).execute(q5()).sorted_rows()
        for ticket in range(n):
            assert rows_for(service, ticket) == reference
        followers = [r for r in report.records if r.deduped]
        assert all(r.exec_ms == 0.0 for r in followers)
        assert all(r.num_rows == len(reference) for r in report.records)

    def test_distinct_deadlines_are_not_deduped(self, tiny_db):
        generous = dataclasses.replace(q5(), deadline_cycles=1e15)
        service = service_for(tiny_db, batch_dedupe=True)
        report = service.run([q5(), generous])
        assert report.deduped == 0
        assert all(r.outcome == "ok" for r in report.records)

    def test_shared_scan_rounds_group_same_fact(self, tiny_db):
        # Q5 and Q9 both stream lineitem: with dedupe/batching on they
        # land in one shared-scan round instead of two solo rounds.
        service = service_for(tiny_db, batch_dedupe=True)
        report = service.run([q5(), q9()])
        assert report.shared_scan_rounds == 1
        assert report.num_rounds == 1
        plain = service_for(tiny_db)
        baseline = plain.run([q5(), q9()])
        assert baseline.shared_scan_rounds == 0
        rows = [rows_for(service, t) for t in range(2)]
        expected = [rows_for(plain, t) for t in range(2)]
        assert rows == expected


class TestPooledCaching:
    def test_hot_pooled_drain_matches_single_device(self, tiny_db):
        trace = [q5(), q9(), q14()]
        single = service_for(tiny_db, result_cache_bytes=64 * MIB)
        single.run(trace)
        pooled = service_for(
            tiny_db,
            pool=DevicePool(4),
            result_cache_bytes=64 * MIB,
            segment_cache_bytes=256 * MIB,
            batch_dedupe=True,
        )
        cold = pooled.run(trace)
        assert cold.cached == 0
        hot = pooled.run(trace)
        assert hot.cached == len(trace)
        for t in range(len(trace)):
            expected = single.result_for(t)
            # sharded sums reassociate; a cache hit must return the
            # *byte-identical* rows of the pooled cold run
            assert pooled.result_for(t).approx_equals(expected)
            assert rows_for(pooled, len(trace) + t) == rows_for(pooled, t)

    def test_pool_width_salts_the_result_key(self, tiny_db):
        shared = ResultCache(64 * MIB)
        single = service_for(tiny_db, result_cache=shared)
        single.run([q14()])
        pooled = service_for(
            tiny_db, pool=DevicePool(2), result_cache=shared
        )
        report = pooled.run([q14()])
        assert report.cached == 0  # differently-pooled services never alias


class TestDeterminism:
    def test_same_trace_same_witness(self):
        def one_run():
            clear_calibration_cache()
            clear_search_cache()
            db = generate_database(scale=0.002, seed=7)
            service = QueryService(
                db,
                AMD_A10,
                max_concurrent=4,
                result_cache_bytes=64 * MIB,
                segment_cache_bytes=256 * MIB,
                batch_dedupe=True,
            )
            trace = [q5(), q9(), q5(), q14()]
            cold = service.run(trace)
            hot = service.run(trace)
            return cold.counters_dict(), hot.counters_dict()

        assert one_run() == one_run()
