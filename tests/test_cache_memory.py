"""Tests for the cache and global-memory models."""

import pytest

from repro.gpu import AMD_A10, CacheModel, MemoryModel

MIB = 1024 * 1024


class TestCacheModel:
    def test_fits_in_cache(self):
        cache = CacheModel(4 * MIB)
        assert cache.hit_ratio(1 * MIB) == 1.0
        assert cache.hit_ratio(0) == 1.0

    def test_thrashing_decay(self):
        cache = CacheModel(4 * MIB)
        h8 = cache.hit_ratio(8 * MIB)
        h32 = cache.hit_ratio(32 * MIB)
        assert 1.0 > h8 > h32 >= cache.floor

    def test_monotone_nonincreasing(self):
        cache = CacheModel(4 * MIB)
        ratios = [cache.hit_ratio(s * MIB) for s in (1, 2, 4, 8, 16, 64, 256)]
        assert all(b <= a for a, b in zip(ratios, ratios[1:]))

    def test_floor(self):
        cache = CacheModel(1 * MIB, floor=0.07)
        assert cache.hit_ratio(10_000 * MIB) == 0.07

    def test_streaming_hit_ratio(self):
        cache = CacheModel(4 * MIB)
        # 8-byte elements on 64-byte lines: 7 of 8 accesses hit.
        assert cache.streaming_hit_ratio(8.0) == pytest.approx(1 - 8 / 64)
        # full-line strides never hit spatially
        assert cache.streaming_hit_ratio(64.0) == cache.floor
        assert cache.streaming_hit_ratio(0) == 1.0

    def test_effective_capacity(self):
        cache = CacheModel(4 * MIB, usable_fraction=0.5)
        assert cache.effective_capacity == 2 * MIB
        assert cache.hit_ratio(2 * MIB) == 1.0
        assert cache.hit_ratio(3 * MIB) < 1.0


class TestMemoryModel:
    @pytest.fixture()
    def memory(self):
        return MemoryModel.for_device(AMD_A10)

    def test_access_cycles_scale_linearly(self, memory):
        one = memory.access_cycles(1000, 0.5)
        two = memory.access_cycles(2000, 0.5)
        assert two == pytest.approx(2 * one)

    def test_hits_are_cheaper(self, memory):
        cold = memory.access_cycles(1000, 0.0)
        warm = memory.access_cycles(1000, 1.0)
        assert warm < cold
        ratio = cold / warm
        assert ratio == pytest.approx(
            AMD_A10.global_latency / AMD_A10.cache_latency
        )

    def test_hit_ratio_clamped(self, memory):
        assert memory.access_cycles(100, 1.5) == memory.access_cycles(100, 1.0)
        assert memory.access_cycles(100, -1.0) == memory.access_cycles(100, 0.0)

    def test_scan_hit_floor_is_streaming(self, memory):
        # Even a giant working set scans with spatial locality.
        assert memory.scan_hit_ratio(1e12) == pytest.approx(1 - 8 / 64)

    def test_scan_hit_cached(self, memory):
        assert memory.scan_hit_ratio(1024) == 1.0

    def test_materialization_linear(self, memory):
        assert memory.materialization_cycles(2048) == pytest.approx(
            2 * memory.materialization_cycles(1024)
        )
        assert memory.materialization_cycles(0) == 0.0

    def test_reload_cheaper_when_cached(self, memory):
        small = memory.reload_cycles(1024, 1024)
        large = memory.reload_cycles(1024, 100 * MIB)
        assert small < large
