"""Tests for the Selinger-style join-order optimizer."""

import pytest

from repro.errors import PlanError
from repro.plans import (
    GroupAggregate,
    Join,
    JoinEdge,
    OrderBy,
    QuerySpec,
    Scan,
    SelingerOptimizer,
    Select,
    TableRef,
)
from repro.relational import col
from repro.tpch import q5, q7, q8, q9, q14


@pytest.fixture()
def optimizer(tiny_db):
    return SelingerOptimizer(tiny_db)


class TestJoinOrdering:
    @pytest.mark.parametrize("factory", [q5, q7, q8, q9, q14])
    def test_all_queries_optimize(self, optimizer, factory):
        optimized = optimizer.optimize(factory())
        spec = factory()
        dimension_aliases = {
            ref.alias for ref in spec.tables if ref.alias != spec.fact
        }
        assert set(optimized.join_order) == dimension_aliases
        assert optimized.estimated_rows >= 1.0

    def test_q14_single_join(self, optimizer):
        optimized = optimizer.optimize(q14())
        assert optimized.join_order == ("part",)

    def test_selective_dimension_joined_early(self, optimizer):
        # Q8's part filter (1/150) is the most selective; the DP should
        # probe it before unselective dimensions like supplier.
        optimized = optimizer.optimize(q8())
        order = list(optimized.join_order)
        assert order.index("part") < order.index("supplier")

    def test_connectivity_respected(self, optimizer):
        # region joins only through a nation alias; it can never precede
        # every nation alias in the probe order.
        optimized = optimizer.optimize(q5())
        order = list(optimized.join_order)
        assert order.index("nation") < order.index("region")
        # customer connects via orders
        assert order.index("orders") < order.index("customer")

    def test_disconnected_graph_rejected(self, optimizer):
        spec = QuerySpec(
            name="cross",
            tables=(
                TableRef("lineitem", "lineitem"),
                TableRef("region", "region"),
            ),
            join_edges=(),  # no edge: cross join
            fact="lineitem",
        )
        with pytest.raises(PlanError):
            optimizer.optimize(spec)

    def test_single_table_query(self, optimizer):
        spec = QuerySpec(
            name="single",
            tables=(TableRef("lineitem", "lineitem"),),
            join_edges=(),
            fact="lineitem",
            filters={"lineitem": col("l_discount").le(0.02)},
        )
        optimized = optimizer.optimize(spec)
        assert optimized.join_order == ()


class TestPlanShape:
    def test_left_deep_structure(self, optimizer):
        optimized = optimizer.optimize(q5())
        node = optimized.plan
        # peel epilogue
        while isinstance(node, (OrderBy, GroupAggregate)) or (
            type(node).__name__ == "Project"
        ):
            node = node.children()[0]
        joins = 0
        while not isinstance(node, Scan):
            if isinstance(node, Join):
                joins += 1
                # right side must be a base table (optionally filtered)
                right = node.right
                if isinstance(right, Select):
                    right = right.child
                assert isinstance(right, Scan)
                node = node.left
            else:
                node = node.children()[0]
        assert joins == 5

    def test_residual_filter_in_tree(self, optimizer):
        optimized = optimizer.optimize(q5())
        found = any(
            isinstance(node, Select)
            and node.predicate.columns() == {"c_nationkey", "s_nationkey"}
            for node in optimized.plan.post_order()
        )
        assert found, "Q5 residual c_nationkey = s_nationkey must be placed"

    def test_epilogue_nodes(self, optimizer):
        optimized = optimizer.optimize(q5())
        assert isinstance(optimized.plan, OrderBy)
        names = [type(n).__name__ for n in optimized.plan.post_order()]
        assert "GroupAggregate" in names

    def test_estimator_exposed(self, optimizer):
        optimized = optimizer.optimize(q14())
        assert optimized.estimator.selectivity(col("l_discount").le(0.05)) > 0
