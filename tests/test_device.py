"""Tests for the device presets (Table 1)."""

import pytest

from repro.gpu import AMD_A10, NVIDIA_K40, device_by_name


class TestPresets:
    def test_amd_matches_table1(self):
        assert AMD_A10.num_cus == 8
        assert AMD_A10.core_mhz == 720.0
        assert AMD_A10.local_mem_per_cu == 32 * 1024
        assert AMD_A10.global_mem_bytes == 32 * 1024 ** 3
        assert AMD_A10.cache_bytes == 4 * 1024 ** 2
        assert AMD_A10.concurrency == 2
        assert AMD_A10.programming_api == "OpenCL"
        assert AMD_A10.wavefront == 64

    def test_nvidia_matches_table1(self):
        assert NVIDIA_K40.num_cus == 15
        assert NVIDIA_K40.core_mhz == 875.0
        assert NVIDIA_K40.local_mem_per_cu == 48 * 1024
        assert NVIDIA_K40.global_mem_bytes == 12 * 1024 ** 3
        assert NVIDIA_K40.cache_bytes == int(1.5 * 1024 ** 2)
        assert NVIDIA_K40.concurrency == 16
        assert NVIDIA_K40.programming_api == "CUDA"

    def test_w_is_four_on_both(self):
        # "In our experiments, w is 4 for both AMD and NVIDIA GPU."
        assert AMD_A10.instruction_cycles == 4.0
        assert NVIDIA_K40.instruction_cycles == 4.0

    def test_packet_tunability(self):
        assert AMD_A10.tunable_packet_size
        assert not NVIDIA_K40.tunable_packet_size


class TestConversions:
    def test_cycles_to_ms_round_trip(self):
        for device in (AMD_A10, NVIDIA_K40):
            assert device.ms_to_cycles(device.cycles_to_ms(123456.0)) == (
                pytest.approx(123456.0)
            )

    def test_one_ms(self):
        # 720 MHz -> 720k cycles per ms.
        assert AMD_A10.ms_to_cycles(1.0) == pytest.approx(720_000.0)


class TestHelpers:
    def test_table1_row_fields(self):
        row = AMD_A10.table1_row()
        assert row["#CU"] == 8
        assert row["Cache (MB)"] == 4.0
        assert row["Local memory/CU (KB)"] == 32

    def test_with_overrides(self):
        modified = AMD_A10.with_overrides(concurrency=4)
        assert modified.concurrency == 4
        assert AMD_A10.concurrency == 2  # original untouched

    def test_device_by_name(self):
        assert device_by_name("amd") is AMD_A10
        assert device_by_name("NVIDIA") is NVIDIA_K40
        with pytest.raises(ValueError):
            device_by_name("intel")
