"""Tests for occupancy (paper Eq. 2) and resource allocation."""

import pytest

from repro.errors import OccupancyError
from repro.gpu import (
    AMD_A10,
    KernelLaunch,
    KernelSpec,
    allocate_segment_occupancy,
    check_segment_feasible,
    exclusive_occupancy,
    max_active_wg_per_cu,
)
from repro.gpu.occupancy import scheduling_contention


def spec(pm=32, lm=8, name="k") -> KernelSpec:
    return KernelSpec(
        name=name,
        compute_instr=10,
        memory_instr=2,
        pm_per_workitem=pm,
        lm_per_workitem=lm,
    )


def launch(pm=32, lm=8, wg=8, name="k") -> KernelLaunch:
    return KernelLaunch(
        spec=spec(pm, lm, name),
        tuples=1000,
        workgroups=wg,
        in_bytes_per_tuple=8,
        out_bytes_per_tuple=8,
        label=name,
    )


class TestMaxActive:
    def test_architectural_cap(self):
        # negligible memory use -> capped by wg_max
        assert max_active_wg_per_cu(spec(pm=1, lm=0), AMD_A10) == (
            AMD_A10.max_wg_per_cu
        )

    def test_local_memory_limit(self):
        # 512 B/wi x 64 wi = 32 KB per work-group = exactly one per CU.
        assert max_active_wg_per_cu(spec(pm=1, lm=512), AMD_A10) == 1

    def test_private_memory_limit(self):
        # 256 B/wi x 64 wi = 16 KB -> 4 per CU from the 64 KB budget.
        assert max_active_wg_per_cu(spec(pm=256, lm=0), AMD_A10) == 4

    def test_unschedulable_kernel(self):
        with pytest.raises(OccupancyError):
            max_active_wg_per_cu(spec(lm=1024), AMD_A10)  # 64 KB lm/wg


class TestEq2Feasibility:
    def test_small_segment_feasible(self):
        launches = [launch(name=f"k{i}") for i in range(3)]
        assert check_segment_feasible(launches, AMD_A10)

    def test_workgroup_count_violation(self):
        total = AMD_A10.max_wg_per_cu * AMD_A10.num_cus
        launches = [launch(wg=total + 1)]
        assert not check_segment_feasible(launches, AMD_A10)

    def test_local_memory_violation(self):
        # lm: 256 B/wi x 64 wi x wg -> budget 32 KB x 8 CU = 256 KB -> 16 wgs
        launches = [launch(lm=256, wg=17)]
        assert not check_segment_feasible(launches, AMD_A10)

    def test_private_memory_violation(self):
        # pm: 512 B/wi x 64 wi x wg -> budget 64 KB x 8 = 512 KB -> 16 wgs
        launches = [launch(pm=512, wg=17)]
        assert not check_segment_feasible(launches, AMD_A10)

    def test_sum_across_kernels(self):
        # two kernels of 9 wgs each violate a 16-wg budget together
        launches = [launch(lm=256, wg=9, name="a"), launch(lm=256, wg=9, name="b")]
        assert not check_segment_feasible(launches, AMD_A10)


class TestAllocation:
    def test_empty(self):
        assert allocate_segment_occupancy([], AMD_A10) == {}

    def test_duplicate_labels_rejected(self):
        with pytest.raises(OccupancyError):
            allocate_segment_occupancy(
                [launch(name="same"), launch(name="same")], AMD_A10
            )

    def test_proportional_cu_shares(self):
        shares = allocate_segment_occupancy(
            [launch(wg=24, name="big"), launch(wg=8, name="small")], AMD_A10
        )
        assert shares["big"].active_cus == pytest.approx(6.0)
        assert shares["small"].active_cus == pytest.approx(2.0)

    def test_active_capped_by_requested(self):
        shares = allocate_segment_occupancy([launch(wg=2, name="k")], AMD_A10)
        assert shares["k"].active_workgroups <= 2

    def test_at_least_one_active(self):
        shares = allocate_segment_occupancy(
            [launch(wg=1, name=f"k{i}") for i in range(8)], AMD_A10
        )
        assert all(s.active_workgroups >= 1 for s in shares.values())


class TestExclusive:
    def test_uses_whole_device(self):
        occ = exclusive_occupancy(launch(wg=1000), AMD_A10)
        assert occ.active_cus == AMD_A10.num_cus
        assert occ.active_workgroups == (
            AMD_A10.max_wg_per_cu * AMD_A10.num_cus
        )

    def test_small_grid(self):
        occ = exclusive_occupancy(launch(wg=4), AMD_A10)
        assert occ.active_workgroups == 4


class TestSchedulingContention:
    def test_no_oversubscription(self):
        assert scheduling_contention(10, 10) == 1.0
        assert scheduling_contention(5, 10) == 1.0

    def test_grows_with_ratio(self):
        mild = scheduling_contention(20, 10)
        severe = scheduling_contention(80, 10)
        assert 1.0 < mild < severe

    def test_zero_fitted(self):
        assert scheduling_contention(10, 0) == 1.0
