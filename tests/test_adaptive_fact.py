"""Tests for adaptive fact (chain-anchor) selection."""

import pytest

from repro.core import GPLEngine
from repro.kbe import KBEEngine
from repro.plans import SelingerOptimizer
from repro.tpch import q5, q8, q14, reference_answer

from .conftest import assert_rows_close


class TestAnchorChoice:
    def test_low_selectivity_anchors_on_part(self, small_db):
        optimizer = SelingerOptimizer(small_db, choose_fact=True)
        optimized = optimizer.optimize(q14(selectivity=0.005))
        assert optimized.fact == "part"
        assert optimized.join_order == ("lineitem",)

    def test_high_selectivity_keeps_lineitem(self, small_db):
        optimizer = SelingerOptimizer(small_db, choose_fact=True)
        optimized = optimizer.optimize(q14(selectivity=0.5))
        assert optimized.fact == "lineitem"

    def test_multi_join_queries_keep_lineitem(self, small_db):
        # Anchoring a dimension would build a giant lineitem hash table;
        # the cost model must keep the fact table streaming.
        optimizer = SelingerOptimizer(small_db, choose_fact=True)
        for spec in (q5(), q8()):
            assert optimizer.optimize(spec).fact == "lineitem"

    def test_disabled_by_default(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(
            q14(selectivity=0.005)
        )
        assert optimized.fact == "lineitem"

    def test_optimized_query_reports_fact(self, small_db):
        optimized = SelingerOptimizer(small_db).optimize(q14())
        assert optimized.fact == "lineitem"


class TestCorrectnessUnderSwap:
    @pytest.mark.parametrize("selectivity", [0.005, 0.02, 0.3])
    def test_q14_answers_unchanged(self, small_db, amd, selectivity):
        reference = reference_answer(
            small_db, "Q14", selectivity=selectivity
        )
        expected = sorted(zip(*[reference[c] for c in reference]))
        for engine_cls in (KBEEngine, GPLEngine):
            engine = engine_cls(small_db, amd, adaptive_fact=True)
            result = engine.execute(q14(selectivity=selectivity))
            assert_rows_close(result.sorted_rows(), expected, rel=1e-7)

    def test_materialization_grows_below_crossover(self, small_db, amd):
        """The Fig 18 mechanism: a part-anchored plan hash-builds the
        *filtered lineitem*, so materialized bytes grow with selectivity."""
        engine = GPLEngine(small_db, amd, adaptive_fact=True)
        tiny = engine.execute(q14(selectivity=0.003))
        small = engine.execute(q14(selectivity=0.01))
        assert (
            small.counters.bytes_materialized
            > tiny.counters.bytes_materialized
        )
