"""Device failure domains: pool health, relocation, degraded serving.

The failure-domain contract on a multi-device pool: a shard whose whole
resilience chain fails — or whose device a ``device_down`` fault kills —
relocates onto the lowest-index healthy device and the merged answer
stays **byte-identical** to a healthy-pool run; repeated failures walk
the slot through the deterministic ``healthy -> suspect -> quarantined
-> probation`` lifecycle (cooldowns counted in completed queries); a
degraded pool re-partitions over the active slots and keeps answering
with identical checksums.  Worker counts never matter: a seeded
device-kill storm produces the same results, counters, and service
witness at ``workers=1`` and ``workers=4``.
"""

import hashlib

import numpy as np
import pytest

from repro.errors import DeviceLostError, SchemaError
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.gpu import device_by_name
from repro.plans import AggSpec, QuerySpec, TableRef
from repro.relational import (
    ColumnDef,
    Database,
    DataType,
    Table,
    TableSchema,
    col,
)
from repro.serve import QueryService
from repro.shard import POOL_HEALTH_STATES, DevicePool, PoolHealth, ShardedExecutor
from repro.tpch import generate_database, query_by_name

SCALE = 0.01
QUERIES = ("Q5", "Q9", "Q14")


def _digest(result) -> str:
    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()


@pytest.fixture(scope="module")
def db():
    return generate_database(scale=SCALE)


# ---------------------------------------------------------------------------
# the PoolHealth state machine
# ---------------------------------------------------------------------------


class TestPoolHealth:
    def test_lifecycle_healthy_to_quarantine_to_readmission(self):
        health = PoolHealth(2, threshold=2, cooldown=2, probe_budget=1)
        assert health.enabled
        assert health.states() == {"dev0": "healthy", "dev1": "healthy"}

        # one failure: suspect, still serving
        health.record_failure(1)
        assert health.state(1) == "suspect"
        assert health.available(1)
        assert health.active_indices() == [0, 1]

        # threshold reached: quarantined, out of the scatter
        health.record_failure(1)
        assert health.state(1) == "quarantined"
        assert not health.available(1)
        assert health.active_indices() == [0]
        assert health.quarantined_count() == 1
        assert health.quarantines == 1

        # cooldown is counted in completed queries
        health.on_query_complete()
        assert health.state(1) == "quarantined"
        health.on_query_complete()
        assert health.state(1) == "probation"
        assert health.available(1)
        assert health.probes == 1

        # a probation success readmits the slot
        health.record_success(1)
        assert health.state(1) == "healthy"
        assert health.readmissions == 1

    def test_probe_failure_requarantines(self):
        health = PoolHealth(2, threshold=1, cooldown=1, probe_budget=1)
        health.record_failure(0)
        assert health.state(0) == "quarantined"
        health.on_query_complete()
        assert health.state(0) == "probation"
        health.record_failure(0)  # probe budget exhausted
        assert health.state(0) == "quarantined"
        assert health.quarantines == 2

    def test_success_resets_consecutive_count(self):
        health = PoolHealth(1, threshold=2)
        health.record_failure(0)
        health.record_success(0)
        health.record_failure(0)
        assert health.state(0) == "suspect"  # never reached the threshold

    def test_all_quarantined_fails_open(self):
        health = PoolHealth(2, threshold=1)
        health.record_failure(0)
        health.record_failure(1)
        assert health.quarantined_count() == 2
        assert health.active_indices() == [0, 1]

    def test_threshold_zero_disables(self):
        health = PoolHealth(2, threshold=0)
        assert not health.enabled
        for _ in range(5):
            health.record_failure(1)
        health.on_query_complete()
        assert health.states() == {"dev0": "healthy", "dev1": "healthy"}
        assert health.quarantines == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PoolHealth(0)
        with pytest.raises(ValueError):
            PoolHealth(2, threshold=-1)
        with pytest.raises(ValueError):
            PoolHealth(2, cooldown=0)
        with pytest.raises(ValueError):
            PoolHealth(2, probe_budget=0)

    def test_witness_and_describe(self):
        health = PoolHealth(2, threshold=1)
        health.record_failure(1)
        counters = health.counters_dict()
        assert counters["quarantines"] == 1
        assert counters["states"]["dev1"] == "quarantined"
        assert health.describe() == ("dev1: quarantined",)
        assert set(health.states().values()) <= set(POOL_HEALTH_STATES)


# ---------------------------------------------------------------------------
# device_down faults
# ---------------------------------------------------------------------------


class TestDeviceDownFaults:
    def test_parse_and_takes_device(self):
        plan = FaultPlan.parse("device_down@dev1")
        injector = FaultInjector(plan)
        assert not injector.takes_device("dev0")
        assert injector.takes_device("dev1")
        assert not injector.takes_device("dev1")  # budget spent
        assert len(injector.fired) == 1

    def test_seeded_plans_never_draw_device_down(self):
        # device_down enters a plan only when spelled explicitly, so all
        # existing seeded schedules and baselines stay byte-stable.
        for seed in range(40):
            plan = FaultPlan.from_seed(seed, count=5)
            assert all(
                spec.kind is not FaultKind.DEVICE_LOST
                for spec in plan.faults
            )

    def test_fault_plans_length_validated_at_init(self, db):
        with pytest.raises(SchemaError, match="fault_plans sequence"):
            ShardedExecutor(
                db,
                DevicePool(2),
                fault_plans=[None, None, FaultPlan.parse("oom")],
            )


# ---------------------------------------------------------------------------
# shard relocation
# ---------------------------------------------------------------------------


class TestRelocation:
    @pytest.mark.parametrize("devices", (2, 4))
    @pytest.mark.parametrize("workers", (1, 4))
    def test_killed_shard_relocates_with_identical_rows(
        self, db, devices, workers
    ):
        spec = query_by_name("Q5")
        healthy = ShardedExecutor(db, DevicePool(devices))
        expected = _digest(healthy.execute(spec))

        executor = ShardedExecutor(db, DevicePool(devices), workers=workers)
        result = executor.execute(
            spec, fault_plan=FaultPlan.parse("device_down@dev1")
        )
        assert _digest(result) == expected
        report = result.shard
        assert report.relocations == 1
        (moved,) = report.relocated
        assert moved.relocated_from == "dev1"
        assert moved.device == "dev0"  # lowest healthy index
        assert report.device_faults_fired == 1
        # the killed slot is suspect, not yet quarantined
        assert executor.health.state(1) == "suspect"
        # the failed record and the relocated record both show up
        assert any(r.failed and r.device == "dev1" for r in report.records)
        assert "relocated from dev1" in report.describe()

    def test_relocation_budget_exhaustion_raises(self, db):
        executor = ShardedExecutor(db, DevicePool(2))
        with pytest.raises(DeviceLostError):
            executor.execute(
                query_by_name("Q5"),
                fault_plan=FaultPlan.parse(
                    "device_down@dev0; device_down@dev1"
                ),
            )

    def test_executor_wide_per_slot_plans_kill_once(self, db):
        plans = [None, FaultPlan.parse("device_down"), None, None]
        executor = ShardedExecutor(db, DevicePool(4), fault_plans=plans)
        spec = query_by_name("Q9")
        healthy = _digest(ShardedExecutor(db, DevicePool(4)).execute(spec))

        first = executor.execute(spec)
        assert _digest(first) == healthy
        assert first.shard.relocations == 1
        assert first.shard.device_faults_fired == 1

        second = executor.execute(spec)  # spec budget already spent
        assert _digest(second) == healthy
        assert second.shard.relocations == 0
        assert second.shard.device_faults_fired == 0


# ---------------------------------------------------------------------------
# degraded-pool scatter
# ---------------------------------------------------------------------------


class TestDegradedPool:
    def test_quarantine_lifecycle_through_the_executor(self, db):
        spec = query_by_name("Q5")
        healthy = _digest(ShardedExecutor(db, DevicePool(4)).execute(spec))
        executor = ShardedExecutor(db, DevicePool(4))
        kill = FaultPlan.parse("device_down@dev1")

        # two consecutive killed queries trip the quarantine
        for _ in range(2):
            result = executor.execute(spec, fault_plan=kill)
            assert _digest(result) == healthy
        assert executor.health.state(1) == "quarantined"

        # degraded scatter: 3-wide, dev1 skipped, same answer.  The
        # quarantining query already ticked one cooldown unit, so this
        # is the one fully-excluded query before probation opens.
        degraded = executor.execute(spec)
        assert _digest(degraded) == healthy
        assert degraded.shard.fanout == 3
        assert degraded.shard.quarantined_devices == ("dev1",)
        assert any(
            r.quarantined and r.skipped for r in degraded.shard.records
        )
        assert "dev1: quarantined" in degraded.shard.describe()

        # cooldown expired at the end of that query: probation, then a
        # clean query readmits the slot and the scatter is 4-wide again
        assert executor.health.state(1) == "probation"
        readmitted = executor.execute(spec)
        assert _digest(readmitted) == healthy
        assert readmitted.shard.fanout == 4
        assert executor.health.state(1) == "healthy"
        assert executor.health.probes == 1
        assert executor.health.readmissions == 1

    def test_empty_shards_run_on_lowest_active_device(self):
        # Satellite: the all-shards-empty fallback must pick the lowest
        # *active* device, not unconditionally slot 0.
        schema = TableSchema(
            (ColumnDef("k", DataType.INT64), ColumnDef("v", DataType.FLOAT64))
        )
        table = Table(
            schema,
            {
                "k": np.asarray([], dtype=np.int64),
                "v": np.asarray([], dtype=np.float64),
            },
        )
        empty_db = Database()
        empty_db.add("t", table)
        spec = QuerySpec(
            name="void",
            tables=(TableRef("t", "t"),),
            join_edges=(),
            fact="t",
            aggregates=(
                AggSpec("total", "sum", col("v")),
                AggSpec("n", "count", None),
            ),
        )

        executor = ShardedExecutor(empty_db, DevicePool(2))
        baseline = executor.execute(spec)
        (ran,) = [r for r in baseline.shard.records if not r.skipped]
        assert ran.device == "dev0"

        executor.health.record_failure(0)
        executor.health.record_failure(0)
        assert executor.health.state(0) == "quarantined"
        degraded = executor.execute(spec)
        (ran,) = [r for r in degraded.shard.records if not r.skipped]
        assert ran.device == "dev1"
        assert degraded.shard.merge_device == "dev1"
        assert _digest(degraded) == _digest(baseline)


# ---------------------------------------------------------------------------
# degraded-pool serving: the golden storm witness
# ---------------------------------------------------------------------------


class TestDegradedPoolServing:
    def _drain(self, db, workers, storm):
        service = QueryService(
            db,
            device_by_name("amd"),
            pool=DevicePool(4),
            workers=workers,
        )
        for ticket, name in enumerate(QUERIES * 2):
            plan = (
                FaultPlan.parse("device_down@dev1")
                if storm and ticket < 2
                else None
            )
            service.enqueue(query_by_name(name), fault_plan=plan)
        report = service.drain()
        checksums = tuple(
            _digest(service.result_for(r.index))
            for r in report.records
            if r.outcome == "ok"
        )
        return service, report, checksums

    def test_storm_drain_matches_healthy_checksums_at_any_width(self, db):
        _, healthy_report, healthy_sums = self._drain(db, 1, storm=False)
        assert healthy_report.completed == healthy_report.num_queries

        witnesses = []
        for workers in (1, 4):
            service, report, checksums = self._drain(db, workers, storm=True)
            # the golden witness: every query completes ok and every
            # checksum is byte-identical to the healthy-pool drain
            assert report.completed == report.num_queries
            assert checksums == healthy_sums
            assert report.relocations == 2
            assert report.pool_quarantines == 1
            assert report.pool_probes == 1
            assert report.pool_health["dev1"] in POOL_HEALTH_STATES
            witnesses.append(report.counters_dict())

            # surfaced in text and metrics
            text = report.to_text()
            assert "pool: 2 relocations" in text
            assert "[relocated x1]" in text
            registry = service.registry
            assert (
                registry.counter("shard_relocations_total").value() == 2.0
            )
            assert registry.counter("pool_probe_total").value() == 1.0
            assert registry.gauge("pool_quarantined").value() == 0.0

        assert witnesses[0] == witnesses[1]

    def test_healthy_drain_reports_no_pool_activity(self, db):
        _, report, _ = self._drain(db, 1, storm=False)
        assert report.relocations == 0
        assert report.pool_quarantined == 0
        assert report.pool_quarantines == 0
        counters = report.counters_dict()
        assert counters["pool_quarantined"] == 0
        assert counters["relocations"] == 0


# ---------------------------------------------------------------------------
# CLI flags
# ---------------------------------------------------------------------------


class TestCLI:
    def test_flags_parsed_on_run_and_serve(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(["run", "Q5"])
        assert args.max_relocations == 2
        assert args.quarantine_threshold == 2
        args = build_parser().parse_args(
            [
                "serve",
                "--queries",
                "Q5",
                "--max-relocations",
                "3",
                "--quarantine-threshold",
                "0",
            ]
        )
        assert args.max_relocations == 3
        assert args.quarantine_threshold == 0

    def test_run_relocates_through_the_cli(self, capsys):
        from repro.__main__ import main

        code = main(
            [
                "run",
                "Q5",
                "--scale",
                "0.002",
                "--devices",
                "2",
                "--inject-faults",
                "device_down@dev1",
                "--max-relocations",
                "2",
                "--quarantine-threshold",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "relocated from dev1" in out
