"""Golden sharded equivalence: the full bench catalogue, 1/2/4 devices.

The acceptance matrix for multi-device execution: every TPC-H and SSB
query in the bench suite must return **row-identical** results (round-6
digests, the repo-wide float-equivalence standard used by the golden
fixtures and the bench checksums) on pools of 1, 2, and 4 homogeneous
devices, compared against live single-device GPL execution at the same
scale.  Digests — not ``approx_equals`` — so any reordering of the
float accumulation that crosses the rounding boundary is a loud failure,
exactly like the single-device golden tests.

Mixed pools (different device presets per slot) change per-shard
accumulation order enough to land a knife-edge value exactly on a
round-6 boundary (observed on SSB Q3.1: a 3.4e-16 relative wobble — the
same pre-existing wrinkle the GPL-vs-KBE fixtures carry), so the mixed
configuration asserts ``approx_equals`` instead.
"""

import hashlib

import pytest

from repro.core import GPLEngine
from repro.gpu import AMD_A10
from repro.shard import DevicePool, ShardedExecutor
from repro.ssb import generate_ssb, ssb_query
from repro.tpch import generate_database, query_by_name

SCALE = 0.05
POOL_SIZES = (1, 2, 4)
TPCH_QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")
SSB_QUERIES = (
    "Q1.1", "Q1.2", "Q1.3",
    "Q2.1", "Q2.2", "Q2.3",
    "Q3.1", "Q3.2", "Q3.3", "Q3.4",
    "Q4.1", "Q4.2", "Q4.3",
)


def _digest(result) -> str:
    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()


@pytest.fixture(scope="module")
def tpch_db():
    return generate_database(scale=SCALE)


@pytest.fixture(scope="module")
def ssb_db():
    return generate_ssb(scale=SCALE)


@pytest.fixture(scope="module")
def tpch_sharded(tpch_db):
    # One executor per pool size, shared across queries so the partition
    # cache exercises its reuse path on a realistic workload.
    return {n: ShardedExecutor(tpch_db, DevicePool(n)) for n in POOL_SIZES}


@pytest.fixture(scope="module")
def ssb_sharded(ssb_db):
    return {n: ShardedExecutor(ssb_db, DevicePool(n)) for n in POOL_SIZES}


@pytest.mark.parametrize("query", TPCH_QUERIES)
def test_tpch_sharded_matches_single_device(query, tpch_db, tpch_sharded):
    spec = query_by_name(query)
    expected = _digest(GPLEngine(tpch_db, AMD_A10).execute(spec))
    for devices in POOL_SIZES:
        result = tpch_sharded[devices].execute(spec)
        assert _digest(result) == expected, (
            f"{query} diverged on {devices} devices"
        )
        assert result.shard.devices == devices


@pytest.mark.parametrize("query", SSB_QUERIES)
def test_ssb_sharded_matches_single_device(query, ssb_db, ssb_sharded):
    spec = ssb_query(query)
    expected = _digest(GPLEngine(ssb_db, AMD_A10).execute(spec))
    for devices in POOL_SIZES:
        result = ssb_sharded[devices].execute(spec)
        assert _digest(result) == expected, (
            f"{query} diverged on {devices} devices"
        )


def test_mixed_pool_stays_within_float_tolerance(ssb_db):
    # See module docstring: mixed presets shift accumulation order, so
    # the knife-edge query gets the tolerance comparison, not digests.
    executor = ShardedExecutor(ssb_db, DevicePool(["amd", "amd", "nvidia"]))
    for query in ("Q1.1", "Q3.1"):
        spec = ssb_query(query)
        single = GPLEngine(ssb_db, AMD_A10).execute(spec)
        assert single.approx_equals(executor.execute(spec))
