"""Unit tests for column definitions and table schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational import ColumnDef, DataType, TableSchema


def make_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("a", DataType.INT32),
        ColumnDef("b", DataType.FLOAT64),
        ColumnDef("c", DataType.DICT, ("x", "y", "z")),
    )


class TestColumnDef:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnDef("", DataType.INT32)

    def test_dictionary_requires_dict_type(self):
        with pytest.raises(SchemaError):
            ColumnDef("a", DataType.INT32, ("x",))

    def test_decode_encode(self):
        column = ColumnDef("c", DataType.DICT, ("x", "y", "z"))
        assert column.decode(1) == "y"
        assert column.encode("z") == 2

    def test_encode_unknown_value(self):
        column = ColumnDef("c", DataType.DICT, ("x",))
        with pytest.raises(SchemaError):
            column.encode("nope")

    def test_decode_without_dictionary(self):
        with pytest.raises(SchemaError):
            ColumnDef("a", DataType.INT32).decode(0)


class TestTableSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.of(
                ColumnDef("a", DataType.INT32),
                ColumnDef("a", DataType.INT64),
            )

    def test_lookup(self):
        schema = make_schema()
        assert schema.column("b").dtype is DataType.FLOAT64
        assert schema.position("c") == 2
        assert "a" in schema
        assert "zzz" not in schema

    def test_missing_column(self):
        with pytest.raises(SchemaError):
            make_schema().column("missing")
        with pytest.raises(SchemaError):
            make_schema().position("missing")

    def test_names_and_len(self):
        schema = make_schema()
        assert schema.names == ("a", "b", "c")
        assert len(schema) == 3
        assert [c.name for c in schema] == ["a", "b", "c"]

    def test_row_width(self):
        assert make_schema().row_width == 4 + 8 + 4

    def test_project_preserves_order(self):
        projected = make_schema().project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_project_missing(self):
        with pytest.raises(SchemaError):
            make_schema().project(["nope"])

    def test_concat(self):
        other = TableSchema.of(ColumnDef("d", DataType.INT64))
        combined = make_schema().concat(other)
        assert combined.names == ("a", "b", "c", "d")

    def test_concat_duplicate_rejected(self):
        other = TableSchema.of(ColumnDef("a", DataType.INT64))
        with pytest.raises(SchemaError):
            make_schema().concat(other)

    def test_rename(self):
        renamed = make_schema().rename({"a": "alpha"})
        assert renamed.names == ("alpha", "b", "c")
        # dictionary survives renames
        assert renamed.column("c").dictionary == ("x", "y", "z")

    def test_from_pairs(self):
        schema = TableSchema.from_pairs(
            [("k", DataType.INT32), ("v", DataType.FLOAT64)]
        )
        assert schema.names == ("k", "v")
