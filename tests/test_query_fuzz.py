"""Oracle-based query fuzzing: random specs, engine vs naive interpreter.

Hypothesis composes random-but-valid star queries over the TPC-H schema
(random dimension subsets, filters, aggregates, orderings); every engine
must agree with the row-at-a-time interpreter on all of them.  This is
the widest net in the suite — it exercises plan shapes no handwritten
test anticipates.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import GPLEngine
from repro.kbe import KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.plans.interpreter import naive_execute
from repro.relational import col
from repro.tpch import generate_database

from .conftest import assert_rows_close

#: Dimensions joinable to lineitem, with their join keys and a pool of
#: numeric columns safe to filter/aggregate/group on.
DIMENSIONS = {
    "part": ("l_partkey", "p_partkey", ["p_size"]),
    "supplier": ("l_suppkey", "s_suppkey", ["s_nationkey"]),
    "orders": ("l_orderkey", "o_orderkey", ["o_custkey"]),
}

FACT_NUMERIC = ["l_quantity", "l_discount", "l_tax"]
FACT_GROUPABLE = ["l_suppkey", "l_partkey"]

_DB = None


def database():
    global _DB
    if _DB is None:
        _DB = generate_database(scale=0.001)
    return _DB


@st.composite
def query_specs(draw):
    dims = draw(
        st.lists(
            st.sampled_from(sorted(DIMENSIONS)),
            unique=True,
            max_size=3,
        )
    )
    tables = [TableRef("lineitem", "lineitem")] + [
        TableRef(dim, dim) for dim in dims
    ]
    edges = tuple(
        JoinEdge("lineitem", DIMENSIONS[dim][0], dim, DIMENSIONS[dim][1])
        for dim in dims
    )

    filters = {}
    if draw(st.booleans()):
        column = draw(st.sampled_from(FACT_NUMERIC))
        threshold = draw(st.floats(min_value=0.0, max_value=50.0))
        op = draw(st.sampled_from(["le", "ge"]))
        filters["lineitem"] = getattr(col(column), op)(threshold)
    for dim in dims:
        if draw(st.booleans()):
            column = DIMENSIONS[dim][2][0]
            threshold = draw(st.integers(min_value=0, max_value=40))
            filters[dim] = col(column).le(threshold)

    groupable = FACT_GROUPABLE + [DIMENSIONS[d][2][0] for d in dims]
    group_keys = tuple(
        draw(
            st.lists(
                st.sampled_from(groupable), unique=True, max_size=2
            )
        )
    )
    aggregates = (
        AggSpec("total_qty", "sum", col("l_quantity")),
        AggSpec("n", "count"),
    )
    if draw(st.booleans()):
        aggregates += (AggSpec("max_disc", "max", col("l_discount")),)

    order_by = group_keys if draw(st.booleans()) else ("n",)
    limit = draw(st.one_of(st.none(), st.integers(1, 20)))

    return QuerySpec(
        name="fuzz",
        tables=tuple(tables),
        join_edges=edges,
        fact="lineitem",
        filters=filters,
        group_keys=group_keys,
        aggregates=aggregates,
        order_by=tuple(order_by),
        limit=limit,
    )


class TestQueryFuzz:
    @given(spec=query_specs())
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_gpl_matches_interpreter(self, amd, spec):
        db = database()
        reference = naive_execute(spec, db)
        expected = sorted(zip(*[reference[c] for c in reference]))
        result = GPLEngine(db, amd).execute(spec)
        if spec.limit is None:
            assert_rows_close(result.sorted_rows(), expected, rel=1e-8)
        else:
            # With a limit and order-by ties, the kept subset may differ;
            # count and column structure must still agree.
            assert result.num_rows == len(expected)
            assert set(result.columns) == set(reference)

    @given(spec=query_specs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_engines_agree(self, amd, spec):
        db = database()
        kbe = KBEEngine(db, amd).execute(spec)
        gpl = GPLEngine(db, amd).execute(spec)
        if spec.limit is None:
            assert kbe.approx_equals(gpl)
        else:
            assert kbe.num_rows == gpl.num_rows
