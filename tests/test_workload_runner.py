"""Tests for the workload runner utility."""

import pytest

from repro.bench import WorkloadReport, run_workload
from repro.core import GPLEngine
from repro.errors import ExecutionError
from repro.kbe import KBEEngine
from repro.tpch import q8, q14


@pytest.fixture(scope="module")
def report(small_db, amd):
    engines = [KBEEngine(small_db, amd), GPLEngine(small_db, amd)]
    return run_workload(engines, {"Q14": q14(), "Q8": q8()})


class TestRunWorkload:
    def test_shape(self, report):
        assert report.engines() == ["KBE", "GPL"]
        assert report.queries() == ["Q14", "Q8"]
        assert len(report.outcomes) == 4

    def test_outcome_lookup(self, report):
        outcome = report.outcome("Q14", "GPL")
        assert outcome.elapsed_ms > 0
        assert outcome.num_rows == 1
        with pytest.raises(ExecutionError):
            report.outcome("Q14", "DuckDB")

    def test_totals_and_speedup(self, report):
        kbe_total = report.total_ms("KBE")
        gpl_total = report.total_ms("GPL")
        assert kbe_total == pytest.approx(
            report.outcome("Q14", "KBE").elapsed_ms
            + report.outcome("Q8", "KBE").elapsed_ms
        )
        assert report.baseline_engine == "KBE"
        assert report.speedup("GPL") == pytest.approx(kbe_total / gpl_total)
        assert report.speedup("GPL") > 1.0

    def test_to_text(self, report):
        text = report.to_text()
        assert "TOTAL" in text
        assert "speedup over KBE" in text
        assert "Q14" in text and "Q8" in text

    def test_requires_engines(self):
        with pytest.raises(ExecutionError):
            run_workload([], {})

    def test_speedup_without_baseline(self):
        bare = WorkloadReport(device="x")
        with pytest.raises(ExecutionError):
            bare.speedup("GPL")

    def test_verification_catches_divergence(self, small_db, amd):
        class LyingEngine(GPLEngine):
            name = "Liar"

            def execute(self, spec):
                result = super().execute(spec)
                for array in result.batch.values():
                    if array.dtype.kind == "f" and array.size:
                        array[0] += 1e6  # corrupt the answer
                return result

        engines = [KBEEngine(small_db, amd), LyingEngine(small_db, amd)]
        with pytest.raises(ExecutionError, match="disagrees"):
            run_workload(engines, {"Q14": q14()})


class TestCLIWorkload:
    def test_tpch_suite(self, capsys):
        from repro.__main__ import main

        assert main(["workload", "tpch", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out and "speedup over KBE" in out

    def test_ssb_suite(self, capsys):
        from repro.__main__ import main

        assert main(["workload", "ssb", "--scale", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "Q4.3" in out
