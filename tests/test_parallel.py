"""Host-parallel execution: the deterministic worker pool.

Three layers of contract:

* :class:`~repro.core.WorkerPool` semantics — ``workers=1`` runs inline
  with no thread pool; errors are captured for the gather loop; private
  sub-traces graft back in submission order;
* the shared stores (plan/result/segment caches, the checkpoint store)
  survive a multithreaded hammer with their size and byte accounting
  intact;
* the golden invariant — same seed, any worker count => byte-identical
  report counters, per-ticket result checksums, and exported traces —
  on serve drains (clean and fault-storm) and 4-device shard scatters.
"""

import hashlib
import json
import threading

import numpy as np
import pytest

from repro.core import CheckpointStore, WorkerPool
from repro.core.checkpoint import SegmentCheckpoint
from repro.faults import FaultPlan
from repro.gpu import AMD_A10
from repro.model import clear_calibration_cache, clear_search_cache
from repro.obs.tracing import Tracer, current_tracer, use_tracer
from repro.serve import PlanCache, QueryService, ResultCache, SegmentCache
from repro.shard import DevicePool, ShardedExecutor
from repro.tpch import generate_database, q5, q7, q9, q14

MIB = 1024 * 1024
WORKER_COUNTS = (1, 2, 8)


# ---------------------------------------------------------------------------
# WorkerPool semantics
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_sequential_runs_inline_on_caller_thread(self):
        pool = WorkerPool(1)
        seen = []
        task = pool.submit(lambda: seen.append(threading.get_ident()))
        assert pool.sequential
        assert pool._executor is None  # no thread pool was ever created
        assert seen == [threading.get_ident()]
        assert task.error is None

    def test_workers_floor_at_one(self):
        assert WorkerPool(0).workers == 1
        assert WorkerPool(-3).workers == 1
        assert not WorkerPool(2).sequential

    def test_map_ordered_preserves_submission_order(self):
        pool = WorkerPool(4)
        try:
            tasks = pool.map_ordered(
                [lambda i=i: i * i for i in range(16)]
            )
            assert [task.unwrap() for task in tasks] == [
                i * i for i in range(16)
            ]
        finally:
            pool.shutdown()

    def test_errors_are_captured_not_raised(self):
        pool = WorkerPool(2)
        try:

            def boom():
                raise ValueError("boom")

            task = pool.submit(boom).wait()
            assert isinstance(task.error, ValueError)
            with pytest.raises(ValueError):
                task.unwrap()
        finally:
            pool.shutdown()

    def test_pool_accounting(self):
        pool = WorkerPool(1)
        pool.submit(lambda: None)
        pool.submit(lambda: None)
        assert pool.tasks_submitted == 2
        assert pool.busy_seconds >= 0.0

    def _traced_fanout(self, workers):
        pool = WorkerPool(workers)
        tracer = Tracer()
        try:
            with use_tracer(tracer):
                with tracer.span("fanout", category="serve"):
                    tasks = []
                    for index in range(6):

                        def body(index=index):
                            sub = current_tracer()
                            with sub.span(
                                f"task{index}", category="serve"
                            ):
                                sub.advance(3 + index)

                        tasks.append(pool.submit(body))
                    for task in tasks:
                        task.wait()
                        task.merge_trace()
        finally:
            pool.shutdown()
        return tracer

    def test_subtraces_graft_in_submission_order(self):
        sequential = self._traced_fanout(1)
        parallel = self._traced_fanout(4)
        names = [span.name for span in sequential.roots[0].children]
        assert names == [f"task{i}" for i in range(6)]
        assert sequential.to_json() == parallel.to_json()


# ---------------------------------------------------------------------------
# shared-store hammer: 8 threads, mixed get/put/evict
# ---------------------------------------------------------------------------

HAMMER_THREADS = 8
HAMMER_OPS = 200


def _hammer(worker):
    barrier = threading.Barrier(HAMMER_THREADS)
    errors = []

    def run(seed):
        try:
            barrier.wait()
            worker(seed)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=run, args=(seed,))
        for seed in range(HAMMER_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class _FakeResult:
    """Just enough of a QueryResult for ResultCache byte accounting."""

    def __init__(self, nbytes):
        self.batch = {"col": np.zeros(nbytes // 8, dtype=np.int64)}


class TestSharedStoreHammer:
    def test_plan_cache_hammer(self):
        cache = PlanCache(max_entries=8)

        def worker(seed):
            for i in range(HAMMER_OPS):
                key = f"k{(seed * 7 + i) % 24}"
                if cache.lookup(key) is None:
                    cache.store(key, object())

        _hammer(worker)
        assert len(cache) <= 8
        stats = cache.stats
        assert stats.hits + stats.misses == HAMMER_THREADS * HAMMER_OPS
        assert stats.evictions <= stats.misses

    def test_result_cache_hammer(self):
        cache = ResultCache(max_bytes=4096)

        def worker(seed):
            for i in range(HAMMER_OPS):
                key = f"r{(seed * 5 + i) % 16}"
                if cache.lookup(key) is None:
                    cache.store(key, _FakeResult(512))

        _hammer(worker)
        counters = cache.counters_dict()
        assert counters["hits"] + counters["misses"] == (
            HAMMER_THREADS * HAMMER_OPS
        )
        assert counters["stored"] == counters["misses"]
        assert counters["live_results"] <= 4096 // 512
        assert counters["live_bytes"] == 512 * counters["live_results"]
        assert counters["peak_bytes"] <= 4096

    def test_checkpoint_store_hammer(self):
        store = CheckpointStore(max_bytes=8192, max_segments=16)

        def worker(seed):
            for i in range(HAMMER_OPS):
                # unique (ticket, segment) keys: every put is an insert
                entry = SegmentCheckpoint(
                    segment_id=f"s{i}", nbytes=256
                )
                store._put(seed, entry)
                if i % 3 == 0:
                    store._get(seed, f"s{i}")
                if i % 5 == 0:
                    store._drop(seed, f"s{i}", invalidated=i % 2 == 0)

        _hammer(worker)
        counters = store.counters_dict()
        assert counters["live_segments"] <= 16
        assert counters["live_bytes"] == 256 * counters["live_segments"]
        assert counters["peak_bytes"] <= 8192
        assert counters["evicted"] <= counters["recorded"]

    def test_segment_cache_hammer(self):
        cache = SegmentCache(max_bytes=4096, max_segments=12)

        class _Context:
            def __init__(self):
                self.intermediates = {}
                self.hash_tables = {}

        def worker(seed):
            context = _Context()
            for i in range(HAMMER_OPS):
                key = f"seg{(seed * 11 + i) % 20}"
                if not cache.restore(key, context):
                    cache.store(
                        key,
                        SegmentCheckpoint(segment_id=key, nbytes=256),
                    )

        _hammer(worker)
        counters = cache.counters_dict()
        assert counters["hits"] + counters["misses"] == (
            HAMMER_THREADS * HAMMER_OPS
        )
        assert counters["live_segments"] <= 12
        assert counters["live_bytes"] == 256 * counters["live_segments"]
        assert counters["peak_bytes"] <= 4096


# ---------------------------------------------------------------------------
# golden determinism: workers in {1, 2, 8} are byte-identical
# ---------------------------------------------------------------------------


def _checksum(result):
    rows = sorted(
        tuple(round(float(value), 6) for value in row)
        for row in result.rows()
    )
    return hashlib.sha1(repr(rows).encode()).hexdigest()[:16]


def _canonical(counters):
    return json.dumps(counters, sort_keys=True, default=str)


def _assert_identical(witnesses):
    base_workers, base = witnesses[0]
    for workers, witness in witnesses[1:]:
        for label in base:
            assert witness[label] == base[label], (
                f"workers={workers} diverged from workers={base_workers} "
                f"on {label}"
            )


def _serve_witness(build_service, traffic, workers):
    clear_calibration_cache()
    clear_search_cache()
    database = generate_database(scale=0.01, seed=11)
    service = build_service(database, workers)
    tracer = Tracer()
    counters = []
    with use_tracer(tracer):
        for batch in traffic:
            for spec, fault_plan in batch:
                service.enqueue(spec, fault_plan)
            report = service.drain()
            counters.append(_canonical(report.counters_dict()))
    assert report.workers == workers
    assert "workers" not in report.counters_dict()  # witness stays pure
    gauge = report.metrics["serve_workers"]["series"][0]
    assert gauge["value"] == workers
    return {
        "counters": counters,
        "checksums": {
            ticket: _checksum(result)
            for ticket, result in sorted(service.results.items())
        },
        "trace": tracer.to_json(),
    }


class TestGoldenWorkerEquivalence:
    def test_serve_drain_byte_identical(self):
        def build(database, workers):
            return QueryService(
                database,
                AMD_A10,
                max_concurrent=4,
                result_cache=ResultCache(64 * MIB),
                segment_cache=SegmentCache(max_bytes=64 * MIB),
                batch_dedupe=True,
                workers=workers,
            )

        cold = [(spec, None) for spec in (q5(), q9(), q7(), q14(), q5())]
        warm = [(spec, None) for spec in (q5(), q9(), q7())]
        _assert_identical(
            [
                (workers, _serve_witness(build, [cold, warm], workers))
                for workers in WORKER_COUNTS
            ]
        )

    def test_sharded_serve_drain_byte_identical(self):
        def build(database, workers):
            return QueryService(
                database,
                AMD_A10,
                max_concurrent=4,
                pool=DevicePool(4),
                workers=workers,
            )

        traffic = [[(spec, None) for spec in (q5(), q9(), q7(), q9())]]
        _assert_identical(
            [
                (workers, _serve_witness(build, traffic, workers))
                for workers in WORKER_COUNTS
            ]
        )

    def test_fault_storm_drain_byte_identical(self):
        def build(database, workers):
            return QueryService(
                database,
                AMD_A10,
                max_concurrent=4,
                default_deadline_cycles=4e8,
                breaker_threshold=1,
                breaker_cooldown=1,
                workers=workers,
            )

        storm = [
            (spec, FaultPlan.from_seed(40 + index, count=3))
            for index, spec in enumerate(
                (q5(), q9(), q7(), q14(), q9(), q5())
            )
        ]
        recovery = [(spec, None) for spec in (q5(), q9())]
        witnesses = [
            (workers, _serve_witness(build, [storm, recovery], workers))
            for workers in WORKER_COUNTS
        ]
        _assert_identical(witnesses)
        # the storm must actually exercise the failure path
        outcomes = json.loads(witnesses[0][1]["counters"][0])["outcomes"]
        assert outcomes["ok"] < 6
        assert outcomes["deadline"] + outcomes["failed"] >= 1

    def test_shard_scatter_byte_identical(self):
        def witness(workers):
            clear_calibration_cache()
            clear_search_cache()
            database = generate_database(scale=0.01, seed=11)
            executor = ShardedExecutor(
                database, DevicePool(4), workers=workers
            )
            tracer = Tracer()
            with use_tracer(tracer):
                results = [executor.execute(spec) for spec in (q5(), q9())]
            return {
                "checksums": [_checksum(result) for result in results],
                "cycles": [
                    result.counters.elapsed_cycles for result in results
                ],
                "elapsed_ms": [result.elapsed_ms for result in results],
                "trace": tracer.to_json(),
            }

        _assert_identical(
            [(workers, witness(workers)) for workers in WORKER_COUNTS]
        )
