"""Tests for kernel specifications and launches."""

import pytest

from repro.errors import SimulationError
from repro.gpu import DataLocation, KernelLaunch, KernelSpec


def spec(**kwargs) -> KernelSpec:
    base = dict(
        name="k_test",
        compute_instr=10.0,
        memory_instr=2.0,
        pm_per_workitem=32,
        lm_per_workitem=8,
    )
    base.update(kwargs)
    return KernelSpec(**base)


class TestKernelSpec:
    def test_instr_per_tuple(self):
        assert spec().instr_per_tuple == 12.0

    def test_negative_instr_rejected(self):
        with pytest.raises(SimulationError):
            spec(compute_instr=-1.0)

    def test_bad_workgroup_size(self):
        with pytest.raises(SimulationError):
            spec(workgroup_size=0)

    def test_scaled(self):
        doubled = spec().scaled(2.0)
        assert doubled.compute_instr == 20.0
        assert doubled.memory_instr == 4.0
        assert doubled.name == "k_test"

    def test_default_not_blocking(self):
        assert not spec().blocking
        assert spec(blocking=True).blocking


class TestKernelLaunch:
    def launch(self, **kwargs) -> KernelLaunch:
        base = dict(
            spec=spec(),
            tuples=1000,
            workgroups=8,
            in_bytes_per_tuple=16,
            out_bytes_per_tuple=8,
            selectivity=0.5,
        )
        base.update(kwargs)
        return KernelLaunch(**base)

    def test_sizes(self):
        launch = self.launch()
        assert launch.input_bytes == 16_000
        assert launch.output_tuples == 500
        assert launch.output_bytes == 4_000
        assert launch.tuples_per_workgroup == 125.0

    def test_expansion_selectivity(self):
        launch = self.launch(selectivity=4.0)  # joins can expand
        assert launch.output_tuples == 4000

    def test_validation(self):
        with pytest.raises(SimulationError):
            self.launch(tuples=-1)
        with pytest.raises(SimulationError):
            self.launch(workgroups=0)
        with pytest.raises(SimulationError):
            self.launch(selectivity=-0.1)

    def test_with_workgroups(self):
        modified = self.launch().with_workgroups(32)
        assert modified.workgroups == 32
        assert modified.tuples == 1000

    def test_with_tuples(self):
        modified = self.launch().with_tuples(10)
        assert modified.tuples == 10
        assert modified.workgroups == 8

    def test_display_name(self):
        assert self.launch().display_name == "k_test"
        assert self.launch(label="stage0").display_name == "stage0"

    def test_default_locations(self):
        launch = self.launch()
        assert launch.input_location is DataLocation.GLOBAL
        assert launch.output_location is DataLocation.GLOBAL
