"""Tests for the channel calibration (Γ measurement and interpolation)."""

import pytest

from repro.errors import CalibrationError
from repro.gpu import AMD_A10, NVIDIA_K40
from repro.model import CalibrationPoint, CalibrationTable, calibrate_channels

MIB = 1024 * 1024


@pytest.fixture(scope="module")
def amd_table():
    return calibrate_channels(AMD_A10)


@pytest.fixture(scope="module")
def nvidia_table():
    return calibrate_channels(NVIDIA_K40)


class TestCalibrationRun:
    def test_grid_coverage(self, amd_table):
        configs = amd_table.configurations()
        channel_counts = {n for n, _ in configs}
        packet_sizes = {p for _, p in configs}
        assert channel_counts == {1, 2, 4, 8, 16, 32}
        assert 16 in packet_sizes and len(packet_sizes) > 1  # AMD tunable

    def test_nvidia_packet_fixed(self, nvidia_table):
        packet_sizes = {p for _, p in nvidia_table.configurations()}
        assert packet_sizes == {16}

    def test_cached_per_device(self):
        assert calibrate_channels(AMD_A10) is calibrate_channels(AMD_A10)

    def test_points_positive(self, amd_table):
        for point in amd_table.points:
            assert point.elapsed_cycles > 0
            assert point.bytes_per_cycle > 0
            assert point.throughput_gbps(AMD_A10) > 0


class TestFig2Shapes:
    def test_throughput_rises_then_falls_in_d(self, amd_table):
        series = amd_table.series(4, 16)
        throughputs = [p.bytes_per_cycle for p in series]
        peak = max(range(len(throughputs)), key=throughputs.__getitem__)
        assert peak not in (0,), "small inputs underutilize the channel"
        assert throughputs[-1] < throughputs[peak], "large inputs thrash"

    def test_more_channels_help_up_to_16(self, amd_table):
        d = 4 * MIB
        t1 = amd_table.throughput(1, 16, d)
        t4 = amd_table.throughput(4, 16, d)
        t16 = amd_table.throughput(16, 16, d)
        assert t1 < t4 < t16

    def test_32_channels_worse_than_16(self, amd_table):
        d = 4 * MIB
        assert amd_table.throughput(32, 16, d) < amd_table.throughput(
            16, 16, d
        )

    def test_best_config_channels_at_most_16(self, amd_table):
        # "n can be selected between 1 and 16"
        for d in (256 * 1024, MIB, 8 * MIB):
            n_max, _ = amd_table.best_config(d)
            assert 1 <= n_max <= 16


class TestInterpolation:
    def test_exact_points_returned(self, amd_table):
        series = amd_table.series(4, 16)
        for point in series:
            assert amd_table.throughput(4, 16, point.data_bytes) == (
                pytest.approx(point.bytes_per_cycle)
            )

    def test_between_points(self, amd_table):
        series = amd_table.series(4, 16)
        lo, hi = series[0], series[1]
        mid = (lo.data_bytes + hi.data_bytes) // 2
        value = amd_table.throughput(4, 16, mid)
        assert min(lo.bytes_per_cycle, hi.bytes_per_cycle) <= value <= max(
            lo.bytes_per_cycle, hi.bytes_per_cycle
        )

    def test_clamped_outside_range(self, amd_table):
        series = amd_table.series(4, 16)
        assert amd_table.throughput(4, 16, 1) == series[0].bytes_per_cycle
        assert amd_table.throughput(4, 16, 10**12) == (
            series[-1].bytes_per_cycle
        )

    def test_unknown_config_rejected(self, amd_table):
        with pytest.raises(CalibrationError):
            amd_table.series(5, 16)
        with pytest.raises(CalibrationError):
            amd_table.throughput(4, 7, MIB)

    def test_empty_table_best_config(self):
        with pytest.raises(CalibrationError):
            CalibrationTable(device=AMD_A10).best_config(MIB)

    def test_manual_points(self):
        table = CalibrationTable(device=AMD_A10)
        table.add(CalibrationPoint(4, 16, 1000, 100.0))
        table.add(CalibrationPoint(4, 16, 4000, 200.0))
        assert table.throughput(4, 16, 1000) == 10.0
        assert table.best_config(1000) == (4, 16)
