#!/usr/bin/env python3
"""Engine shoot-out: KBE vs GPL (w/o CE) vs GPL vs Ocelot, both devices.

Runs the paper's five TPC-H queries on all four engines, checks that
every engine returns the same answers, and prints execution times,
utilization, and materialized-intermediate volumes — a miniature of the
paper's Section 5 evaluation.
"""

from repro import (
    AMD_A10,
    NVIDIA_K40,
    GPLEngine,
    GPLWithoutCEEngine,
    KBEEngine,
    generate_database,
    query_by_name,
)
from repro.ocelot import OcelotEngine

QUERIES = ("Q5", "Q7", "Q8", "Q9", "Q14")


def run_device(device, database) -> None:
    print(f"\n=== {device.name} ===")
    engines = [
        KBEEngine(database, device),
        GPLWithoutCEEngine(database, device),
        GPLEngine(database, device),
        OcelotEngine(database, device),
    ]
    header = f"{'query':6s}" + "".join(
        f"{engine.name:>14s}" for engine in engines
    )
    print(header + f"{'GPL speedup':>14s}")
    for name in QUERIES:
        spec = query_by_name(name)
        results = [engine.execute(spec) for engine in engines]
        assert all(
            results[0].approx_equals(result) for result in results[1:]
        ), f"{name}: engines disagree!"
        times = [result.elapsed_ms for result in results]
        kbe_ms, _, gpl_ms, _ = times
        row = f"{name:6s}" + "".join(f"{t:>12.2f}ms" for t in times)
        print(row + f"{kbe_ms / gpl_ms:>13.2f}x")

    print("\nPer-query counters (KBE vs GPL):")
    for name in QUERIES:
        spec = query_by_name(name)
        kbe = KBEEngine(database, device).execute(spec)
        gpl = GPLEngine(database, device).execute(spec)
        ratio = gpl.counters.bytes_materialized / max(
            1.0, kbe.counters.bytes_materialized
        )
        print(
            f"  {name:4s} KBE util=({kbe.counters.valu_busy:.2f},"
            f"{kbe.counters.mem_unit_busy:.2f})  "
            f"GPL util=({gpl.counters.valu_busy:.2f},"
            f"{gpl.counters.mem_unit_busy:.2f})  "
            f"GPL materializes {ratio * 100:.0f}% of KBE's intermediates"
        )


def main() -> None:
    database = generate_database(scale=0.05)
    for device in (AMD_A10, NVIDIA_K40):
        run_device(device, database)


if __name__ == "__main__":
    main()
