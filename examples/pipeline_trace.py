#!/usr/bin/env python3
"""Visualize a pipelined segment: who ran when, who starved, who overlapped.

Runs Q14 with trace capture and prints a text Gantt chart per segment —
the filter's map kernel filling the pipe, the probe chasing it through
the channel, the streaming reduce draining both, all concurrent within
the device's kernel slots.
"""

from repro import AMD_A10, GPLEngine, generate_database, q14
from repro.gpu import render_gantt, stage_utilization


def main() -> None:
    database = generate_database(scale=0.05)
    engine = GPLEngine(database, AMD_A10)
    result, traces = engine.execute_with_trace(q14())

    print(f"Q14 on {AMD_A10.name}: {result.elapsed_ms:.3f} ms total\n")
    for pipeline_id, events in traces.items():
        if not events:
            continue
        elapsed = max(event.end for event in events)
        print(f"segment [{pipeline_id}] — {len(events)} work-group units, "
              f"{AMD_A10.cycles_to_ms(elapsed):.3f} ms")
        print(render_gantt(events, elapsed, width=64))
        utilization = stage_utilization(events, elapsed)
        for label, fraction in utilization.items():
            print(f"  {label:16s} in flight {fraction * 100:5.1f}% of the run")
        print()


if __name__ == "__main__":
    main()
