#!/usr/bin/env python3
"""Cost-based tuning: let the analytical model pick GPL's configuration.

Reproduces the paper's Section 4 workflow for Q8:

1. calibrate the channel throughput surface Γ(n, p, d) on the device;
2. lower the query and describe every segment to the cost model;
3. search tile size, channel setting, and work-group counts per segment;
4. compare the model-chosen configuration against the 1 MB default and
   report the model's prediction error.
"""

from repro import AMD_A10, GPLEngine, generate_database, q8
from repro.model import (
    ConfigurationSearch,
    calibrate_channels,
    plan_cost_inputs,
)


def main() -> None:
    device = AMD_A10
    database = generate_database(scale=0.1)
    spec = q8()

    print(f"Calibrating channels on {device.name}...")
    calibration = calibrate_channels(device)
    n_max, p_max = calibration.best_config(1024 * 1024)
    print(f"  best channel setting for 1 MB transfers: n={n_max}, p={p_max}B")

    engine = GPLEngine(database, device)
    plan = engine.prepare(spec)
    segments = plan_cost_inputs(plan, database)
    print(f"\n{spec.name} lowers to {len(segments)} segments:")
    print(plan.describe())

    search = ConfigurationSearch(device, calibration)
    configs, predicted = search.optimize_plan(segments)
    print("\nModel-chosen configuration per segment:")
    for segment_id, config in configs.items():
        print(
            f"  {segment_id:16s} tile={config.tile_bytes // 1024:>6}KB  "
            f"n={config.channel.num_channels:<2} "
            f"p={config.channel.packet_bytes:<3} "
            f"wg={config.default_workgroups}"
        )

    default_run = GPLEngine(database, device).execute(spec)
    tuned_run = GPLEngine(
        database, device, segment_configs=configs
    ).execute(spec)

    measured = tuned_run.counters.elapsed_cycles
    error = abs(measured - predicted) / measured
    print(f"\ndefault config: {default_run.elapsed_ms:.3f} ms")
    print(f"tuned config:   {tuned_run.elapsed_ms:.3f} ms")
    print(
        f"model predicted {device.cycles_to_ms(predicted):.3f} ms "
        f"(relative error {error:.2f}, "
        f"{'under' if predicted < measured else 'over'}estimate)"
    )


if __name__ == "__main__":
    main()
