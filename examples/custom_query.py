#!/usr/bin/env python3
"""Beyond TPC-H: run GPL over your own schema and query.

The engines are not tied to the TPC-H workload — any star-schema query
expressed as a :class:`~repro.plans.QuerySpec` runs through the same
optimizer, lowering, and pipelined execution.  This example builds a tiny
web-analytics warehouse (page views joined to pages and users) and asks
for revenue per country for one month of premium-page traffic.
"""

import numpy as np

from repro import AMD_A10, GPLEngine, KBEEngine
from repro.plans import AggSpec, JoinEdge, QuerySpec, TableRef
from repro.relational import (
    ColumnDef,
    Database,
    DataType,
    Table,
    TableSchema,
    col,
)

COUNTRIES = ("US", "DE", "SG", "BR", "JP")


def build_database(num_views: int = 200_000, seed: int = 7) -> Database:
    rng = np.random.default_rng(seed)
    database = Database()

    num_pages, num_users = 2_000, 10_000
    pages = Table(
        TableSchema.of(
            ColumnDef("page_id", DataType.INT32),
            ColumnDef("is_premium", DataType.INT32),
        ),
        {
            "page_id": np.arange(num_pages, dtype=np.int32),
            "is_premium": (
                rng.random(num_pages) < 0.2
            ).astype(np.int32),
        },
    )
    users = Table(
        TableSchema.of(
            ColumnDef("user_id", DataType.INT32),
            ColumnDef("country", DataType.DICT, COUNTRIES),
        ),
        {
            "user_id": np.arange(num_users, dtype=np.int32),
            "country": rng.integers(
                0, len(COUNTRIES), num_users, dtype=np.int32
            ),
        },
    )
    views = Table(
        TableSchema.of(
            ColumnDef("v_page_id", DataType.INT32),
            ColumnDef("v_user_id", DataType.INT32),
            ColumnDef("v_day", DataType.INT32),
            ColumnDef("v_revenue", DataType.FLOAT64),
        ),
        {
            "v_page_id": rng.integers(0, num_pages, num_views, dtype=np.int32),
            "v_user_id": rng.integers(0, num_users, num_views, dtype=np.int32),
            "v_day": rng.integers(0, 365, num_views, dtype=np.int32),
            "v_revenue": rng.exponential(0.05, num_views),
        },
    )
    database.add("pages", pages)
    database.add("users", users)
    database.add("views", views)
    return database


def premium_revenue_by_country() -> QuerySpec:
    """SELECT country, sum(v_revenue), count(*) FROM views
    JOIN pages ON page_id JOIN users ON user_id
    WHERE is_premium = 1 AND v_day BETWEEN 90 AND 119
    GROUP BY country ORDER BY revenue DESC"""
    return QuerySpec(
        name="premium_revenue",
        tables=(
            TableRef("views", "views"),
            TableRef("pages", "pages"),
            TableRef("users", "users"),
        ),
        join_edges=(
            JoinEdge("views", "v_page_id", "pages", "page_id"),
            JoinEdge("views", "v_user_id", "users", "user_id"),
        ),
        fact="views",
        filters={
            "pages": col("is_premium").eq(1),
            "views": col("v_day").between(90, 119),
        },
        group_keys=("country",),
        aggregates=(
            AggSpec("revenue", "sum", col("v_revenue")),
            AggSpec("views_count", "count"),
        ),
        order_by=("revenue",),
        order_desc=(True,),
    )


def main() -> None:
    database = build_database()
    spec = premium_revenue_by_country()

    gpl = GPLEngine(database, AMD_A10)
    kbe = KBEEngine(database, AMD_A10)
    print("Optimized plan:")
    print(gpl.prepare(spec).describe())

    gpl_result = gpl.execute(spec)
    kbe_result = kbe.execute(spec)
    assert gpl_result.approx_equals(kbe_result)

    print("\ncountry  revenue     views")
    for country_code, revenue, views_count in gpl_result.rows():
        print(
            f"{COUNTRIES[int(country_code)]:7s} "
            f"{revenue:10.2f} {int(views_count):>9,}"
        )
    print(
        f"\nGPL {gpl_result.elapsed_ms:.3f} ms vs "
        f"KBE {kbe_result.elapsed_ms:.3f} ms "
        f"({kbe_result.elapsed_ms / gpl_result.elapsed_ms:.2f}x)"
    )


if __name__ == "__main__":
    main()
