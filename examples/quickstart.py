#!/usr/bin/env python3
"""Quickstart: run a TPC-H query on GPL and on the KBE baseline.

Generates a small TPC-H database, executes Q14 on both engines against
the simulated AMD A10 APU, verifies the answers agree, and prints the
simulated execution times and headline counters.
"""

from repro import AMD_A10, GPLEngine, KBEEngine, generate_database, q14


def main() -> None:
    print("Generating TPC-H data (scale factor 0.02)...")
    database = generate_database(scale=0.02)
    for name in database.names:
        print(f"  {name:10s} {database.num_rows(name):>9,} rows")

    spec = q14()
    kbe = KBEEngine(database, AMD_A10)
    gpl = GPLEngine(database, AMD_A10)

    print(f"\nExecuting {spec.name} on {AMD_A10.name}...")
    kbe_result = kbe.execute(spec)
    gpl_result = gpl.execute(spec)

    assert kbe_result.approx_equals(gpl_result), (
        "engines must agree on the answer"
    )
    (promo_revenue,) = kbe_result.rows()[0]
    print(f"  promo_revenue = {promo_revenue:.4f}%  (both engines agree)")

    print("\nSimulated execution:")
    for result in (kbe_result, gpl_result):
        counters = result.counters
        print(
            f"  {result.engine:12s} {result.elapsed_ms:7.3f} ms   "
            f"VALUBusy={counters.valu_busy:.2f}  "
            f"MemUnitBusy={counters.mem_unit_busy:.2f}  "
            f"materialized={counters.bytes_materialized / 1e6:.2f} MB  "
            f"kernel launches={counters.kernel_launches}"
        )
    improvement = 1.0 - gpl_result.elapsed_ms / kbe_result.elapsed_ms
    print(f"\nGPL improvement over KBE: {improvement * 100:.0f}%")


if __name__ == "__main__":
    main()
