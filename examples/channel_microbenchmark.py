#!/usr/bin/env python3
"""Channel microbenchmark: the paper's Section 2.1 calibration experiment.

A producer kernel generates N integers and streams them through a data
channel to a consumer kernel.  Sweeping the data size, the number of
channels, and the packet size maps out the throughput surface Γ(n, p, d)
that the analytical model consumes (Figs 2 and 23).
"""

from repro.gpu import AMD_A10, NVIDIA_K40
from repro.model import calibrate_channels


def sweep(device) -> None:
    print(f"\n=== {device.name} ===")
    table = calibrate_channels(device)
    packet = 16
    sizes = sorted({point.data_bytes for point in table.points})
    print(f"throughput (GB/s), packet size {packet} B:")
    header = "channels " + "".join(
        f"{size // 4096:>8}Ki" for size in sizes
    )
    print(header)
    for n in (1, 2, 4, 8, 16, 32):
        cells = "".join(
            f"{table.throughput(n, packet, size) * device.core_mhz * 1e6 / 1e9:>10.2f}"
            for size in sizes
        )
        print(f"{n:>8} {cells}")
    for d_label, d in (("64KB", 65536), ("1MB", 1 << 20), ("16MB", 16 << 20)):
        n_max, p_max = table.best_config(d)
        print(f"best config for {d_label:>5} transfers: n={n_max}, p={p_max}B")


def main() -> None:
    for device in (AMD_A10, NVIDIA_K40):
        sweep(device)


if __name__ == "__main__":
    main()
