#!/usr/bin/env python3
"""Run the Star Schema Benchmark: thirteen star joins, two engines.

SSB is the canonical star-schema workload — one wide fact table probed
against four dimensions — which makes every query a single pipelined
segment for GPL. This example runs all four flights on both engines and
summarizes the speedups.
"""

from repro import AMD_A10, GPLEngine, KBEEngine
from repro.ssb import SSB_QUERIES, generate_ssb


def main() -> None:
    database = generate_ssb(scale=0.05)
    print("SSB at scale 0.05:")
    for name in database.names:
        print(f"  {name:10s} {database.num_rows(name):>9,} rows")

    kbe = KBEEngine(database, AMD_A10)
    gpl = GPLEngine(database, AMD_A10)

    print(f"\n{'query':7s} {'rows':>5s} {'KBE ms':>8s} {'GPL ms':>8s} "
          f"{'speedup':>8s}")
    total_kbe = total_gpl = 0.0
    for name, spec in SSB_QUERIES.items():
        kbe_run = kbe.execute(spec)
        gpl_run = gpl.execute(spec)
        assert kbe_run.approx_equals(gpl_run), f"{name}: engines disagree"
        total_kbe += kbe_run.elapsed_ms
        total_gpl += gpl_run.elapsed_ms
        print(
            f"{name:7s} {gpl_run.num_rows:>5d} {kbe_run.elapsed_ms:>8.2f} "
            f"{gpl_run.elapsed_ms:>8.2f} "
            f"{kbe_run.elapsed_ms / gpl_run.elapsed_ms:>7.2f}x"
        )
    print(
        f"{'TOTAL':7s} {'':>5s} {total_kbe:>8.2f} {total_gpl:>8.2f} "
        f"{total_kbe / total_gpl:>7.2f}x"
    )

    # A sample of decoded output: profit by year and nation (Q4.1).
    result = gpl.execute(SSB_QUERIES["Q4.1"])
    print("\nQ4.1 — profit by year and customer nation (first 8 rows):")
    for year, nation, profit in result.decoded_rows()[:8]:
        print(f"  {year}  {nation:15s} {profit:>14,.2f}")


if __name__ == "__main__":
    main()
