"""Ocelot comparator: hardware-oblivious KBE with bitmaps + ht caching."""

from .engine import OcelotEngine

__all__ = ["OcelotEngine"]
