"""Ocelot comparator: a hardware-oblivious, KBE-style engine.

Ocelot (Heimel et al. [18]) replaces MonetDB's operators with OpenCL
kernels; it is kernel-based (no pipelining) but carries two optimizations
the paper singles out in Section 5.5:

1. **Bitmap intermediates** — a selection emits a bitmap instead of a
   compacted tuple array, so no prefix-sum/scatter kernels run and the
   selection intermediate is 1 bit per input tuple;
2. **Hash-table caching** — MonetDB's memory manager keeps previously
   built hash tables, so repeated builds over the same (table, key,
   predicate) are free.

Downstream operators pay for the bitmap's laziness: they scan *all* input
positions (reading the bitmap plus the base columns of candidate rows)
rather than a compacted intermediate.  This is exactly the trade the
paper describes, and it is why Ocelot tracks GPL on selection-dominated
queries but falls behind on join-deep Q8/Q9.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..core.base import EngineBase, workgroups_for
from ..gpu import DataLocation, KernelLaunch, Simulator
from ..plans import ExecutionContext, KernelTemplate, Pipeline
from ..plans import kernels as klib
from ..plans.physical import BuildSink, FilterOp
from ..plans.runtime import batch_rows

__all__ = ["OcelotEngine"]

#: Bitmap width per input tuple, in bytes (1 bit, rounded for accounting).
_BITMAP_WIDTH = 0.125


class OcelotEngine(EngineBase):
    """Kernel-based execution with bitmaps and hash-table caching."""

    name = "Ocelot"

    def __init__(self, database, device, **kwargs):
        super().__init__(database, device, **kwargs)
        # (table, key, payload, predicate fingerprint) -> cached flag
        self._hash_table_cache: Dict[Tuple, bool] = {}

    def clear_hash_table_cache(self) -> None:
        self._hash_table_cache.clear()

    # ------------------------------------------------------------------

    def _run_pipeline(
        self,
        pipeline: Pipeline,
        simulator: Simulator,
        context: ExecutionContext,
    ) -> None:
        cached_build = self._is_cached_build(pipeline)

        batch = self._source_batch(pipeline, context)
        pipeline.sink.start(context)

        reads_intermediate = pipeline.source_table is None
        for op in pipeline.ops:
            rows_in = batch_rows(batch)
            batch = op.apply(batch, context)
            rows_out = batch_rows(batch)
            actual = self._actual_selectivity(rows_in, rows_out)
            if not cached_build:
                for template, positions in self._ocelot_kernels(
                    op, rows_in
                ):
                    self._run_kernel(
                        simulator, context, template, positions, actual,
                        reads_intermediate,
                    )
                    reads_intermediate = True
            else:
                reads_intermediate = True

        rows_in = batch_rows(batch)
        pipeline.sink.consume(batch, context)
        if not cached_build:
            for template in pipeline.sink.kbe_kernels():
                self._run_kernel(
                    simulator, context, template, rows_in, None,
                    reads_intermediate,
                )
                reads_intermediate = True
        output = pipeline.sink.finalize(context)
        self._register_output(pipeline, context, output)

    # ------------------------------------------------------------------

    def _is_cached_build(self, pipeline: Pipeline) -> bool:
        """Check/populate the hash-table cache for build pipelines."""
        if not isinstance(pipeline.sink, BuildSink):
            return False
        sink = pipeline.sink
        fingerprint = (
            pipeline.source_table,
            sink.key,
            sink.payload_columns,
            tuple(repr(op) for op in pipeline.ops),
        )
        if fingerprint in self._hash_table_cache:
            return True
        self._hash_table_cache[fingerprint] = True
        return False

    def _ocelot_kernels(
        self, op, rows_in: int
    ) -> List[Tuple[KernelTemplate, int]]:
        """Ocelot's kernel expansion: (template, positions scanned).

        Selections become a single bitmap kernel (MonetDB candidate
        lists); downstream operators process the qualifying rows plus one
        extra memory access per row for the candidate indirection.
        """
        if isinstance(op, FilterOp):
            # One map kernel writing a bitmap; no prefix sum, no scatter.
            spec = klib.flag_map_kernel([op.predicate])
            spec = replace(spec, name="k_bitmap_select")
            template = KernelTemplate(
                spec=spec,
                in_width=op.in_width,
                out_width=1,  # bitmap byte per 8 tuples, rounded up
                est_selectivity=_BITMAP_WIDTH,
            )
            return [(template, rows_in)]
        expanded = []
        for template in op.kbe_kernels():
            spec = replace(
                template.spec, memory_instr=template.spec.memory_instr + 1.0
            )
            expanded.append((replace(template, spec=spec), rows_in))
        return expanded

    def _run_kernel(
        self,
        simulator: Simulator,
        context: ExecutionContext,
        template: KernelTemplate,
        positions: int,
        actual_selectivity: Optional[float],
        input_is_intermediate: bool = False,
    ) -> None:
        selectivity = template.est_selectivity
        if (
            actual_selectivity is not None
            and template.est_selectivity != 1.0
            and template.est_selectivity != _BITMAP_WIDTH
        ):
            selectivity = actual_selectivity
        aux_ws = self._aux_working_set(context, template)
        launch = KernelLaunch(
            spec=template.spec,
            tuples=positions,
            workgroups=workgroups_for(positions),
            in_bytes_per_tuple=template.in_width,
            out_bytes_per_tuple=template.out_width,
            selectivity=selectivity,
            input_location=DataLocation.GLOBAL,
            output_location=DataLocation.GLOBAL,
        )
        simulator.launch_overhead()
        simulator.run_exclusive(
            launch,
            aux_reads_per_tuple=template.aux_reads_per_tuple,
            aux_working_set_bytes=aux_ws,
            input_is_intermediate=input_is_intermediate,
        )
