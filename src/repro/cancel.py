"""Cooperative cancellation for deadline-aware query execution.

The simulator never blocks on wall-clock time — everything is virtual
cycles — so cancellation is *cooperative*: a :class:`CancellationToken`
is handed down from the serving layer (or CLI) through the engine to the
:class:`~repro.gpu.simulator.Simulator`, which consults it at segment
boundaries and at every event-loop step (tile/kernel completions).  When
the token's budget runs out the simulator raises a typed
:class:`~repro.errors.DeadlineExceededError` instead of finishing the
query — deterministic for a given seed and deadline, and cheap: one
``float`` comparison per simulated event when a deadline is armed, zero
overhead when it is not.

One token spans one *query*, not one attempt: the resilience layer
charges the cycles consumed by failed attempts back onto the token, so a
query that Δ-halves or falls back to KBE still answers (or cancels)
against a single cumulative deadline.
"""

from __future__ import annotations

from typing import Optional

from .errors import DeadlineExceededError

__all__ = ["CancellationToken"]


class CancellationToken:
    """Cumulative cycle budget for one query, shared across attempts.

    ``consumed_cycles`` holds cycles charged by *finished* (successful or
    failed) simulator runs; in-flight runs pass their own elapsed cycles
    to :meth:`check` on top of that.  ``cancel()`` flips the token
    unconditionally, for callers that want to abandon a query early
    regardless of its deadline.
    """

    __slots__ = ("query", "deadline_cycles", "consumed_cycles", "cancelled",
                 "reason", "checks")

    def __init__(
        self,
        deadline_cycles: Optional[float] = None,
        query: str = "",
    ):
        if deadline_cycles is not None and deadline_cycles <= 0:
            raise ValueError("deadline_cycles must be positive when set")
        self.query = query
        self.deadline_cycles = deadline_cycles
        self.consumed_cycles = 0.0
        self.cancelled = False
        self.reason = ""
        self.checks = 0

    @property
    def active(self) -> bool:
        """Whether checks can ever fire (deadline armed or cancelled)."""
        return self.deadline_cycles is not None or self.cancelled

    def remaining_cycles(self, run_cycles: float = 0.0) -> float:
        """Cycles left before expiry; ``inf`` when no deadline is armed."""
        if self.deadline_cycles is None:
            return float("inf")
        return self.deadline_cycles - self.consumed_cycles - run_cycles

    def expired(self, run_cycles: float = 0.0) -> bool:
        if self.cancelled:
            return True
        return self.remaining_cycles(run_cycles) < 0

    def cancel(self, reason: str = "cancelled by caller") -> None:
        self.cancelled = True
        self.reason = reason

    def charge(self, cycles: float) -> None:
        """Fold one finished simulator run into the cumulative budget."""
        self.consumed_cycles += cycles

    def check(self, run_cycles: float = 0.0, where: str = "") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent.

        ``run_cycles`` is the elapsed-cycle count of the simulator run in
        flight (not yet charged); ``where`` names the boundary for the
        error message (e.g. a segment id).
        """
        self.checks += 1
        if not self.expired(run_cycles):
            return
        elapsed = self.consumed_cycles + run_cycles
        if self.cancelled:
            detail = self.reason
        else:
            detail = (
                f"deadline {self.deadline_cycles:.0f} cycles exceeded at "
                f"{elapsed:.0f} cycles"
            )
        suffix = f" (at {where})" if where else ""
        raise DeadlineExceededError(
            f"query {self.query or '?'}: {detail}{suffix}",
            query=self.query,
            deadline_cycles=self.deadline_cycles or 0.0,
            elapsed_cycles=elapsed,
            where=where,
        )
