"""Physical pipelines: the executable, kernel-annotated query form.

A :class:`PhysicalPlan` is an ordered list of :class:`Pipeline` objects —
the paper's *segments*.  Each pipeline streams batches from a source
(a base table or an earlier pipeline's materialized output) through
:class:`StreamOp` operators into one :class:`SinkOp`, which is the
blocking operator that ends the segment (hash build barrier, aggregation
epilogue, sort, or final output).

Every operator carries two kinds of kernel expansion:

* ``gpl_kernels()`` — the fine-grained, non-blocking form (paper
  Section 3.2): selection is a single ``k_map``, probe a single
  ``k_probe``, aggregation a streaming ``k_reduce*``;
* ``kbe_kernels()`` — the conventional kernel-based form: selection is
  ``k_map`` + ``k_prefix_sum`` + ``k_scatter``, probe is count/prefix/
  scatter, aggregation materializes per-tuple values then prefix-scans.

Engines execute the *same* functional ``apply``/``consume`` code for both,
so correctness is engine-independent; only kernel accounting differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError, PlanError
from ..gpu.kernel import KernelSpec
from ..relational import Expression
from . import kernels as klib
from .logical import AggSpec
from .runtime import (
    Batch,
    ExecutionContext,
    GroupAggState,
    HashTable,
    PartitionedHashTable,
    batch_rows,
)

__all__ = [
    "KernelTemplate",
    "StreamOp",
    "FilterOp",
    "ComputeOp",
    "ProbeOp",
    "PartitionOp",
    "SinkOp",
    "BuildSink",
    "PartitionedBuildSink",
    "AggSink",
    "SortSink",
    "CollectSink",
    "Pipeline",
    "PhysicalPlan",
]


@dataclass(frozen=True)
class KernelTemplate:
    """A kernel spec plus the data-shape metadata engines need to launch it.

    ``aux_build_id`` names a hash table whose size is the kernel's
    auxiliary working set (resolved at run time, when the table exists).
    ``est_selectivity`` is the optimizer's tuple-survival estimate
    (``lambda`` feeds the cost model); engines use *actual* counts when
    simulating.
    """

    spec: KernelSpec
    in_width: int
    out_width: int
    est_selectivity: float = 1.0
    aux_reads_per_tuple: float = 0.0
    aux_build_id: Optional[str] = None
    #: For partitioned probes: the auxiliary working set shrinks to one
    #: partition's worth of the referenced hash table.
    aux_partitions: int = 1


def _width_of(columns: Sequence[str], widths: Dict[str, int]) -> int:
    return sum(widths.get(name, 8) for name in columns)


class StreamOp:
    """A non-terminal pipeline operator (streamable per batch).

    Lowering fills the column/width metadata after building the chain.
    """

    def __init__(self) -> None:
        self.in_columns: Tuple[str, ...] = ()
        self.out_columns: Tuple[str, ...] = ()
        self.in_width: int = 0
        self.out_width: int = 0
        self.est_selectivity: float = 1.0

    def bind(
        self,
        in_columns: Sequence[str],
        out_columns: Sequence[str],
        widths: Dict[str, int],
        est_selectivity: float,
    ) -> None:
        self.in_columns = tuple(in_columns)
        self.out_columns = tuple(out_columns)
        self.in_width = _width_of(in_columns, widths)
        self.out_width = _width_of(out_columns, widths)
        self.est_selectivity = est_selectivity

    def apply(self, batch: Batch, context: ExecutionContext) -> Batch:
        raise NotImplementedError

    def gpl_kernels(self) -> List[KernelTemplate]:
        raise NotImplementedError

    def kbe_kernels(self) -> List[KernelTemplate]:
        raise NotImplementedError


class FilterOp(StreamOp):
    """Row selection by a predicate."""

    def __init__(self, predicate: Expression):
        super().__init__()
        self.predicate = predicate

    def apply(self, batch: Batch, context: ExecutionContext) -> Batch:
        mask = np.asarray(self.predicate.evaluate(batch), dtype=bool)
        return {name: batch[name][mask] for name in self.out_columns}

    def gpl_kernels(self) -> List[KernelTemplate]:
        # GPL selection: map only; satisfied tuples go to the channel
        # (paper Section 3.2 removes the prefix-sum kernel).  Unlike KBE's
        # flag map, the pipelined map reads *every* carried column — it
        # forwards whole tuples downstream.
        spec = klib.map_kernel([self.predicate], columns_out=0, name="k_map")
        spec = replace(spec, memory_instr=float(len(self.in_columns)))
        return [
            KernelTemplate(
                spec=spec,
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=self.est_selectivity,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        columns = len(self.out_columns)
        return [
            KernelTemplate(
                spec=klib.flag_map_kernel([self.predicate]),
                in_width=self.in_width,
                out_width=4,  # one int32 flag per tuple
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.prefix_sum_kernel(),
                in_width=4,
                out_width=4,
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.scatter_kernel(columns),
                in_width=self.in_width + 8,  # tuple + flag + offset
                out_width=self.out_width,
                est_selectivity=self.est_selectivity,
            ),
        ]

    def __repr__(self) -> str:
        return f"FilterOp({self.predicate!r})"


class ComputeOp(StreamOp):
    """Evaluate derived columns (projection with computation)."""

    def __init__(self, outputs: Sequence[Tuple[str, Expression]]):
        super().__init__()
        self.outputs = tuple(outputs)

    def apply(self, batch: Batch, context: ExecutionContext) -> Batch:
        rows = batch_rows(batch)
        result: Batch = {}
        computed = {name: expr for name, expr in self.outputs}
        for name in self.out_columns:
            if name in computed:
                value = np.asarray(computed[name].evaluate(batch))
                result[name] = np.broadcast_to(value, (rows,)).copy() if value.ndim == 0 else value
            else:
                result[name] = batch[name]
        return result

    def _spec(self) -> KernelSpec:
        return klib.map_kernel(
            [expr for _, expr in self.outputs],
            columns_out=len(self.outputs),
            name="k_map",
        )

    def gpl_kernels(self) -> List[KernelTemplate]:
        spec = replace(
            self._spec(), memory_instr=float(len(self.in_columns))
        )
        return [
            KernelTemplate(
                spec=spec,
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=1.0,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        return [
            KernelTemplate(
                spec=self._spec(),
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=1.0,
            )
        ]

    def __repr__(self) -> str:
        return f"ComputeOp({[name for name, _ in self.outputs]})"


class PartitionOp(StreamOp):
    """Cluster a stream by radix partition of a key (Section 3.2).

    Functionally a stable reorder (the row multiset is unchanged); its
    effect on execution is locality: the downstream partitioned probe
    touches one hash-table partition at a time.
    """

    def __init__(self, key: str, num_partitions: int):
        super().__init__()
        self.key = key
        self.num_partitions = num_partitions

    def apply(self, batch: Batch, context: ExecutionContext) -> Batch:
        keys = np.asarray(batch[self.key], dtype=np.int64)
        parts = (keys * np.int64(2654435761)) % self.num_partitions
        order = np.argsort(parts, kind="stable")
        return {name: batch[name][order] for name in self.out_columns}

    def gpl_kernels(self) -> List[KernelTemplate]:
        return [
            KernelTemplate(
                spec=klib.partition_kernel(len(self.in_columns)),
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=1.0,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        # KBE partitions with histogram + prefix sum + scatter.
        return [
            KernelTemplate(
                spec=klib.histogram_kernel(),
                in_width=self.in_width,
                out_width=4,
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.prefix_sum_kernel(),
                in_width=4,
                out_width=4,
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.scatter_kernel(len(self.out_columns)),
                in_width=self.in_width + 8,
                out_width=self.out_width,
                est_selectivity=1.0,
            ),
        ]

    def __repr__(self) -> str:
        return f"PartitionOp({self.key}, P={self.num_partitions})"


class ProbeOp(StreamOp):
    """Probe a previously built hash table; emit matched, widened rows."""

    def __init__(
        self,
        build_id: str,
        probe_key: str,
        payload_columns: Sequence[str],
        partitioned: bool = False,
        num_partitions: int = 1,
    ):
        super().__init__()
        self.build_id = build_id
        self.probe_key = probe_key
        self.payload_columns = tuple(payload_columns)
        self.partitioned = partitioned
        self.num_partitions = num_partitions if partitioned else 1

    def apply(self, batch: Batch, context: ExecutionContext) -> Batch:
        table = context.hash_table(self.build_id)
        probe_idx, build_idx = table.probe(
            np.asarray(batch[self.probe_key])
        )
        payload = table.payload_rows(build_idx)
        result: Batch = {}
        for name in self.out_columns:
            if name in payload:
                result[name] = payload[name]
            else:
                result[name] = batch[name][probe_idx]
        return result

    def gpl_kernels(self) -> List[KernelTemplate]:
        # The pipelined probe forwards whole tuples and gathers its
        # payload columns from the hash table in global memory.
        spec = replace(
            klib.probe_kernel(len(self.payload_columns)),
            memory_instr=float(len(self.in_columns)),
        )
        return [
            KernelTemplate(
                spec=spec,
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=self.est_selectivity,
                aux_reads_per_tuple=2.0 + len(self.payload_columns),
                aux_build_id=self.build_id,
                aux_partitions=self.num_partitions,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        return [
            KernelTemplate(
                spec=klib.probe_count_kernel(),
                in_width=self.in_width,
                out_width=4,
                est_selectivity=1.0,
                aux_reads_per_tuple=2.0,
                aux_build_id=self.build_id,
                aux_partitions=self.num_partitions,
            ),
            KernelTemplate(
                spec=klib.prefix_sum_kernel(),
                in_width=4,
                out_width=4,
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.probe_scatter_kernel(len(self.out_columns)),
                in_width=self.in_width + 8,
                out_width=self.out_width,
                est_selectivity=self.est_selectivity,
                aux_reads_per_tuple=2.0,
                aux_build_id=self.build_id,
                aux_partitions=self.num_partitions,
            ),
        ]

    def __repr__(self) -> str:
        return f"ProbeOp({self.build_id}, key={self.probe_key})"


class SinkOp:
    """Terminal operator of a pipeline (the segment-ending blocker)."""

    def __init__(self) -> None:
        self.in_columns: Tuple[str, ...] = ()
        self.in_width: int = 0

    def bind(self, in_columns: Sequence[str], widths: Dict[str, int]) -> None:
        self.in_columns = tuple(in_columns)
        self.in_width = _width_of(in_columns, widths)

    def start(self, context: ExecutionContext) -> None:
        """Reset per-execution state."""

    def consume(self, batch: Batch, context: ExecutionContext) -> None:
        raise NotImplementedError

    def finalize(self, context: ExecutionContext) -> Optional[Batch]:
        """Blocking barrier; returns the materialized output, if any."""
        raise NotImplementedError

    def gpl_kernels(self) -> List[KernelTemplate]:
        raise NotImplementedError

    def kbe_kernels(self) -> List[KernelTemplate]:
        raise NotImplementedError


class BuildSink(SinkOp):
    """Build a hash table; the barrier after it ends the segment."""

    def __init__(self, build_id: str, key: str, payload_columns: Sequence[str]):
        super().__init__()
        self.build_id = build_id
        self.key = key
        self.payload_columns = tuple(payload_columns)
        self._table: Optional[HashTable] = None

    def start(self, context: ExecutionContext) -> None:
        self._table = HashTable(self.key, self.payload_columns)

    def consume(self, batch: Batch, context: ExecutionContext) -> None:
        if self._table is None:
            raise ExecutionError("BuildSink.consume before start")
        self._table.insert(batch)

    def finalize(self, context: ExecutionContext) -> Optional[Batch]:
        if self._table is None:
            raise ExecutionError("BuildSink.finalize before start")
        self._table.finalize()
        context.hash_tables[self.build_id] = self._table
        return None

    @property
    def output_bytes(self) -> int:
        """The hash table is materialized in global memory in both engines."""
        return self._table.nbytes if self._table is not None else 0

    def _template(self) -> KernelTemplate:
        return KernelTemplate(
            spec=klib.hash_build_kernel(len(self.payload_columns)),
            in_width=self.in_width,
            out_width=self.in_width + 4,  # payload + bucket entry
            est_selectivity=1.0,
        )

    def gpl_kernels(self) -> List[KernelTemplate]:
        return [self._template()]

    def kbe_kernels(self) -> List[KernelTemplate]:
        return [self._template()]

    def __repr__(self) -> str:
        return f"BuildSink({self.build_id}, key={self.key})"


class PartitionedBuildSink(BuildSink):
    """Partitioned hash build: a non-blocking partition kernel feeds the
    build kernel (Section 3.2); the finished table is range-clustered so
    partition-local probes stay cache-resident."""

    def __init__(
        self,
        build_id: str,
        key: str,
        payload_columns: Sequence[str],
        num_partitions: int = 16,
    ):
        super().__init__(build_id, key, payload_columns)
        self.num_partitions = num_partitions

    def start(self, context: ExecutionContext) -> None:
        self._table = PartitionedHashTable(
            self.key, self.payload_columns, self.num_partitions
        )

    def gpl_kernels(self) -> List[KernelTemplate]:
        partition = KernelTemplate(
            spec=klib.partition_kernel(len(self.in_columns)),
            in_width=self.in_width,
            out_width=self.in_width,
            est_selectivity=1.0,
        )
        return [partition, self._template()]

    def kbe_kernels(self) -> List[KernelTemplate]:
        partitioner = PartitionOp(self.key, self.num_partitions)
        partitioner.bind(
            self.in_columns, self.in_columns,
            {name: 8 for name in self.in_columns}, 1.0,
        )
        return partitioner.kbe_kernels() + [self._template()]

    def __repr__(self) -> str:
        return (
            f"PartitionedBuildSink({self.build_id}, key={self.key}, "
            f"P={self.num_partitions})"
        )


class AggSink(SinkOp):
    """Grouped (or global) aggregation."""

    def __init__(self, group_keys: Sequence[str], aggregates: Sequence[AggSpec]):
        super().__init__()
        self.group_keys = tuple(group_keys)
        self.aggregates = tuple(aggregates)
        self._state: Optional[GroupAggState] = None

    def start(self, context: ExecutionContext) -> None:
        self._state = GroupAggState(self.group_keys, self.aggregates)

    def consume(self, batch: Batch, context: ExecutionContext) -> None:
        if self._state is None:
            raise ExecutionError("AggSink.consume before start")
        self._state.update(batch)

    def finalize(self, context: ExecutionContext) -> Optional[Batch]:
        if self._state is None:
            raise ExecutionError("AggSink.finalize before start")
        return self._state.result()

    @property
    def out_width(self) -> int:
        return 8 * (len(self.group_keys) + len(self.aggregates))

    def _agg_expressions(self) -> List[Expression]:
        return [agg.expr for agg in self.aggregates if agg.expr is not None]

    def gpl_kernels(self) -> List[KernelTemplate]:
        # Streaming accumulate (non-blocking) only: the epilogue that
        # combines partials is negligibly small and modeled inside the
        # engine's segment boundary handling.
        if self.group_keys:
            spec = klib.group_accumulate_kernel(
                self._agg_expressions(), len(self.group_keys)
            )
        else:
            spec = klib.reduce_kernel(self._agg_expressions())
        return [
            KernelTemplate(
                spec=spec,
                in_width=self.in_width,
                out_width=self.out_width,
                est_selectivity=0.0,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        # OmniDB-style: materialize per-tuple aggregate inputs, then a
        # blocking prefix scan reduces them.
        value_width = 8 * max(1, len(self.aggregates))
        return [
            KernelTemplate(
                spec=klib.map_kernel(
                    self._agg_expressions(),
                    columns_out=len(self.aggregates) + len(self.group_keys),
                    name="k_agg_map",
                ),
                in_width=self.in_width,
                out_width=value_width + 8 * len(self.group_keys),
                est_selectivity=1.0,
            ),
            KernelTemplate(
                spec=klib.aggregate_finalize_kernel(),
                in_width=value_width + 8 * len(self.group_keys),
                out_width=self.out_width,
                est_selectivity=0.0,
            ),
        ]

    def __repr__(self) -> str:
        return f"AggSink(keys={list(self.group_keys)})"


class SortSink(SinkOp):
    """Materialize and sort (always blocking, both engines).

    With ``limit`` the sink keeps only the top N rows after ordering
    (ORDER BY ... LIMIT N).
    """

    def __init__(
        self,
        keys: Sequence[str],
        descending: Sequence[bool] = (),
        limit: Optional[int] = None,
    ):
        super().__init__()
        self.keys = tuple(keys)
        self.descending = tuple(descending) + (False,) * (
            len(keys) - len(descending)
        )
        self.limit = limit
        self._parts: List[Batch] = []

    def start(self, context: ExecutionContext) -> None:
        self._parts = []

    def consume(self, batch: Batch, context: ExecutionContext) -> None:
        self._parts.append(batch)

    def finalize(self, context: ExecutionContext) -> Optional[Batch]:
        merged = {
            name: np.concatenate([part[name] for part in self._parts])
            if self._parts
            else np.empty(0)
            for name in self.in_columns
        }
        order = np.arange(batch_rows(merged))
        for key, desc in reversed(list(zip(self.keys, self.descending))):
            values = merged[key][order]
            perm = np.argsort(values, kind="stable")
            if desc:
                perm = perm[::-1]
            order = order[perm]
        if self.limit is not None:
            order = order[: self.limit]
        return {name: merged[name][order] for name in self.in_columns}

    def _rows_estimate(self) -> int:
        return max(2, sum(batch_rows(part) for part in self._parts)) or 2

    def gpl_kernels(self) -> List[KernelTemplate]:
        return [
            KernelTemplate(
                spec=klib.sort_kernel(self._rows_estimate(), len(self.in_columns)),
                in_width=self.in_width,
                out_width=self.in_width,
                est_selectivity=1.0,
            )
        ]

    def kbe_kernels(self) -> List[KernelTemplate]:
        return self.gpl_kernels()

    def __repr__(self) -> str:
        return f"SortSink({list(self.keys)})"


class CollectSink(SinkOp):
    """Materialize the stream unchanged (final output / intermediate).

    ``limit`` truncates the materialized result (LIMIT without ORDER BY).
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        super().__init__()
        self.limit = limit
        self._parts: List[Batch] = []

    def start(self, context: ExecutionContext) -> None:
        self._parts = []

    def consume(self, batch: Batch, context: ExecutionContext) -> None:
        self._parts.append(batch)

    def finalize(self, context: ExecutionContext) -> Optional[Batch]:
        merged = {
            name: np.concatenate([part[name] for part in self._parts])
            if self._parts
            else np.empty(0)
            for name in self.in_columns
        }
        if self.limit is not None:
            merged = {
                name: array[: self.limit] for name, array in merged.items()
            }
        return merged

    def gpl_kernels(self) -> List[KernelTemplate]:
        return []

    def kbe_kernels(self) -> List[KernelTemplate]:
        return []

    def __repr__(self) -> str:
        return "CollectSink()"


@dataclass
class Pipeline:
    """One segment: source -> stream ops -> blocking sink.

    ``source_table`` and ``source_intermediate`` are mutually exclusive.
    ``source_columns`` are the (possibly renamed) columns the pipeline
    reads; ``source_rename`` maps base-table column names to chain names.
    """

    pipeline_id: str
    source_table: Optional[str]
    source_intermediate: Optional[str]
    source_columns: Tuple[str, ...]
    source_rename: Dict[str, str]
    ops: List[StreamOp]
    sink: SinkOp
    source_row_width: int = 0
    est_source_rows: float = 0.0

    def __post_init__(self) -> None:
        if (self.source_table is None) == (self.source_intermediate is None):
            raise PlanError(
                "pipeline needs exactly one of source_table / "
                "source_intermediate"
            )

    @property
    def output_id(self) -> str:
        """Name under which this pipeline's output is registered."""
        return self.pipeline_id

    def describe(self) -> str:
        source = self.source_table or f"@{self.source_intermediate}"
        chain = " -> ".join(
            [f"scan({source})"]
            + [repr(op) for op in self.ops]
            + [repr(self.sink)]
        )
        return f"[{self.pipeline_id}] {chain}"


@dataclass
class PhysicalPlan:
    """The full executable plan: pipelines in dependency order."""

    name: str
    pipelines: List[Pipeline]
    output_pipeline: str
    output_columns: Tuple[str, ...] = ()
    #: Dictionaries for output columns that carry dictionary-encoded
    #: strings (code -> string), for presentation of result sets.
    output_dictionaries: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict
    )

    def describe(self) -> str:
        lines = [f"PhysicalPlan({self.name})"]
        lines.extend("  " + pipeline.describe() for pipeline in self.pipelines)
        return "\n".join(lines)

    def pipeline(self, pipeline_id: str) -> Pipeline:
        for candidate in self.pipelines:
            if candidate.pipeline_id == pipeline_id:
                return candidate
        raise PlanError(f"no pipeline {pipeline_id!r}")
