"""A naive row-at-a-time interpreter for query specs: the testing oracle.

This module evaluates a :class:`~repro.plans.logical.QuerySpec` the
slowest, most obvious way possible — Python dictionaries, one row at a
time, nested-loop joins through multimaps, no tiling, no vectorization,
no shared code with the engines' hash pipelines.  Agreement between an
engine and this interpreter is therefore strong evidence of correctness
for *arbitrary* queries, not just the workload with handwritten
references.

Intended for small scale factors (it is O(rows x joins) with Python
constant factors); the test suite uses it at scale <= 0.005.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import PlanError
from ..relational import Database, Expression
from .logical import AggSpec, QuerySpec

__all__ = ["naive_execute"]

Row = Dict[str, object]


def _scalar_eval(expression: Expression, row: Row):
    """Evaluate an expression against one row (via length-1 arrays)."""
    data = {name: np.asarray([value]) for name, value in row.items()}
    result = np.asarray(expression.evaluate(data))
    return result.reshape(-1)[0] if result.size else result.item()


def _table_rows(database: Database, spec: QuerySpec, alias: str) -> List[Row]:
    """Load one aliased table as renamed row dictionaries, filtered."""
    ref = spec.table_ref(alias)
    table = database.table(ref.table)
    names = [
        ref.rename.get(column.name, column.name)
        for column in table.schema
    ]
    arrays = [table.column(column.name) for column in table.schema]
    rows = [
        dict(zip(names, values)) for values in zip(*arrays)
    ] if arrays else []
    predicate = spec.filters.get(alias)
    if predicate is not None:
        rows = [row for row in rows if bool(_scalar_eval(predicate, row))]
    return rows


def _join_order(spec: QuerySpec) -> List[Tuple[str, str, str]]:
    """(alias, chain_key, alias_key) steps reachable from the fact table."""
    resolved = {spec.fact}
    pending = {ref.alias for ref in spec.tables} - resolved
    steps: List[Tuple[str, str, str]] = []
    while pending:
        progressed = False
        for edge in spec.join_edges:
            for alias in tuple(pending):
                if edge.touches(alias) and edge.other(alias) in resolved:
                    steps.append(
                        (
                            alias,
                            edge.key_for(edge.other(alias)),
                            edge.key_for(alias),
                        )
                    )
                    resolved.add(alias)
                    pending.discard(alias)
                    progressed = True
        if not progressed:
            raise PlanError(
                f"join graph of {spec.name} is disconnected: {pending}"
            )
    return steps


def _aggregate(
    rows: List[Row],
    group_keys: Sequence[str],
    aggregates: Sequence[AggSpec],
) -> List[Row]:
    groups: Dict[tuple, List[Row]] = defaultdict(list)
    for row in rows:
        groups[tuple(row[key] for key in group_keys)].append(row)
    if not group_keys and not groups:
        groups[()] = []

    results: List[Row] = []
    for key in sorted(groups, key=lambda k: tuple(map(float, k))):
        members = groups[key]
        out: Row = dict(zip(group_keys, key))
        for agg in aggregates:
            if agg.expr is None:
                values = [1.0] * len(members)
            else:
                values = [
                    float(_scalar_eval(agg.expr, row)) for row in members
                ]
            if agg.func in ("sum", "count"):
                out[agg.name] = float(sum(values))
            elif agg.func == "avg":
                out[agg.name] = (
                    float(sum(values)) / len(values) if values else 0.0
                )
            elif agg.func == "min":
                out[agg.name] = min(values) if values else float("inf")
            else:  # max
                out[agg.name] = max(values) if values else float("-inf")
        results.append(out)
    return results


def naive_execute(
    spec: QuerySpec, database: Database
) -> Dict[str, List]:
    """Evaluate ``spec`` naively; returns ``{column: values}``.

    Output columns follow the same convention as the engines: group keys
    (or distinct keys) first, then aggregate names, replaced by the
    post-projection names when one exists.
    """
    # 1. filtered base tables
    fact_rows = _table_rows(database, spec, spec.fact)
    steps = _join_order(spec)

    # 2. nested-loop joins via multimaps, expanding multi-matches
    current: List[Row] = fact_rows
    for alias, chain_key, alias_key in steps:
        alias_rows = _table_rows(database, spec, alias)
        index: Dict[object, List[Row]] = defaultdict(list)
        for row in alias_rows:
            index[row[alias_key]].append(row)
        joined: List[Row] = []
        for row in current:
            for match in index.get(row[chain_key], ()):
                merged = dict(row)
                merged.update(match)
                joined.append(merged)
        current = joined

    # 3. residual filters
    for predicate in spec.residual_filters:
        current = [
            row for row in current if bool(_scalar_eval(predicate, row))
        ]

    # 4. derived columns
    for name, expression in spec.derived:
        for row in current:
            row[name] = _scalar_eval(expression, row)

    # 5. aggregation / distinct
    if spec.aggregates:
        current = _aggregate(current, spec.group_keys, spec.aggregates)
        columns = list(spec.group_keys) + [a.name for a in spec.aggregates]
    elif spec.distinct:
        seen = {}
        for row in current:
            key = tuple(row[name] for name in spec.distinct)
            seen.setdefault(key, dict(zip(spec.distinct, key)))
        current = list(seen.values())
        columns = list(spec.distinct)
    else:
        columns = sorted(current[0]) if current else []

    # 6. post-projection
    if spec.post_projection:
        for row in current:
            for name, expression in spec.post_projection:
                row[name] = _scalar_eval(expression, row)
        if spec.aggregates:
            columns = list(spec.group_keys) + [
                name for name, _ in spec.post_projection
            ]

    # 7. order by / limit
    if spec.order_by:
        descending = tuple(spec.order_desc) + (False,) * (
            len(spec.order_by) - len(spec.order_desc)
        )
        for key, desc in reversed(list(zip(spec.order_by, descending))):
            current.sort(key=lambda row: row[key], reverse=desc)
    if spec.limit is not None:
        current = current[: spec.limit]

    return {
        name: [row[name] for row in current] for name in columns
    }
