"""The kernel library: program-analysis metadata for every GPU primitive.

GPL reuses and modifies the kernels of OmniDB (paper Section 3.2); this
module is the reproduction's equivalent of that primitive code base.  Each
factory returns a :class:`~repro.gpu.kernel.KernelSpec` whose per-tuple
instruction counts and per-work-item memory footprints stand in for the
off-line program analysis the paper performs with AMD's profiler tools.

Instruction counts are parameterized by the expressions a kernel evaluates
and the columns it moves, so a selection with a complex predicate really
is more compute-heavy than one with a single comparison — which is what
gives different kernels the different compute/memory mixes that concurrent
execution exploits (Fig 5 vs Fig 19).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..gpu.kernel import KernelSpec
from ..relational import Expression

__all__ = [
    "map_kernel",
    "flag_map_kernel",
    "prefix_sum_kernel",
    "scatter_kernel",
    "partition_kernel",
    "histogram_kernel",
    "hash_build_kernel",
    "probe_kernel",
    "probe_count_kernel",
    "probe_scatter_kernel",
    "reduce_kernel",
    "group_accumulate_kernel",
    "aggregate_finalize_kernel",
    "sort_kernel",
]

#: Baseline per-tuple overhead of any kernel: index arithmetic, bounds
#: check, loop control.
_BASE_COMPUTE = 20.0
#: Hashing one 4-byte key (multiply-shift plus table indexing).
_HASH_COMPUTE = 36.0


def _expr_compute(expressions: Sequence[Expression]) -> float:
    return float(sum(expr.instruction_count() for expr in expressions))


def _expr_reads(expressions: Sequence[Expression]) -> float:
    columns = set()
    for expr in expressions:
        columns |= expr.columns()
    return float(len(columns))


def map_kernel(
    expressions: Sequence[Expression],
    columns_out: int,
    name: str = "k_map",
) -> KernelSpec:
    """Evaluate expressions over each tuple, emitting ``columns_out`` values.

    In GPL this is the whole selection/projection operator (the satisfied
    tuples go straight to the channel); in KBE the emitted values land in
    global memory.
    """
    return KernelSpec(
        name=name,
        compute_instr=_BASE_COMPUTE + _expr_compute(expressions),
        memory_instr=_expr_reads(expressions) + float(columns_out),
        pm_per_workitem=32,
        lm_per_workitem=0,
    )


def flag_map_kernel(expressions: Sequence[Expression]) -> KernelSpec:
    """KBE selection phase 1: evaluate the predicate, write a 0/1 flag."""
    return KernelSpec(
        name="k_map",
        compute_instr=_BASE_COMPUTE + _expr_compute(expressions),
        memory_instr=_expr_reads(expressions) + 1.0,  # flag write
        pm_per_workitem=32,
        lm_per_workitem=0,
    )


def prefix_sum_kernel() -> KernelSpec:
    """KBE selection phase 2: exclusive prefix sum over the flags.

    Blocking: no output position is known before every flag is seen.
    The work-group-local scan tree uses local memory.
    """
    return KernelSpec(
        name="k_prefix_sum",
        compute_instr=26.0,
        memory_instr=2.0,
        pm_per_workitem=16,
        lm_per_workitem=8,
        blocking=True,
    )


def scatter_kernel(columns: int) -> KernelSpec:
    """KBE selection phase 3: gather satisfied tuples to their offsets."""
    return KernelSpec(
        name="k_scatter",
        compute_instr=_BASE_COMPUTE,
        memory_instr=2.0 + 2.0 * columns,  # flag+offset, read+write columns
        pm_per_workitem=24,
        lm_per_workitem=0,
    )


def partition_kernel(columns: int) -> KernelSpec:
    """Route tuples to radix partitions (non-blocking, Section 3.2).

    In GPL the partition kernel hashes each key and forwards the tuple to
    its partition's channel lane; no global materialization is needed.
    """
    return KernelSpec(
        name="k_partition",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE,
        memory_instr=1.0 + columns,  # key read + tuple forward
        pm_per_workitem=32,
        lm_per_workitem=16,
    )


def histogram_kernel() -> KernelSpec:
    """KBE partition phase 1: per-partition counts (blocking follows)."""
    return KernelSpec(
        name="k_histogram",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE,
        memory_instr=2.0,  # key read + counter bump
        pm_per_workitem=32,
        lm_per_workitem=32,
    )


def hash_build_kernel(payload_columns: int) -> KernelSpec:
    """Insert (key, payload) pairs into a hash table in global memory.

    Non-blocking per work-group, but a barrier is required after the last
    insert before any probe may run (paper Section 3.2) — the physical
    layer marks the *operator* as segment-ending, not the kernel.
    """
    return KernelSpec(
        name="k_hash_build",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE + 2.0,
        memory_instr=2.0 + payload_columns,  # key read, bucket CAS, payload
        pm_per_workitem=32,
        lm_per_workitem=16,
    )


def probe_kernel(payload_columns: int) -> KernelSpec:
    """GPL hash probe: look up each tuple, emit matches downstream."""
    return KernelSpec(
        name="k_probe",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE + 4.0,
        memory_instr=1.0 + payload_columns,  # key read + payload gather
        pm_per_workitem=40,
        lm_per_workitem=8,
    )


def probe_count_kernel() -> KernelSpec:
    """KBE probe phase 1: count matches per tuple."""
    return KernelSpec(
        name="k_probe_count",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE + 2.0,
        memory_instr=2.0,  # key read + count write
        pm_per_workitem=40,
        lm_per_workitem=8,
    )


def probe_scatter_kernel(columns_out: int) -> KernelSpec:
    """KBE probe phase 3: re-probe and write matches at their offsets."""
    return KernelSpec(
        name="k_probe_scatter",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE + 4.0,
        memory_instr=2.0 + columns_out,
        pm_per_workitem=40,
        lm_per_workitem=8,
    )


def reduce_kernel(expressions: Sequence[Expression]) -> KernelSpec:
    """GPL streaming aggregation (``k_reduce*``): fold each packet into
    work-group-local partial aggregates (paper Section 3.2)."""
    return KernelSpec(
        name="k_reduce*",
        compute_instr=_BASE_COMPUTE + _expr_compute(expressions) + 2.0,
        memory_instr=0.5,  # partial results live in local memory
        pm_per_workitem=24,
        lm_per_workitem=16,
    )


def group_accumulate_kernel(
    expressions: Sequence[Expression], num_keys: int
) -> KernelSpec:
    """Hash-grouping accumulate: atomically fold into per-group slots."""
    return KernelSpec(
        name="k_group_accum",
        compute_instr=_BASE_COMPUTE + _HASH_COMPUTE + _expr_compute(expressions),
        memory_instr=1.0 + num_keys + 2.0,  # keys, slot read-modify-write
        pm_per_workitem=48,
        lm_per_workitem=32,
    )


def aggregate_finalize_kernel() -> KernelSpec:
    """Blocking epilogue: combine partial aggregates into final values.

    In KBE this is the prefix-scan-based reduction over per-tuple values
    (OmniDB's approach); the same spec models both because the dominant
    cost difference lives in what precedes it.
    """
    return KernelSpec(
        name="k_prefix_scan",
        compute_instr=26.0,
        memory_instr=2.0,
        pm_per_workitem=16,
        lm_per_workitem=16,
        blocking=True,
    )


def sort_kernel(num_tuples: int, columns: int) -> KernelSpec:
    """Bitonic sort: per-tuple cost grows with log^2 of the input size."""
    passes = max(1.0, math.log2(max(2, num_tuples)))
    stages = passes * (passes + 1) / 2.0
    return KernelSpec(
        name="k_sort",
        compute_instr=8.0 * stages,
        memory_instr=0.5 * stages * columns,
        pm_per_workitem=32,
        lm_per_workitem=64,
        blocking=True,
    )
