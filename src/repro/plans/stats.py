"""Cardinality and selectivity estimation.

The estimator serves two consumers with the same arithmetic:

* the Selinger-style join-order optimizer, which compares candidate probe
  chains by estimated intermediate cardinalities;
* the analytical cost model, whose per-kernel data-reduction ratios
  ``lambda_Ki`` (paper Table 2, "query optimizer" inputs) come from these
  estimates.

Estimates use the textbook uniformity assumptions: range predicates from
min/max, equality from distinct counts, conjunctions multiply,
disjunctions use inclusion–exclusion, and equi-joins divide by the larger
key-distinct count.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..relational import (
    And,
    CaseWhen,
    Col,
    Compare,
    Database,
    Expression,
    InList,
    Lit,
    Not,
    Or,
)

__all__ = ["StatisticsEstimator", "DEFAULT_SELECTIVITY"]

#: Fallback when a predicate's shape is not recognized (System R's 1/3).
DEFAULT_SELECTIVITY = 1.0 / 3.0


class StatisticsEstimator:
    """Estimates selectivities/cardinalities against a database's stats.

    ``column_origin`` maps post-rename column names back to
    ``(table, original_column)`` so aliased tables resolve correctly.
    """

    def __init__(
        self,
        database: Database,
        column_origin: Optional[Mapping[str, tuple]] = None,
    ):
        self._database = database
        self._origin = dict(column_origin or {})

    def register_columns(self, table: str, schema, rename: Mapping[str, str]) -> None:
        """Record that ``schema``'s columns (post-rename) come from ``table``."""
        for column in schema:
            new_name = rename.get(column.name, column.name)
            self._origin[new_name] = (table, column.name)

    def _column_stats(self, name: str):
        origin = self._origin.get(name)
        if origin is None:
            return None
        table, column = origin
        if table not in self._database:
            return None
        return self._database.stats(table, column)

    # -- selectivity -----------------------------------------------------

    def selectivity(self, predicate: Expression) -> float:
        """Estimated fraction of rows satisfying ``predicate``."""
        if isinstance(predicate, And):
            interval = self._interval_selectivity(predicate)
            if interval is not None:
                return interval
            return self.selectivity(predicate.left) * self.selectivity(
                predicate.right
            )
        if isinstance(predicate, Or):
            left = self.selectivity(predicate.left)
            right = self.selectivity(predicate.right)
            return min(1.0, left + right - left * right)
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.operand)
        if isinstance(predicate, Compare):
            return self._compare_selectivity(predicate)
        if isinstance(predicate, InList):
            return self._inlist_selectivity(predicate)
        return DEFAULT_SELECTIVITY

    def _interval_selectivity(self, predicate: And) -> Optional[float]:
        """Recognize ``lo <= col AND col < hi`` and estimate the interval.

        The independence assumption grossly overestimates range pairs on
        the same column (0.5 x 0.5 instead of the interval width), which
        would mislead both the optimizer and the cost model's lambda.
        """
        if not (
            isinstance(predicate.left, Compare)
            and isinstance(predicate.right, Compare)
        ):
            return None
        bounds = {}
        column_name = None
        for part in (predicate.left, predicate.right):
            name, literal, op = self._normalize_compare(part)
            if name is None:
                return None
            if column_name is None:
                column_name = name
            elif column_name != name:
                return None
            if op in (">", ">="):
                bounds["low"] = literal
            elif op in ("<", "<="):
                bounds["high"] = literal
            else:
                return None
        if set(bounds) != {"low", "high"}:
            return None
        stats = self._column_stats(column_name)
        if stats is None:
            return None
        return stats.range_selectivity(bounds["low"], bounds["high"])

    def _compare_selectivity(self, predicate: Compare) -> float:
        if isinstance(predicate.left, Col) and isinstance(predicate.right, Col):
            # column = column (residual join predicates): 1 / max distinct
            left_stats = self._column_stats(predicate.left.name)
            right_stats = self._column_stats(predicate.right.name)
            distinct = max(
                left_stats.distinct if left_stats else 0,
                right_stats.distinct if right_stats else 0,
                1,
            )
            if predicate.op == "==":
                return 1.0 / distinct
            if predicate.op == "!=":
                return 1.0 - 1.0 / distinct
            return DEFAULT_SELECTIVITY
        column, literal, op = self._normalize_compare(predicate)
        if column is None:
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(column)
        if stats is None:
            return DEFAULT_SELECTIVITY
        if op == "==":
            return stats.equality_selectivity()
        if op == "!=":
            return 1.0 - stats.equality_selectivity()
        if op in ("<", "<="):
            return stats.range_selectivity(None, literal)
        if op in (">", ">="):
            return stats.range_selectivity(literal, None)
        return DEFAULT_SELECTIVITY

    @staticmethod
    def _normalize_compare(predicate: Compare):
        """Rewrite to (column, literal, op) with the column on the left."""
        flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
        left, right, op = predicate.left, predicate.right, predicate.op
        if isinstance(left, Lit) and isinstance(right, Col):
            left, right, op = right, left, flip[op]
        if isinstance(left, Col) and isinstance(right, Lit):
            return left.name, float(right.value), op
        return None, None, op

    def _inlist_selectivity(self, predicate: InList) -> float:
        if not isinstance(predicate.operand, Col):
            return DEFAULT_SELECTIVITY
        stats = self._column_stats(predicate.operand.name)
        if stats is None or stats.distinct == 0:
            return DEFAULT_SELECTIVITY
        return min(1.0, len(predicate.values) / stats.distinct)

    # -- joins -----------------------------------------------------------

    def join_cardinality(
        self,
        left_rows: float,
        right_rows: float,
        left_key: str,
        right_key: str,
    ) -> float:
        """Estimated output rows of an equi-join (textbook formula)."""
        left_stats = self._column_stats(left_key)
        right_stats = self._column_stats(right_key)
        distinct = 1.0
        if left_stats is not None:
            distinct = max(distinct, float(left_stats.distinct))
        if right_stats is not None:
            distinct = max(distinct, float(right_stats.distinct))
        return left_rows * right_rows / distinct

    def group_cardinality(self, input_rows: float, group_keys) -> float:
        """Estimated group count: capped product of key distinct counts."""
        if not group_keys:
            return 1.0
        product = 1.0
        for key in group_keys:
            stats = self._column_stats(key)
            product *= float(stats.distinct) if stats else 100.0
        return min(input_rows, product)
