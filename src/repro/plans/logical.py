"""Logical query representation.

Two levels live here:

* :class:`QuerySpec` — the declarative form of a query: aliased tables with
  local filters, an equi-join graph, derived columns, grouping/aggregation,
  a post-aggregation projection, and an ordering.  The five TPC-H queries
  of the paper are expressed as specs (:mod:`repro.tpch.queries`).

* the logical plan tree (:class:`Scan`, :class:`Select`, :class:`Join`, …)
  that the Selinger-style optimizer produces from a spec.  The tree is the
  paper's ``T``; traversing it post-order yields the operator sequence
  ``O`` that physical lowering turns into kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import PlanError
from ..relational import Expression, TableSchema

__all__ = [
    "AggSpec",
    "JoinEdge",
    "TableRef",
    "QuerySpec",
    "LogicalPlan",
    "Scan",
    "Select",
    "Project",
    "Join",
    "GroupAggregate",
    "OrderBy",
]

AGG_FUNCS = ("sum", "count", "avg", "min", "max")


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``func(expr) AS name``."""

    name: str
    func: str
    expr: Optional[Expression] = None  # None only for count(*)

    def __post_init__(self) -> None:
        if self.func not in AGG_FUNCS:
            raise PlanError(f"unknown aggregate function {self.func!r}")
        if self.expr is None and self.func != "count":
            raise PlanError(f"aggregate {self.func!r} requires an expression")


@dataclass(frozen=True)
class JoinEdge:
    """Equi-join predicate ``left_alias.left_col = right_alias.right_col``.

    Column names are post-rename names (see :class:`TableRef`).
    """

    left_alias: str
    left_col: str
    right_alias: str
    right_col: str

    def touches(self, alias: str) -> bool:
        return alias in (self.left_alias, self.right_alias)

    def other(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.right_alias
        if alias == self.right_alias:
            return self.left_alias
        raise PlanError(f"edge does not touch alias {alias!r}")

    def key_for(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.left_col
        if alias == self.right_alias:
            return self.right_col
        raise PlanError(f"edge does not touch alias {alias!r}")


@dataclass(frozen=True)
class TableRef:
    """An aliased base table, with optional column renames.

    Renames let a table appear twice in a query (Q7/Q8 join ``nation``
    as ``n1`` and ``n2``) without column-name collisions.
    """

    table: str
    alias: str
    rename: Mapping[str, str] = field(default_factory=dict)

    def renamed_schema(self, schema: TableSchema) -> TableSchema:
        return schema.rename(dict(self.rename))


@dataclass(frozen=True)
class QuerySpec:
    """Declarative query description consumed by the optimizer.

    ``residual_filters`` are predicates spanning multiple tables that are
    not equi-joins (Q5's ``c_nationkey = s_nationkey`` pattern and Q7's
    cross-nation disjunction); they are applied as soon as all referenced
    columns are available in the probe chain.
    """

    name: str
    tables: Tuple[TableRef, ...]
    join_edges: Tuple[JoinEdge, ...]
    fact: str  # alias of the chain-driving (largest / streamed) table
    filters: Mapping[str, Expression] = field(default_factory=dict)
    residual_filters: Tuple[Expression, ...] = ()
    derived: Tuple[Tuple[str, Expression], ...] = ()
    group_keys: Tuple[str, ...] = ()
    aggregates: Tuple[AggSpec, ...] = ()
    post_projection: Tuple[Tuple[str, Expression], ...] = ()
    order_by: Tuple[str, ...] = ()
    order_desc: Tuple[bool, ...] = ()
    #: SELECT DISTINCT over these columns (mutually exclusive with
    #: aggregates; lowers to a keys-only hash aggregation).
    distinct: Tuple[str, ...] = ()
    #: Keep only the first N result rows (after ordering).
    limit: Optional[int] = None
    #: Cooperative-cancellation deadline in simulated device cycles,
    #: cumulative across resilient retries; ``None`` means no deadline.
    #: Deliberately excluded from :func:`~repro.plans.optimizer
    #: .spec_fingerprint` — the plan shape does not depend on it, so
    #: queries with different deadlines still share plan-cache entries.
    deadline_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        aliases = [ref.alias for ref in self.tables]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate table aliases in {self.name}")
        if self.fact not in aliases:
            raise PlanError(f"fact alias {self.fact!r} not among tables")
        for edge in self.join_edges:
            for alias in (edge.left_alias, edge.right_alias):
                if alias not in aliases:
                    raise PlanError(f"join edge references unknown {alias!r}")
        for alias in self.filters:
            if alias not in aliases:
                raise PlanError(f"filter references unknown alias {alias!r}")
        if self.distinct and self.aggregates:
            raise PlanError(
                "DISTINCT and aggregates are mutually exclusive; use "
                "group_keys for grouped aggregation"
            )
        if self.limit is not None and self.limit < 1:
            raise PlanError("limit must be a positive row count")
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise PlanError("deadline_cycles must be positive when set")

    def table_ref(self, alias: str) -> TableRef:
        for ref in self.tables:
            if ref.alias == alias:
                return ref
        raise PlanError(f"no table aliased {alias!r}")

    @property
    def num_joins(self) -> int:
        return len(self.join_edges)


# ---------------------------------------------------------------------------
# logical plan tree
# ---------------------------------------------------------------------------


class LogicalPlan:
    """Base class of logical plan nodes."""

    def children(self) -> Sequence["LogicalPlan"]:
        raise NotImplementedError

    def post_order(self) -> List["LogicalPlan"]:
        """Operators with every child before its parent (the paper's O)."""
        nodes: List[LogicalPlan] = []

        def visit(node: LogicalPlan) -> None:
            for child in node.children():
                visit(child)
            nodes.append(node)

        visit(self)
        return nodes

    def describe(self, indent: int = 0) -> str:
        """Human-readable plan tree."""
        line = " " * indent + self._label()
        parts = [line]
        for child in self.children():
            parts.append(child.describe(indent + 2))
        return "\n".join(parts)

    def _label(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Leaf: scan one aliased base table."""

    ref: TableRef

    def children(self) -> Sequence[LogicalPlan]:
        return ()

    def _label(self) -> str:
        if self.ref.alias != self.ref.table:
            return f"Scan({self.ref.table} AS {self.ref.alias})"
        return f"Scan({self.ref.table})"


@dataclass(frozen=True)
class Select(LogicalPlan):
    """Filter rows by a predicate."""

    child: LogicalPlan
    predicate: Expression

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def _label(self) -> str:
        return f"Select({self.predicate!r})"


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Compute named output expressions (also used for derived columns)."""

    child: LogicalPlan
    outputs: Tuple[Tuple[str, Expression], ...]
    keep_input: bool = False  # append outputs instead of replacing columns

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def _label(self) -> str:
        names = ", ".join(name for name, _ in self.outputs)
        return f"Project({names})"


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Hash equi-join; ``right`` is the build side (a dimension table)."""

    left: LogicalPlan
    right: LogicalPlan
    left_key: str
    right_key: str

    def children(self) -> Sequence[LogicalPlan]:
        return (self.left, self.right)

    def _label(self) -> str:
        return f"Join({self.left_key} = {self.right_key})"


@dataclass(frozen=True)
class GroupAggregate(LogicalPlan):
    """Hash aggregation with optional grouping keys."""

    child: LogicalPlan
    group_keys: Tuple[str, ...]
    aggregates: Tuple[AggSpec, ...]

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def _label(self) -> str:
        keys = ", ".join(self.group_keys) or "<global>"
        aggs = ", ".join(f"{a.func}->{a.name}" for a in self.aggregates)
        return f"GroupAggregate(keys=[{keys}], aggs=[{aggs}])"


@dataclass(frozen=True)
class OrderBy(LogicalPlan):
    """Sort the (usually small) final result."""

    child: LogicalPlan
    keys: Tuple[str, ...]
    descending: Tuple[bool, ...] = ()

    def children(self) -> Sequence[LogicalPlan]:
        return (self.child,)

    def _label(self) -> str:
        return f"OrderBy({', '.join(self.keys)})"
