"""Lowering: logical plan tree -> physical pipelines.

The optimizer's left-deep tree becomes:

* one *build pipeline* per dimension table (scan -> optional filter ->
  hash build), in probe order;
* the *main pipeline* streaming the fact table through its filter, the
  probe chain, residual filters, derived-column computation, and the
  aggregation sink;
* small *epilogue pipelines* for post-aggregation projection and ordering.

Lowering also performs column pruning (live columns are tracked backward
through the chain, so intermediate tuple widths are minimal — these widths
drive all of the simulator's byte accounting) and attaches per-operator
selectivity estimates from the statistics module.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..errors import PlanError
from ..obs.tracing import maybe_span
from ..relational import Database, Expression
from .logical import (
    GroupAggregate,
    Join,
    LogicalPlan,
    OrderBy,
    Project,
    QuerySpec,
    Scan,
    Select,
)
from .optimizer import OptimizedQuery, spec_fingerprint
from .physical import (
    AggSink,
    BuildSink,
    CollectSink,
    ComputeOp,
    FilterOp,
    PartitionOp,
    PartitionedBuildSink,
    PhysicalPlan,
    Pipeline,
    ProbeOp,
    SortSink,
    StreamOp,
)

__all__ = ["lower", "plan_cache_key", "PARTITION_THRESHOLD_ROWS"]

#: Hash tables expected to stay this small probe fine unpartitioned.
PARTITION_THRESHOLD_ROWS = 50_000


def plan_cache_key(
    spec: QuerySpec,
    database: Database,
    device_name: str,
    partitioned_joins: bool = False,
    num_partitions: int = 16,
    adaptive_fact: bool = False,
) -> str:
    """Cache key for a lowered physical plan.

    A plan is reusable exactly when every input to optimization and
    lowering is unchanged: the query's declarative shape
    (:func:`~repro.plans.optimizer.spec_fingerprint`), the database's
    contents (table names, row counts, and byte sizes stand in for the
    statistics the optimizer reads), the target device, and the
    engine-level plan knobs.  Changing any component — a different scale
    factor, a different device, toggling partitioned joins — produces a
    different key, which is how the plan cache invalidates.
    """
    tables = tuple(
        (name, database.num_rows(name), database.table(name).nbytes)
        for name in database.names
    )
    return "/".join(
        (
            spec_fingerprint(spec),
            hashlib.sha1(repr(tables).encode()).hexdigest(),
            device_name,
            f"pj={int(partitioned_joins)}",
            f"np={num_partitions}",
            f"af={int(adaptive_fact)}",
        )
    )


def _column_widths(optimized: OptimizedQuery, database: Database) -> Dict[str, int]:
    """Byte width of every column that can appear in the chain."""
    widths: Dict[str, int] = {}
    for ref in optimized.spec.tables:
        schema = database.table(ref.table).schema
        renamed = ref.renamed_schema(schema)
        for column in renamed:
            widths[column.name] = column.dtype.width
    for name, _ in optimized.spec.derived:
        widths.setdefault(name, 8)
    for name, _ in optimized.spec.post_projection:
        widths.setdefault(name, 8)
    for agg in optimized.spec.aggregates:
        widths.setdefault(agg.name, 8)
    return widths


class _ChainElement:
    """One step of the main chain, pre-binding."""

    def __init__(self, kind: str, payload) -> None:
        self.kind = kind  # "filter" | "compute" | "join"
        self.payload = payload


def _peel_epilogue(plan: LogicalPlan):
    """Strip OrderBy / post-Project / GroupAggregate off the root."""
    order_by: Optional[OrderBy] = None
    post_projection: Optional[Project] = None
    aggregate: Optional[GroupAggregate] = None

    node = plan
    if isinstance(node, OrderBy):
        order_by = node
        node = node.child
    if isinstance(node, Project) and isinstance(node.child, GroupAggregate):
        post_projection = node
        node = node.child
    if isinstance(node, GroupAggregate):
        aggregate = node
        node = node.child
    return node, aggregate, post_projection, order_by


def _collect_chain(node: LogicalPlan):
    """Walk the left spine into execution-ordered chain elements."""
    elements: List[_ChainElement] = []
    while True:
        if isinstance(node, Select):
            elements.append(_ChainElement("filter", node.predicate))
            node = node.child
        elif isinstance(node, Project):
            elements.append(_ChainElement("compute", node.outputs))
            node = node.child
        elif isinstance(node, Join):
            elements.append(_ChainElement("join", node))
            node = node.left
        elif isinstance(node, Scan):
            elements.reverse()
            return node.ref, elements
        else:
            raise PlanError(
                f"unexpected node {type(node).__name__} in probe chain"
            )


def _dimension_parts(node: LogicalPlan):
    """Decompose a build-side subplan (Scan + optional Select)."""
    predicate: Optional[Expression] = None
    if isinstance(node, Select):
        predicate = node.predicate
        node = node.child
    if not isinstance(node, Scan):
        raise PlanError(
            "build side must be a base table (optionally filtered); "
            f"got {type(node).__name__} — bushy plans are not supported"
        )
    return node.ref, predicate


def lower(
    optimized: OptimizedQuery,
    database: Database,
    partitioned_joins: bool = False,
    num_partitions: int = 16,
    partition_threshold_rows: int = PARTITION_THRESHOLD_ROWS,
) -> PhysicalPlan:
    """Lower an optimized query to a :class:`PhysicalPlan`.

    With ``partitioned_joins``, joins whose build side is expected to
    exceed ``partition_threshold_rows`` use the partitioned hash join of
    Section 3.2: a non-blocking partition kernel on both sides, a
    partitioned table, and partition-local (cache-resident) probes.
    """
    with maybe_span(
        "plan.lower",
        category="plan",
        query=optimized.spec.name,
        partitioned_joins=partitioned_joins,
    ):
        return _lower(
            optimized,
            database,
            partitioned_joins,
            num_partitions,
            partition_threshold_rows,
        )


def _lower(
    optimized: OptimizedQuery,
    database: Database,
    partitioned_joins: bool,
    num_partitions: int,
    partition_threshold_rows: int,
) -> PhysicalPlan:
    spec = optimized.spec
    widths = _column_widths(optimized, database)
    estimator = optimized.estimator

    chain_root, aggregate, post_projection, order_by = _peel_epilogue(
        optimized.plan
    )
    fact_ref, elements = _collect_chain(chain_root)

    # ---- backward pass: live columns ---------------------------------
    if aggregate is not None:
        needed: Set[str] = set(aggregate.group_keys)
        for agg in aggregate.aggregates:
            if agg.expr is not None:
                needed |= agg.expr.columns()
    else:
        needed = set(widths)  # no aggregation: keep whatever flows

    need_after: List[Set[str]] = [set() for _ in elements]
    need_before: List[Set[str]] = [set() for _ in elements]
    current = set(needed)
    for index in range(len(elements) - 1, -1, -1):
        element = elements[index]
        need_after[index] = set(current)
        if element.kind == "filter":
            current = current | element.payload.columns()
        elif element.kind == "compute":
            out_names = {name for name, _ in element.payload}
            exprs_cols: Set[str] = set()
            for _, expr in element.payload:
                exprs_cols |= expr.columns()
            current = (current - out_names) | exprs_cols
        else:  # join
            join: Join = element.payload
            build_ref, _ = _dimension_parts(join.right)
            build_schema = build_ref.renamed_schema(
                database.table(build_ref.table).schema
            )
            build_cols = set(build_schema.names)
            current = (current - build_cols) | {join.left_key}
        need_before[index] = set(current)

    fact_schema = fact_ref.renamed_schema(database.table(fact_ref.table).schema)
    fact_columns = [name for name in fact_schema.names if name in current]
    missing = current - set(fact_schema.names)
    if missing:
        raise PlanError(
            f"chain start requires columns not in fact table: {sorted(missing)}"
        )

    # ---- forward pass: build pipelines and bind ops -------------------
    pipelines: List[Pipeline] = []
    chain_ops: List[StreamOp] = []
    chain_rows = float(database.num_rows(fact_ref.table))
    build_count = 0

    live = list(fact_columns)  # ordered live columns

    def ordered(names: Set[str], reference: Sequence[str]) -> List[str]:
        return [name for name in reference if name in names]

    for index, element in enumerate(elements):
        out_set = need_after[index]
        if element.kind == "filter":
            op = FilterOp(element.payload)
            sel = estimator.selectivity(element.payload)
            out_cols = ordered(out_set, live)
            op.bind(list(live), out_cols, widths, sel)
            chain_ops.append(op)
            chain_rows *= sel
            live = out_cols
        elif element.kind == "compute":
            out_names = [name for name, _ in element.payload]
            out_cols = ordered(out_set, list(live) + out_names)
            op = ComputeOp(element.payload)
            op.bind(list(live), out_cols, widths, 1.0)
            chain_ops.append(op)
            live = out_cols
        else:
            join: Join = element.payload
            build_ref, build_pred = _dimension_parts(join.right)
            build_schema = build_ref.renamed_schema(
                database.table(build_ref.table).schema
            )
            payload_cols = ordered(
                out_set & set(build_schema.names), build_schema.names
            )
            build_id = f"ht_{build_count}_{build_ref.alias}"
            build_count += 1

            build_rows = float(database.num_rows(build_ref.table))
            build_source_cols = list(
                dict.fromkeys([join.right_key] + payload_cols)
            )
            if build_pred is not None:
                build_source_cols = list(
                    dict.fromkeys(
                        build_source_cols + sorted(build_pred.columns())
                    )
                )
            build_ops: List[StreamOp] = []
            if build_pred is not None:
                op = FilterOp(build_pred)
                sel = estimator.selectivity(build_pred)
                filtered = list(
                    dict.fromkeys([join.right_key] + payload_cols)
                )
                op.bind(build_source_cols, filtered, widths, sel)
                build_ops.append(op)
                build_rows *= sel
            use_partitioned = (
                partitioned_joins and build_rows > partition_threshold_rows
            )
            if use_partitioned:
                sink: BuildSink = PartitionedBuildSink(
                    build_id, join.right_key, payload_cols, num_partitions
                )
            else:
                sink = BuildSink(build_id, join.right_key, payload_cols)
            sink.bind(
                build_ops[-1].out_columns if build_ops else build_source_cols,
                widths,
            )
            pipelines.append(
                Pipeline(
                    pipeline_id=build_id,
                    source_table=build_ref.table,
                    source_intermediate=None,
                    source_columns=tuple(build_source_cols),
                    source_rename=dict(build_ref.rename),
                    ops=build_ops,
                    sink=sink,
                    source_row_width=sum(
                        widths.get(c, 8) for c in build_source_cols
                    ),
                    est_source_rows=float(database.num_rows(build_ref.table)),
                )
            )

            new_rows = estimator.join_cardinality(
                chain_rows, max(build_rows, 1.0), join.left_key, join.right_key
            )
            probe_sel = new_rows / chain_rows if chain_rows > 0 else 0.0
            out_cols = ordered(out_set, list(live) + list(build_schema.names))
            if use_partitioned:
                # Cluster the probe stream so each work-group touches one
                # hash-table partition at a time.
                clusterer = PartitionOp(join.left_key, num_partitions)
                clusterer.bind(list(live), list(live), widths, 1.0)
                chain_ops.append(clusterer)
            op = ProbeOp(
                build_id,
                join.left_key,
                payload_cols,
                partitioned=use_partitioned,
                num_partitions=num_partitions,
            )
            op.bind(list(live), out_cols, widths, probe_sel)
            chain_ops.append(op)
            chain_rows = max(new_rows, 1.0)
            live = out_cols

    # ---- main pipeline sink -------------------------------------------
    if aggregate is not None:
        main_sink: "SinkOp" = AggSink(aggregate.group_keys, aggregate.aggregates)
    else:
        main_sink = CollectSink()
    main_sink.bind(list(live), widths)
    main_id = "main"
    pipelines.append(
        Pipeline(
            pipeline_id=main_id,
            source_table=fact_ref.table,
            source_intermediate=None,
            source_columns=tuple(fact_columns),
            source_rename=dict(fact_ref.rename),
            ops=chain_ops,
            sink=main_sink,
            source_row_width=sum(widths.get(c, 8) for c in fact_columns),
            est_source_rows=float(database.num_rows(fact_ref.table)),
        )
    )

    # ---- epilogue pipelines -------------------------------------------
    output_id = main_id
    output_columns: List[str] = list(live)
    if aggregate is not None:
        output_columns = list(aggregate.group_keys) + [
            agg.name for agg in aggregate.aggregates
        ]

    if (
        post_projection is not None
        or order_by is not None
        or spec.limit is not None
    ):
        epilogue_ops: List[StreamOp] = []
        current_cols = list(output_columns)
        if post_projection is not None:
            out_names = [name for name, _ in post_projection.outputs]
            out_cols = list(dict.fromkeys(current_cols + out_names))
            op = ComputeOp(post_projection.outputs)
            op.bind(current_cols, out_cols, widths, 1.0)
            epilogue_ops.append(op)
            current_cols = out_cols
        if order_by is not None:
            sink: "SinkOp" = SortSink(
                order_by.keys, order_by.descending, limit=spec.limit
            )
        else:
            sink = CollectSink(limit=spec.limit)
        sink.bind(current_cols, widths)
        epilogue_id = "epilogue"
        pipelines.append(
            Pipeline(
                pipeline_id=epilogue_id,
                source_table=None,
                source_intermediate=output_id,
                source_columns=tuple(output_columns),
                source_rename={},
                ops=epilogue_ops,
                sink=sink,
                source_row_width=sum(
                    widths.get(c, 8) for c in output_columns
                ),
                est_source_rows=estimator.group_cardinality(
                    chain_rows,
                    aggregate.group_keys if aggregate is not None else (),
                ),
            )
        )
        output_id = epilogue_id
        output_columns = current_cols

    # The user-visible result: group keys plus post-projection outputs if
    # one exists (Q14's promo_revenue, Q8's mkt_share), else keys + aggs.
    if aggregate is not None:
        if post_projection is not None:
            output_columns = list(aggregate.group_keys) + [
                name for name, _ in post_projection.outputs
            ]
        else:
            output_columns = list(aggregate.group_keys) + [
                agg.name for agg in aggregate.aggregates
            ]

    # Dictionary-encoded output columns keep their decode tables for
    # presentation (e.g. Q5's n_name codes back to nation names).
    dictionaries = {}
    for ref in spec.tables:
        schema = ref.renamed_schema(database.table(ref.table).schema)
        for column in schema:
            if column.dictionary is not None:
                dictionaries[column.name] = column.dictionary
    # Derived columns that are pure renames (Q7's supp_nation = n1_name)
    # inherit the source column's dictionary.
    from ..relational import Col

    for name, expr in spec.derived:
        if isinstance(expr, Col) and expr.name in dictionaries:
            dictionaries[name] = dictionaries[expr.name]
    output_dictionaries = {
        name: dictionaries[name]
        for name in output_columns
        if name in dictionaries
    }

    return PhysicalPlan(
        name=spec.name,
        pipelines=pipelines,
        output_pipeline=output_id,
        output_columns=tuple(output_columns),
        output_dictionaries=output_dictionaries,
    )
