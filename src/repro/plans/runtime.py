"""Runtime data structures shared by all engines.

Engines execute physical pipelines over *batches* — plain ``dict[str,
numpy.ndarray]`` column maps — and share three stateful structures:

* :class:`HashTable` — the build side of a hash join.  Implemented over
  sorted key arrays (probe via binary search), which has hash-join
  semantics (equi-match, multi-match expansion) with fully vectorized
  numpy probing.  Build is incremental per tile; ``finalize`` is the
  blocking barrier the paper requires after hash build.
* :class:`GroupAggState` — streaming hash aggregation state: each batch
  folds into per-group accumulators (GPL's packet-by-packet ``k_reduce*``
  behaviour); ``result`` is the tiny blocking epilogue.
* :class:`ExecutionContext` — named hash tables and materialized
  intermediates produced by earlier pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from .logical import AggSpec

__all__ = [
    "Batch",
    "batch_rows",
    "batch_bytes",
    "HashTable",
    "PartitionedHashTable",
    "GroupAggState",
    "ExecutionContext",
]

Batch = Dict[str, np.ndarray]


def batch_rows(batch: Batch) -> int:
    """Row count of a batch (0 for an empty dict)."""
    for array in batch.values():
        return int(array.shape[0])
    return 0


def batch_bytes(batch: Batch) -> int:
    """Total payload bytes of a batch."""
    return int(sum(array.nbytes for array in batch.values()))


def _concat_batches(parts: Sequence[Batch], columns: Sequence[str]) -> Batch:
    if not parts:
        return {name: np.empty(0) for name in columns}
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in columns
    }


class HashTable:
    """Incrementally built equi-join index: key -> payload rows."""

    def __init__(self, key: str, payload_columns: Sequence[str]):
        self.key = key
        self.payload_columns = tuple(payload_columns)
        self._parts: List[Batch] = []
        self._keys: Optional[np.ndarray] = None
        self._payload: Optional[Batch] = None
        self._order: Optional[np.ndarray] = None

    @property
    def finalized(self) -> bool:
        return self._keys is not None

    def insert(self, batch: Batch) -> None:
        """Fold one batch of build-side rows into the table."""
        if self.finalized:
            raise ExecutionError("insert after hash-table finalize")
        needed = (self.key,) + tuple(
            c for c in self.payload_columns if c != self.key
        )
        self._parts.append({name: batch[name] for name in needed})

    def finalize(self) -> None:
        """The blocking barrier: sort keys, freeze the table."""
        columns = (self.key,) + tuple(
            c for c in self.payload_columns if c != self.key
        )
        merged = _concat_batches(self._parts, columns)
        self._parts = []
        keys = merged[self.key]
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._order = order
        self._payload = {
            name: merged[name][order] for name in self.payload_columns
        }

    @property
    def num_rows(self) -> int:
        if self._keys is None:
            return sum(batch_rows(part) for part in self._parts)
        return int(self._keys.size)

    @property
    def nbytes(self) -> int:
        """Approximate table size; the probe's auxiliary working set."""
        if self._keys is None:
            return sum(batch_bytes(part) for part in self._parts)
        return int(
            self._keys.nbytes
            + sum(array.nbytes for array in self._payload.values())
        )

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Match ``probe_keys`` against the table.

        Returns ``(probe_idx, build_idx)``: parallel index arrays such that
        ``probe_keys[probe_idx[i]] == keys[build_idx[i]]``, with one entry
        per match (multi-matches expand).
        """
        if self._keys is None:
            raise ExecutionError("probe before hash-table finalize")
        left = np.searchsorted(self._keys, probe_keys, side="left")
        right = np.searchsorted(self._keys, probe_keys, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.repeat(np.arange(probe_keys.size), counts)
        # build_idx: for each match m, left[probe_idx[m]] + offset-in-run.
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        build_idx = np.repeat(left, counts) + offsets
        return probe_idx, build_idx

    def payload_rows(self, build_idx: np.ndarray) -> Batch:
        """Gather payload columns for matched build rows."""
        if self._payload is None:
            raise ExecutionError("payload access before finalize")
        return {
            name: array[build_idx] for name, array in self._payload.items()
        }


class PartitionedHashTable:
    """A hash table split into key-range partitions (paper Section 3.2:
    "Partitioned hash joins can be implemented similarly, where the
    partition phase also can be implemented in a non-blocking manner").

    Partitioning bounds the *probe working set*: a probe whose input is
    partition-clustered touches one partition's worth of table at a time,
    which keeps the structure cache-resident even when the whole table is
    not — the classic radix-join rationale.
    """

    def __init__(
        self,
        key: str,
        payload_columns: Sequence[str],
        num_partitions: int = 16,
    ):
        if num_partitions < 1:
            raise ExecutionError("need at least one partition")
        self.key = key
        self.payload_columns = tuple(payload_columns)
        self.num_partitions = num_partitions
        self._partitions = [
            HashTable(key, payload_columns) for _ in range(num_partitions)
        ]
        self._finalized = False

    def partition_of(self, keys: np.ndarray) -> np.ndarray:
        """Partition id per key (multiplicative hash on the low bits)."""
        return (
            np.asarray(keys, dtype=np.int64) * np.int64(2654435761)
        ) % self.num_partitions

    @property
    def finalized(self) -> bool:
        return self._finalized

    def insert(self, batch: Batch) -> None:
        if self._finalized:
            raise ExecutionError("insert after hash-table finalize")
        parts = self.partition_of(batch[self.key])
        for partition in range(self.num_partitions):
            mask = parts == partition
            if not mask.any():
                continue
            self._partitions[partition].insert(
                {name: array[mask] for name, array in batch.items()}
            )

    def finalize(self) -> None:
        for partition in self._partitions:
            partition.finalize()
        self._finalized = True

    @property
    def num_rows(self) -> int:
        return sum(partition.num_rows for partition in self._partitions)

    @property
    def nbytes(self) -> int:
        return sum(partition.nbytes for partition in self._partitions)

    @property
    def probe_working_set(self) -> int:
        """Bytes a partition-clustered probe touches at a time."""
        if not self._finalized:
            return self.nbytes
        return max(
            (partition.nbytes for partition in self._partitions), default=0
        )

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Match ``probe_keys``; returns global (probe_idx, partition-local
        build handle) index pairs exactly like :meth:`HashTable.probe`.

        The build indices are encoded as (partition, local) pairs packed
        into one int64 so :meth:`payload_rows` can decode them.
        """
        if not self._finalized:
            raise ExecutionError("probe before hash-table finalize")
        probe_keys = np.asarray(probe_keys)
        parts = self.partition_of(probe_keys)
        probe_chunks: List[np.ndarray] = []
        build_chunks: List[np.ndarray] = []
        for partition in range(self.num_partitions):
            mask = parts == partition
            if not mask.any():
                continue
            local_positions = np.flatnonzero(mask)
            local_probe, local_build = self._partitions[partition].probe(
                probe_keys[mask]
            )
            if local_probe.size == 0:
                continue
            probe_chunks.append(local_positions[local_probe])
            build_chunks.append(
                np.int64(partition) * np.int64(1 << 40) + local_build
            )
        if not probe_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.concatenate(probe_chunks)
        build_idx = np.concatenate(build_chunks)
        order = np.argsort(probe_idx, kind="stable")
        return probe_idx[order], build_idx[order]

    def payload_rows(self, build_idx: np.ndarray) -> Batch:
        partitions = (build_idx >> np.int64(40)).astype(np.int64)
        locals_ = build_idx & np.int64((1 << 40) - 1)
        columns = {
            name: [] for name in self.payload_columns
        }
        order_chunks = []
        position = np.arange(build_idx.size)
        for partition in range(self.num_partitions):
            mask = partitions == partition
            if not mask.any():
                continue
            rows = self._partitions[partition].payload_rows(locals_[mask])
            for name in self.payload_columns:
                columns[name].append(rows[name])
            order_chunks.append(position[mask])
        if not order_chunks:
            return {
                name: np.empty(0) for name in self.payload_columns
            }
        order = np.concatenate(order_chunks)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        return {
            name: np.concatenate(chunks)[inverse]
            for name, chunks in columns.items()
        }


class GroupAggState:
    """Streaming grouped aggregation (handles the global case too)."""

    def __init__(self, group_keys: Sequence[str], aggregates: Sequence[AggSpec]):
        self.group_keys = tuple(group_keys)
        self.aggregates = tuple(aggregates)
        # group tuple -> list of per-aggregate accumulators
        self._groups: Dict[tuple, List] = {}
        self._counts: Dict[tuple, int] = {}

    def _initial(self) -> List:
        accumulators: List = []
        for agg in self.aggregates:
            if agg.func in ("sum", "avg", "count"):
                accumulators.append(0.0)
            elif agg.func == "min":
                accumulators.append(np.inf)
            else:  # max
                accumulators.append(-np.inf)
        return accumulators

    def update(self, batch: Batch) -> None:
        """Fold one batch into the per-group accumulators."""
        rows = batch_rows(batch)
        if rows == 0:
            return
        values = []
        for agg in self.aggregates:
            if agg.expr is None:
                values.append(np.ones(rows))
            else:
                evaluated = np.asarray(agg.expr.evaluate(batch), dtype=np.float64)
                values.append(np.broadcast_to(evaluated, (rows,)))

        if not self.group_keys:
            group = ()
            accumulators = self._groups.setdefault(group, self._initial())
            self._counts[group] = self._counts.get(group, 0) + rows
            self._fold_vector(accumulators, values, slice(None))
            return

        key_matrix = np.column_stack(
            [np.asarray(batch[key]) for key in self.group_keys]
        )
        unique, inverse = np.unique(key_matrix, axis=0, return_inverse=True)
        counts = np.bincount(inverse, minlength=unique.shape[0])
        folded = []
        for agg, value in zip(self.aggregates, values):
            if agg.func in ("sum", "avg", "count"):
                folded.append(
                    np.bincount(inverse, weights=value, minlength=unique.shape[0])
                )
            elif agg.func == "min":
                out = np.full(unique.shape[0], np.inf)
                np.minimum.at(out, inverse, value)
                folded.append(out)
            else:
                out = np.full(unique.shape[0], -np.inf)
                np.maximum.at(out, inverse, value)
                folded.append(out)
        for position, row in enumerate(map(tuple, unique)):
            accumulators = self._groups.setdefault(row, self._initial())
            self._counts[row] = self._counts.get(row, 0) + int(counts[position])
            for index, agg in enumerate(self.aggregates):
                if agg.func in ("sum", "avg", "count"):
                    accumulators[index] += folded[index][position]
                elif agg.func == "min":
                    accumulators[index] = min(
                        accumulators[index], folded[index][position]
                    )
                else:
                    accumulators[index] = max(
                        accumulators[index], folded[index][position]
                    )

    def _fold_vector(self, accumulators: List, values: List, rows) -> None:
        for index, agg in enumerate(self.aggregates):
            column = values[index][rows]
            if agg.func in ("sum", "avg", "count"):
                accumulators[index] += float(column.sum())
            elif agg.func == "min":
                accumulators[index] = min(accumulators[index], float(column.min()))
            else:
                accumulators[index] = max(accumulators[index], float(column.max()))

    @property
    def num_groups(self) -> int:
        return len(self._groups)

    def result(self) -> Batch:
        """Finalize: one row per group, keys first, then aggregates."""
        groups = sorted(self._groups)
        batch: Batch = {}
        for position, key in enumerate(self.group_keys):
            batch[key] = np.asarray([group[position] for group in groups])
        for index, agg in enumerate(self.aggregates):
            column = []
            for group in groups:
                value = self._groups[group][index]
                if agg.func == "avg":
                    count = self._counts[group]
                    value = value / count if count else 0.0
                column.append(value)
            batch[agg.name] = np.asarray(column, dtype=np.float64)
        if not groups:
            # Global aggregate over empty input still yields one row of
            # zero-ish values, matching SQL's sum() -> NULL simplified to 0.
            for key in self.group_keys:
                batch[key] = np.empty(0)
            for agg in self.aggregates:
                batch[agg.name] = np.zeros(0 if self.group_keys else 1)
        return batch


class ExecutionContext:
    """Named runtime state flowing between pipelines."""

    def __init__(self) -> None:
        self.hash_tables: Dict[str, HashTable] = {}
        self.intermediates: Dict[str, Batch] = {}

    def hash_table(self, build_id: str) -> HashTable:
        try:
            return self.hash_tables[build_id]
        except KeyError:
            raise ExecutionError(
                f"hash table {build_id!r} has not been built yet"
            ) from None

    def intermediate(self, name: str) -> Batch:
        try:
            return self.intermediates[name]
        except KeyError:
            raise ExecutionError(
                f"intermediate {name!r} has not been produced yet"
            ) from None
