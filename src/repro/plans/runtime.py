"""Runtime data structures shared by all engines.

Engines execute physical pipelines over *batches* — plain ``dict[str,
numpy.ndarray]`` column maps — and share three stateful structures:

* :class:`HashTable` — the build side of a hash join.  Implemented over
  sorted key arrays (probe via binary search), which has hash-join
  semantics (equi-match, multi-match expansion) with fully vectorized
  numpy probing.  Build is incremental per tile; ``finalize`` is the
  blocking barrier the paper requires after hash build.
* :class:`GroupAggState` — streaming hash aggregation state: each batch
  folds into per-group accumulators (GPL's packet-by-packet ``k_reduce*``
  behaviour); ``result`` is the tiny blocking epilogue.
* :class:`ExecutionContext` — named hash tables and materialized
  intermediates produced by earlier pipelines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from .logical import AggSpec

__all__ = [
    "Batch",
    "batch_rows",
    "batch_bytes",
    "HashTable",
    "PartitionedHashTable",
    "GroupAggState",
    "ExecutionContext",
]

Batch = Dict[str, np.ndarray]


def batch_rows(batch: Batch) -> int:
    """Row count of a batch (0 for an empty dict)."""
    for array in batch.values():
        return int(array.shape[0])
    return 0


def batch_bytes(batch: Batch) -> int:
    """Total payload bytes of a batch."""
    return int(sum(array.nbytes for array in batch.values()))


def _concat_batches(parts: Sequence[Batch], columns: Sequence[str]) -> Batch:
    if not parts:
        return {name: np.empty(0) for name in columns}
    return {
        name: np.concatenate([part[name] for part in parts])
        for name in columns
    }


class HashTable:
    """Incrementally built equi-join index: key -> payload rows."""

    def __init__(self, key: str, payload_columns: Sequence[str]):
        self.key = key
        self.payload_columns = tuple(payload_columns)
        self._parts: List[Batch] = []
        self._keys: Optional[np.ndarray] = None
        self._payload: Optional[Batch] = None
        self._order: Optional[np.ndarray] = None
        self._unique_keys = False

    @property
    def finalized(self) -> bool:
        return self._keys is not None

    def insert(self, batch: Batch) -> None:
        """Fold one batch of build-side rows into the table."""
        if self.finalized:
            raise ExecutionError("insert after hash-table finalize")
        needed = (self.key,) + tuple(
            c for c in self.payload_columns if c != self.key
        )
        self._parts.append({name: batch[name] for name in needed})

    def finalize(self) -> None:
        """The blocking barrier: sort keys, freeze the table."""
        columns = (self.key,) + tuple(
            c for c in self.payload_columns if c != self.key
        )
        merged = _concat_batches(self._parts, columns)
        self._parts = []
        keys = merged[self.key]
        order = np.argsort(keys, kind="stable")
        self._keys = keys[order]
        self._order = order
        self._payload = {
            name: merged[name][order] for name in self.payload_columns
        }
        # Unique-key tables (the dimension-table common case) probe with
        # a single binary search instead of the left/right pair.
        self._unique_keys = bool(
            self._keys.size <= 1 or np.all(self._keys[1:] != self._keys[:-1])
        )

    @property
    def num_rows(self) -> int:
        if self._keys is None:
            return sum(batch_rows(part) for part in self._parts)
        return int(self._keys.size)

    @property
    def nbytes(self) -> int:
        """Approximate table size; the probe's auxiliary working set."""
        if self._keys is None:
            return sum(batch_bytes(part) for part in self._parts)
        return int(
            self._keys.nbytes
            + sum(array.nbytes for array in self._payload.values())
        )

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Match ``probe_keys`` against the table.

        Returns ``(probe_idx, build_idx)``: parallel index arrays such that
        ``probe_keys[probe_idx[i]] == keys[build_idx[i]]``, with one entry
        per match (multi-matches expand).
        """
        if self._keys is None:
            raise ExecutionError("probe before hash-table finalize")
        if self._unique_keys:
            # 0/1 matches per probe key: one searchsorted + equality
            # check replaces the left/right pair (same pairs, same order).
            left = np.searchsorted(self._keys, probe_keys, side="left")
            if self._keys.size == 0:
                empty = np.empty(0, dtype=np.int64)
                return empty, empty
            clipped = np.minimum(left, self._keys.size - 1)
            matched = (left < self._keys.size) & (
                self._keys[clipped] == probe_keys
            )
            probe_idx = np.flatnonzero(matched)
            return probe_idx, left[matched]
        left = np.searchsorted(self._keys, probe_keys, side="left")
        right = np.searchsorted(self._keys, probe_keys, side="right")
        counts = right - left
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.repeat(np.arange(probe_keys.size), counts)
        # build_idx: for each match m, left[probe_idx[m]] + offset-in-run.
        offsets = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        build_idx = np.repeat(left, counts) + offsets
        return probe_idx, build_idx

    def payload_rows(self, build_idx: np.ndarray) -> Batch:
        """Gather payload columns for matched build rows."""
        if self._payload is None:
            raise ExecutionError("payload access before finalize")
        return {
            name: array[build_idx] for name, array in self._payload.items()
        }


class PartitionedHashTable:
    """A hash table split into key-range partitions (paper Section 3.2:
    "Partitioned hash joins can be implemented similarly, where the
    partition phase also can be implemented in a non-blocking manner").

    Partitioning bounds the *probe working set*: a probe whose input is
    partition-clustered touches one partition's worth of table at a time,
    which keeps the structure cache-resident even when the whole table is
    not — the classic radix-join rationale.
    """

    def __init__(
        self,
        key: str,
        payload_columns: Sequence[str],
        num_partitions: int = 16,
    ):
        if num_partitions < 1:
            raise ExecutionError("need at least one partition")
        self.key = key
        self.payload_columns = tuple(payload_columns)
        self.num_partitions = num_partitions
        self._partitions = [
            HashTable(key, payload_columns) for _ in range(num_partitions)
        ]
        self._finalized = False

    def partition_of(self, keys: np.ndarray) -> np.ndarray:
        """Partition id per key (multiplicative hash on the low bits)."""
        return (
            np.asarray(keys, dtype=np.int64) * np.int64(2654435761)
        ) % self.num_partitions

    @property
    def finalized(self) -> bool:
        return self._finalized

    def insert(self, batch: Batch) -> None:
        if self._finalized:
            raise ExecutionError("insert after hash-table finalize")
        parts = self.partition_of(batch[self.key])
        for partition in range(self.num_partitions):
            mask = parts == partition
            if not mask.any():
                continue
            self._partitions[partition].insert(
                {name: array[mask] for name, array in batch.items()}
            )

    def finalize(self) -> None:
        for partition in self._partitions:
            partition.finalize()
        self._finalized = True

    @property
    def num_rows(self) -> int:
        return sum(partition.num_rows for partition in self._partitions)

    @property
    def nbytes(self) -> int:
        return sum(partition.nbytes for partition in self._partitions)

    @property
    def probe_working_set(self) -> int:
        """Bytes a partition-clustered probe touches at a time."""
        if not self._finalized:
            return self.nbytes
        return max(
            (partition.nbytes for partition in self._partitions), default=0
        )

    def probe(self, probe_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Match ``probe_keys``; returns global (probe_idx, partition-local
        build handle) index pairs exactly like :meth:`HashTable.probe`.

        The build indices are encoded as (partition, local) pairs packed
        into one int64 so :meth:`payload_rows` can decode them.
        """
        if not self._finalized:
            raise ExecutionError("probe before hash-table finalize")
        probe_keys = np.asarray(probe_keys)
        parts = self.partition_of(probe_keys)
        probe_chunks: List[np.ndarray] = []
        build_chunks: List[np.ndarray] = []
        for partition in range(self.num_partitions):
            mask = parts == partition
            if not mask.any():
                continue
            local_positions = np.flatnonzero(mask)
            local_probe, local_build = self._partitions[partition].probe(
                probe_keys[mask]
            )
            if local_probe.size == 0:
                continue
            probe_chunks.append(local_positions[local_probe])
            build_chunks.append(
                np.int64(partition) * np.int64(1 << 40) + local_build
            )
        if not probe_chunks:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        probe_idx = np.concatenate(probe_chunks)
        build_idx = np.concatenate(build_chunks)
        order = np.argsort(probe_idx, kind="stable")
        return probe_idx[order], build_idx[order]

    def payload_rows(self, build_idx: np.ndarray) -> Batch:
        partitions = (build_idx >> np.int64(40)).astype(np.int64)
        locals_ = build_idx & np.int64((1 << 40) - 1)
        columns = {
            name: [] for name in self.payload_columns
        }
        order_chunks = []
        position = np.arange(build_idx.size)
        for partition in range(self.num_partitions):
            mask = partitions == partition
            if not mask.any():
                continue
            rows = self._partitions[partition].payload_rows(locals_[mask])
            for name in self.payload_columns:
                columns[name].append(rows[name])
            order_chunks.append(position[mask])
        if not order_chunks:
            return {
                name: np.empty(0) for name in self.payload_columns
            }
        order = np.concatenate(order_chunks)
        inverse = np.empty_like(order)
        inverse[order] = np.arange(order.size)
        return {
            name: np.concatenate(chunks)[inverse]
            for name, chunks in columns.items()
        }


class GroupAggState:
    """Streaming grouped aggregation (handles the global case too).

    The per-tile fold is fully vectorized.  Group keys are *radix-packed*
    into a single int64 code when every key column is integral and the
    combined value ranges fit 63 bits (true for all SSB/TPC-H catalogue
    queries: dictionary codes, years, region keys); one 1-D
    ``np.unique`` over the packed codes factorizes the tile — no
    ``np.unique(..., axis=0)`` row sort, no per-group Python loop.  Wide
    or non-integral keys fall back to a lexsort-based factorization.

    Accumulators live in flat numpy arrays (one slot per group) merged
    by packed code; each tile contributes exactly one addition per group
    in tile order, the same float operation sequence as the historical
    per-group Python fold, so results are bitwise identical.
    """

    def __init__(self, group_keys: Sequence[str], aggregates: Sequence[AggSpec]):
        self.group_keys = tuple(group_keys)
        self.aggregates = tuple(aggregates)
        self._num_groups = 0
        # Flat per-slot state: one array per key column plus one
        # accumulator row per aggregate and the per-group row counts.
        self._key_arrays: List[np.ndarray] = []
        self._acc = np.empty((len(self.aggregates), 0), dtype=np.float64)
        self._count = np.empty(0, dtype=np.int64)
        # Packed-key bookkeeping: per-column bases/bit-widths, and the
        # known codes kept sorted for vectorized code -> slot resolution.
        self._base: Optional[List[int]] = None
        self._bits: Optional[List[int]] = None
        self._codes = np.empty(0, dtype=np.int64)
        self._codes_sorted = np.empty(0, dtype=np.int64)
        self._slots_sorted = np.empty(0, dtype=np.int64)
        # Fallback: key tuple -> slot, used when packing is infeasible.
        self._tuple_slots: Optional[Dict[tuple, int]] = None
        # Global (key-less) aggregation keeps the historical scalar path.
        self._global_acc: Optional[List[float]] = None
        self._global_count = 0

    def _initial_scalar(self) -> List[float]:
        accumulators: List[float] = []
        for agg in self.aggregates:
            if agg.func in ("sum", "avg", "count"):
                accumulators.append(0.0)
            elif agg.func == "min":
                accumulators.append(np.inf)
            else:  # max
                accumulators.append(-np.inf)
        return accumulators

    # -- per-tile fold ---------------------------------------------------

    def update(self, batch: Batch) -> None:
        """Fold one batch into the per-group accumulators."""
        rows = batch_rows(batch)
        if rows == 0:
            return
        values = []
        for agg in self.aggregates:
            if agg.expr is None:
                values.append(np.ones(rows))
            else:
                evaluated = np.asarray(agg.expr.evaluate(batch), dtype=np.float64)
                values.append(np.broadcast_to(evaluated, (rows,)))

        if not self.group_keys:
            if self._global_acc is None:
                self._global_acc = self._initial_scalar()
            self._global_count += rows
            for index, agg in enumerate(self.aggregates):
                column = values[index]
                if agg.func in ("sum", "avg", "count"):
                    self._global_acc[index] += float(column.sum())
                elif agg.func == "min":
                    self._global_acc[index] = min(
                        self._global_acc[index], float(column.min())
                    )
                else:
                    self._global_acc[index] = max(
                        self._global_acc[index], float(column.max())
                    )
            return

        columns = [np.asarray(batch[key]) for key in self.group_keys]
        first_row, inverse, counts = self._factorize(columns)
        num_unique = first_row.size

        folded = []
        for agg, value in zip(self.aggregates, values):
            if agg.func in ("sum", "avg", "count"):
                folded.append(
                    np.bincount(inverse, weights=value, minlength=num_unique)
                )
            elif agg.func == "min":
                out = np.full(num_unique, np.inf)
                np.minimum.at(out, inverse, value)
                folded.append(out)
            else:
                out = np.full(num_unique, -np.inf)
                np.maximum.at(out, inverse, value)
                folded.append(out)

        slots = self._resolve_slots(columns, first_row)
        self._count[slots] += counts
        for index, agg in enumerate(self.aggregates):
            if agg.func in ("sum", "avg", "count"):
                self._acc[index, slots] += folded[index]
            elif agg.func == "min":
                self._acc[index, slots] = np.minimum(
                    self._acc[index, slots], folded[index]
                )
            else:
                self._acc[index, slots] = np.maximum(
                    self._acc[index, slots], folded[index]
                )

    # -- factorization ---------------------------------------------------

    def _factorize(
        self, columns: List[np.ndarray]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distinct key rows of one tile, without ``np.unique(axis=0)``.

        Returns ``(first_row, inverse, counts)``: the row index of each
        distinct group's first occurrence (groups ordered ascending by
        key tuple), the per-row group index, and per-group row counts.
        """
        packed = self._pack_codes(columns)
        if packed is not None:
            _, first_row, inverse, counts = np.unique(
                packed,
                return_index=True,
                return_inverse=True,
                return_counts=True,
            )
            return first_row, inverse, counts
        # Lexsort fallback: order rows by key tuple, then cut group runs
        # at boundaries.  np.lexsort keys run last-to-first.
        order = np.lexsort(tuple(reversed(columns)))
        boundary = np.zeros(order.size, dtype=bool)
        boundary[0] = True
        for column in columns:
            sorted_column = column[order]
            boundary[1:] |= sorted_column[1:] != sorted_column[:-1]
        group_of_sorted = np.cumsum(boundary) - 1
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = group_of_sorted
        starts = np.flatnonzero(boundary)
        first_row = order[starts]
        counts = np.diff(np.append(starts, order.size))
        return first_row, inverse, counts

    def _pack_codes(self, columns: List[np.ndarray]) -> Optional[np.ndarray]:
        """Radix-pack integral key columns into one int64 code per row.

        Bases/widths are established from the first tile and widened
        (with existing groups re-coded) when later tiles step outside
        them; packing keeps the most significant bits on the first key,
        so packed-code order equals key-tuple order.
        """
        if self._tuple_slots is not None:
            return None
        for column in columns:
            if not np.issubdtype(column.dtype, np.integer):
                self._demote_to_tuples()
                return None
        lows = [int(column.min()) for column in columns]
        highs = [int(column.max()) for column in columns]
        if self._base is None:
            base = lows
            spans = [high - low for high, low in zip(highs, lows)]
        else:
            base = [min(b, low) for b, low in zip(self._base, lows)]
            tops = [
                max(b + (1 << bits) - 1, high)
                for b, bits, high in zip(self._base, self._bits, highs)
            ]
            spans = [top - b for top, b in zip(tops, base)]
        bits = [max(1, span.bit_length()) for span in spans]
        if sum(bits) > 63:
            self._demote_to_tuples()
            return None
        if self._base is None or base != self._base or bits != self._bits:
            self._rebase(base, bits)
        return self._encode(columns, slice(None))

    def _encode(self, columns: List[np.ndarray], rows) -> np.ndarray:
        """Packed int64 code of ``columns[rows]`` under current params."""
        codes: Optional[np.ndarray] = None
        shift = 0
        for column, low, field_bits in zip(
            reversed(columns), reversed(self._base), reversed(self._bits)
        ):
            field = (column[rows].astype(np.int64) - low) << shift
            codes = field if codes is None else codes + field
            shift += field_bits
        return codes

    def _rebase(self, base: List[int], bits: List[int]) -> None:
        """Adopt new packing parameters; re-code every known group."""
        self._base, self._bits = base, bits
        n = self._num_groups
        codes = (
            self._encode([keys[:n] for keys in self._key_arrays], slice(None))
            if n
            else np.empty(0, dtype=np.int64)
        )
        self._codes = codes
        order = np.argsort(codes, kind="stable")
        self._codes_sorted = codes[order]
        self._slots_sorted = order.astype(np.int64)

    def _demote_to_tuples(self) -> None:
        """Switch (permanently) to the tuple-keyed slot map."""
        if self._tuple_slots is not None:
            return
        n = self._num_groups
        rows = zip(*(keys[:n].tolist() for keys in self._key_arrays)) if n else ()
        self._tuple_slots = {tuple(row): slot for slot, row in enumerate(rows)}
        self._base = self._bits = None

    # -- slot resolution -------------------------------------------------

    def _grow(self, extra: int, columns: List[np.ndarray]) -> None:
        needed = self._num_groups + extra
        capacity = self._count.size
        if needed <= capacity:
            return
        new_capacity = max(needed, max(16, capacity * 2))
        grown_count = np.zeros(new_capacity, dtype=np.int64)
        grown_count[:capacity] = self._count
        self._count = grown_count
        grown_acc = np.empty((len(self.aggregates), new_capacity))
        for index, agg in enumerate(self.aggregates):
            if agg.func == "min":
                grown_acc[index] = np.inf
            elif agg.func == "max":
                grown_acc[index] = -np.inf
            else:
                grown_acc[index] = 0.0
            grown_acc[index, :capacity] = self._acc[index]
        self._acc = grown_acc
        if not self._key_arrays:
            self._key_arrays = [
                np.empty(new_capacity, dtype=column.dtype)
                for column in columns
            ]
        else:
            self._key_arrays = [
                np.concatenate(
                    [keys, np.empty(new_capacity - keys.size, dtype=keys.dtype)]
                )
                for keys in self._key_arrays
            ]

    def _resolve_slots(
        self, columns: List[np.ndarray], first_row: np.ndarray
    ) -> np.ndarray:
        """Global slot index per tile-distinct group, appending new ones."""
        if self._tuple_slots is not None:
            return self._resolve_slots_tuples(columns, first_row)
        self._promote_key_dtypes(columns)
        codes = self._encode(columns, first_row)
        position = np.searchsorted(self._codes_sorted, codes)
        clipped = np.minimum(position, max(0, self._codes_sorted.size - 1))
        known = (
            (position < self._codes_sorted.size)
            & (self._codes_sorted[clipped] == codes)
            if self._codes_sorted.size
            else np.zeros(codes.size, dtype=bool)
        )
        slots = np.empty(codes.size, dtype=np.int64)
        slots[known] = self._slots_sorted[clipped[known]]
        fresh = np.flatnonzero(~known)
        if fresh.size:
            self._grow(fresh.size, columns)
            start = self._num_groups
            new_slots = np.arange(start, start + fresh.size, dtype=np.int64)
            slots[fresh] = new_slots
            for keys, column in zip(self._key_arrays, columns):
                keys[start : start + fresh.size] = column[first_row[fresh]]
            self._num_groups += fresh.size
            self._codes = np.concatenate([self._codes, codes[fresh]])
            insert_order = np.argsort(
                np.concatenate([self._codes_sorted, codes[fresh]]),
                kind="stable",
            )
            merged = np.concatenate([self._slots_sorted, new_slots])
            all_codes = np.concatenate([self._codes_sorted, codes[fresh]])
            self._codes_sorted = all_codes[insert_order]
            self._slots_sorted = merged[insert_order]
        return slots

    def _promote_key_dtypes(self, columns: List[np.ndarray]) -> None:
        """Widen stored key arrays if a tile brings a wider key dtype."""
        if not self._key_arrays:
            return
        for index, (keys, column) in enumerate(
            zip(self._key_arrays, columns)
        ):
            wanted = np.promote_types(keys.dtype, column.dtype)
            if wanted != keys.dtype:
                self._key_arrays[index] = keys.astype(wanted)

    def _resolve_slots_tuples(
        self, columns: List[np.ndarray], first_row: np.ndarray
    ) -> np.ndarray:
        table = self._tuple_slots
        self._promote_key_dtypes(columns)
        rows = list(
            zip(*(column[first_row].tolist() for column in columns))
        )
        slots = np.empty(len(rows), dtype=np.int64)
        fresh_positions = []
        for position, row in enumerate(rows):
            slot = table.get(row)
            if slot is None:
                fresh_positions.append(position)
            else:
                slots[position] = slot
        if fresh_positions:
            self._grow(len(fresh_positions), columns)
            for position in fresh_positions:
                slot = self._num_groups
                table[rows[position]] = slot
                slots[position] = slot
                for keys, column in zip(self._key_arrays, columns):
                    keys[slot] = column[first_row[position]]
                self._num_groups += 1
        return slots

    # -- finalize --------------------------------------------------------

    @property
    def num_groups(self) -> int:
        if not self.group_keys:
            return 1 if self._global_acc is not None else 0
        return self._num_groups

    def result(self) -> Batch:
        """Finalize: one row per group, keys first, then aggregates."""
        batch: Batch = {}
        if not self.group_keys:
            accumulators = (
                self._global_acc
                if self._global_acc is not None
                else self._initial_scalar()
            )
            if self._global_acc is None:
                # Global aggregate over empty input still yields one row
                # of zero-ish values, matching SQL's sum() -> NULL
                # simplified to 0.
                batch.update(
                    {agg.name: np.zeros(1) for agg in self.aggregates}
                )
                return batch
            for index, agg in enumerate(self.aggregates):
                value = accumulators[index]
                if agg.func == "avg":
                    value = (
                        value / self._global_count if self._global_count else 0.0
                    )
                batch[agg.name] = np.asarray([value], dtype=np.float64)
            return batch

        n = self._num_groups
        if n == 0:
            for key in self.group_keys:
                batch[key] = np.empty(0)
            for agg in self.aggregates:
                batch[agg.name] = np.zeros(0)
            return batch
        keys = [array[:n] for array in self._key_arrays]
        order = np.lexsort(tuple(reversed(keys)))
        for key, array in zip(self.group_keys, keys):
            batch[key] = array[order]
        for index, agg in enumerate(self.aggregates):
            column = self._acc[index, :n][order]
            if agg.func == "avg":
                counts = self._count[:n][order]
                column = np.where(counts > 0, column / np.maximum(counts, 1), 0.0)
            batch[agg.name] = column.astype(np.float64)
        return batch


class ExecutionContext:
    """Named runtime state flowing between pipelines."""

    def __init__(self) -> None:
        self.hash_tables: Dict[str, HashTable] = {}
        self.intermediates: Dict[str, Batch] = {}

    def hash_table(self, build_id: str) -> HashTable:
        try:
            return self.hash_tables[build_id]
        except KeyError:
            raise ExecutionError(
                f"hash table {build_id!r} has not been built yet"
            ) from None

    def intermediate(self, name: str) -> Batch:
        try:
            return self.intermediates[name]
        except KeyError:
            raise ExecutionError(
                f"intermediate {name!r} has not been produced yet"
            ) from None
