"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``        execute a query on one engine and print decoded results
               (``--inject-faults`` schedules deterministic faults;
               ``--resilient`` wraps the run in admission control, bounded
               retry, and the GPL -> GPL w/o CE -> KBE fallback chain)
``serve``      replay a multi-query trace through the concurrent
               :class:`~repro.serve.QueryService` and print throughput,
               p50/p95 latency, and cache hit/miss counters
               (``--inject-faults`` and ``--resilient`` compose with it)
``compare``    run one query on every engine and print a comparison
``calibrate``  print the channel-throughput surface Γ(n, p, d)
``tune``       run the analytical model's configuration search
``explain``    show the optimized plan with the optimizer's estimates
``trace``      render a text Gantt chart of the pipelined execution
``obs``        summarize a Perfetto trace saved with ``--trace-out``
``dbgen``      report generated table sizes; optionally export .tbl files

``run`` and ``serve`` accept ``--trace-out FILE`` to record a
cross-layer span trace (plan/search/resilience/simulator/serve) in the
Chrome/Perfetto ``trace.json`` format; open it at ``ui.perfetto.dev``
or summarize it with the ``obs`` command.

Query names select the workload: ``Q5``/``Q7``/``Q8``/``Q9``/``Q14`` run
TPC-H, flight-numbered names (``Q1.1`` … ``Q4.3``) run the Star Schema
Benchmark.  Everything runs in-process against the simulated device; no
files are written unless ``--output`` is given.

Exit codes: 0 success, 1 hard failure, 2 other typed errors, 3 a
deadline cancelled the query (``--deadline-cycles``), 4 the bounded
serve queue shed at least one query (``--max-pending``).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from . import __version__
from .bench.reporting import banner, format_table
from .core import GPLConfig, GPLEngine, GPLWithoutCEEngine, ResilientExecutor
from .errors import DeadlineExceededError, ExecutionError, ReproError
from .faults import FaultInjector, FaultPlan
from .gpu import device_by_name
from .kbe import KBEEngine
from .model import (
    ConfigurationSearch,
    calibrate_channels,
    plan_cost_inputs,
)
from .ocelot import OcelotEngine
from .tpch import generate_database, query_by_name

ENGINES = {
    "kbe": KBEEngine,
    "gpl": GPLEngine,
    "gpl-woce": GPLWithoutCEEngine,
    "ocelot": OcelotEngine,
}


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--device",
        choices=("amd", "nvidia"),
        default="amd",
        help="simulated device preset (Table 1)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.02,
        help="TPC-H scale factor (default 0.02)",
    )
    parser.add_argument(
        "--seed", type=int, default=20160626, help="dbgen RNG seed"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "GPL (SIGMOD 2016) reproduction: pipelined GPU query "
            "processing on a simulated device"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute one query on one engine")
    run.add_argument("query", help="Q5, Q7, Q8, Q9, or Q14")
    run.add_argument(
        "--engine", choices=sorted(ENGINES), default="gpl"
    )
    run.add_argument(
        "--tile-kb", type=int, default=1024, help="GPL tile size in KiB"
    )
    run.add_argument(
        "--partitioned-joins",
        action="store_true",
        help="use partitioned hash joins for large build sides",
    )
    run.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help=(
            "deterministic fault schedule, e.g. 'oom', "
            "'stall@pipe0:probe*', 'abort@*:*,times=2', 'random:42:3'"
        ),
    )
    run.add_argument(
        "--resilient",
        action="store_true",
        help=(
            "execute through the resilience layer: admission control, "
            "bounded retry-with-reconfiguration, fallback chain "
            "GPL -> GPL (w/o CE) -> KBE"
        ),
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per engine in resilient mode (default 2)",
    )
    run.add_argument(
        "--deadline-cycles",
        type=float,
        help=(
            "cancel the query once it has consumed this many simulated "
            "cycles (exit code 3); checked at segment and tile boundaries"
        ),
    )
    run.add_argument(
        "--memory-budget-mb",
        type=float,
        help=(
            "device memory budget for admission control in MB "
            "(default: the device's global memory)"
        ),
    )
    run.add_argument(
        "--devices",
        default="1",
        metavar="POOL",
        help=(
            "shard the query across a simulated device pool: a count "
            "('4', repeating the --device preset) or a comma-separated "
            "preset list ('amd,amd,nvidia'); '1' (default) runs "
            "single-device"
        ),
    )
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "host worker threads for the per-device shard scatter "
            "(only meaningful with --devices > 1); any value produces "
            "byte-identical results, counters, and traces — 1 (the "
            "default) is the exact sequential path"
        ),
    )
    run.add_argument(
        "--max-relocations",
        type=int,
        default=2,
        metavar="N",
        help=(
            "relocation budget per sharded query: a shard whose whole "
            "resilience chain fails (or whose device a 'device_down' "
            "fault kills) is re-run on the lowest-index healthy device, "
            "at most N times per query (only meaningful with --devices "
            "> 1; default 2)"
        ),
    )
    run.add_argument(
        "--quarantine-threshold",
        type=int,
        default=2,
        metavar="K",
        help=(
            "consecutive shard failures before pool health quarantines "
            "a device slot, excluding it from the scatter until its "
            "cooldown expires (0 disables pool-health tracking; only "
            "meaningful with --devices > 1; default 2)"
        ),
    )
    run.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Perfetto trace.json of the run to FILE",
    )
    _add_common(run)

    serve = commands.add_parser(
        "serve",
        help="replay a multi-query trace through the concurrent service",
    )
    serve.add_argument(
        "--queries",
        default="Q5,Q7,Q8,Q9,Q14",
        help=(
            "comma-separated trace of query names (repeats allowed); "
            "all TPC-H or all SSB, not mixed (default: the paper's five)"
        ),
    )
    serve.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="replay the trace this many times (default 2: the second "
        "pass exercises the warm caches)",
    )
    serve.add_argument(
        "--policy",
        choices=("fifo", "sjf"),
        default="fifo",
        help="scheduling policy: submission order or shortest-cost-first",
    )
    serve.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="queries admitted per concurrent round (default 8)",
    )
    serve.add_argument(
        "--tile-kb", type=int, default=1024, help="GPL tile size in KiB"
    )
    serve.add_argument(
        "--partitioned-joins",
        action="store_true",
        help="use partitioned hash joins for large build sides",
    )
    serve.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="deterministic fault schedule applied to every served query",
    )
    serve.add_argument(
        "--resilient",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "serve through the resilience layer (default on; "
            "--no-resilient serves on bare GPL engines, so faults fail "
            "queries instead of degrading them)"
        ),
    )
    serve.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retry budget per engine in resilient mode (default 2)",
    )
    serve.add_argument(
        "--deadline-cycles",
        type=float,
        help=(
            "service-level deadline: cancel any query past this many "
            "simulated cycles (records it as outcome 'deadline'; exit "
            "code 3 when any query is cancelled)"
        ),
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help=(
            "consecutive GPL-tier faults before the per-query circuit "
            "breaker trips to the KBE degrade path (0 disables breakers; "
            "default 3)"
        ),
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        help=(
            "bound the async admission queue to this many pending "
            "queries; overflow is shed per --queue-policy (default: "
            "unbounded)"
        ),
    )
    serve.add_argument(
        "--queue-policy",
        choices=("reject", "shed-oldest"),
        default="reject",
        help=(
            "what a full bounded queue sheds: the arriving query "
            "('reject') or the oldest pending one ('shed-oldest')"
        ),
    )
    serve.add_argument(
        "--memory-budget-mb",
        type=float,
        help=(
            "shared device-memory budget partitioned across each round "
            "in MB (default: the device's global memory)"
        ),
    )
    serve.add_argument(
        "--tuned",
        action="store_true",
        help=(
            "run every query with the cost model's per-segment optimal "
            "configs (Section 4.1's search) instead of one baseline "
            "config; the drift report then mirrors Figs 11/24"
        ),
    )
    serve.add_argument(
        "--devices",
        default="1",
        metavar="POOL",
        help=(
            "serve across a simulated device pool: a count ('4', "
            "repeating the --device preset) or a comma-separated preset "
            "list ('amd,amd,nvidia'); every query scatter-gathers over "
            "the pool ('1', the default, serves single-device)"
        ),
    )
    serve.add_argument(
        "--result-cache-bytes",
        type=int,
        default=64 * 1024 * 1024,
        metavar="BYTES",
        help=(
            "byte budget of the whole-result LRU cache consulted "
            "before admission; hits bypass execution entirely with "
            "outcome 'cached' (default: 64 MiB)"
        ),
    )
    serve.add_argument(
        "--no-result-cache",
        action="store_true",
        help=(
            "disable the result cache AND the cross-query segment "
            "cache — every query re-executes end to end (the pre-PR-8 "
            "serving behaviour)"
        ),
    )
    serve.add_argument(
        "--batch-dedupe",
        action="store_true",
        help=(
            "shared-scan batched admission: execute one representative "
            "of identical pending specs per drain (fanning the result "
            "out to the duplicates) and group same-fact-table queries "
            "into admission rounds"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "host worker threads draining each admission round (and, "
            "with --devices > 1, scattering each query's shards); any "
            "value produces byte-identical reports, counters, and "
            "traces — 1 (the default) is the exact sequential path"
        ),
    )
    serve.add_argument(
        "--max-relocations",
        type=int,
        default=2,
        metavar="N",
        help=(
            "relocation budget per sharded query: a shard whose whole "
            "resilience chain fails (or whose device a 'device_down' "
            "fault kills) is re-run on the lowest-index healthy device, "
            "at most N times per query (only meaningful with --devices "
            "> 1; default 2)"
        ),
    )
    serve.add_argument(
        "--quarantine-threshold",
        type=int,
        default=2,
        metavar="K",
        help=(
            "consecutive shard failures before pool health quarantines "
            "a device slot, excluding it from the scatter until its "
            "cooldown expires (0 disables pool-health tracking; only "
            "meaningful with --devices > 1; default 2)"
        ),
    )
    serve.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write a Perfetto trace.json of the whole drain to FILE",
    )
    _add_common(serve)

    compare = commands.add_parser(
        "compare", help="run one query on every engine"
    )
    compare.add_argument("query", help="Q5, Q7, Q8, Q9, or Q14")
    _add_common(compare)

    calibrate = commands.add_parser(
        "calibrate", help="print the channel-throughput surface"
    )
    _add_common(calibrate)

    tune = commands.add_parser(
        "tune", help="run the cost model's configuration search"
    )
    tune.add_argument("query", help="Q5, Q7, Q8, Q9, or Q14")
    _add_common(tune)

    explain = commands.add_parser(
        "explain", help="show the optimized plan and its estimates"
    )
    explain.add_argument("query", help="Q5, Q7, Q8, Q9, or Q14")
    explain.add_argument(
        "--partitioned-joins",
        action="store_true",
        help="use partitioned hash joins for large build sides",
    )
    _add_common(explain)

    workload = commands.add_parser(
        "workload", help="run a whole query suite on every engine"
    )
    workload.add_argument(
        "suite", choices=("tpch", "ssb"), help="which workload to run"
    )
    _add_common(workload)

    trace = commands.add_parser(
        "trace", help="render a Gantt chart of the pipelined execution"
    )
    trace.add_argument("query", help="Q5, Q7, Q8, Q9, or Q14")
    trace.add_argument(
        "--width", type=int, default=64, help="chart width in buckets"
    )
    _add_common(trace)

    obs = commands.add_parser(
        "obs", help="summarize a saved Perfetto trace (--trace-out output)"
    )
    obs.add_argument("trace_file", help="path to a trace.json file")
    obs.add_argument(
        "--category",
        help="only summarize one span category "
        "(serve, plan, search, resilience, simulator)",
    )
    obs.add_argument(
        "--top",
        type=int,
        default=10,
        help="how many longest spans to list (default 10)",
    )

    dbgen = commands.add_parser("dbgen", help="report generated table sizes")
    dbgen.add_argument(
        "--output",
        help="also export every table as dbgen-style .tbl files here",
    )
    _add_common(dbgen)
    return parser


def _is_ssb(query_name: str) -> bool:
    """SSB queries are flight-numbered (Q1.1 ... Q4.3)."""
    return "." in query_name


def _query_spec(query_name: str):
    # Translate lookup failures into the typed error hierarchy so every
    # command exits 2 through the top-level handler instead of dumping a
    # traceback on a typo'd query name.
    try:
        if _is_ssb(query_name):
            from .ssb import ssb_query

            return ssb_query(query_name.upper().lstrip("SSB-"))
        return query_by_name(query_name)
    except (KeyError, ValueError) as exc:
        raise ExecutionError(str(exc)) from exc


def _database(args):
    query_name = getattr(args, "query", "")
    if query_name and _is_ssb(query_name):
        from .ssb import generate_ssb

        return generate_ssb(scale=args.scale, seed=args.seed)
    return generate_database(scale=args.scale, seed=args.seed)


@contextmanager
def _traced(trace_out: Optional[str]) -> Iterator[None]:
    """Record the block into a Perfetto trace file when requested.

    The file is written only when the block succeeds, so a failed
    command never leaves a half-trace behind.
    """
    if not trace_out:
        yield
        return
    from .obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        yield
    tracer.write_json(trace_out)
    print(
        f"wrote {tracer.num_spans()} spans "
        f"({', '.join(tracer.categories())}) to {trace_out}"
    )


def _pool_for(args):
    """The :class:`~repro.shard.DevicePool` ``--devices`` asks for.

    Returns ``None`` for the default single-device mode.
    """
    text = getattr(args, "devices", "1").strip()
    if text == "1":
        return None
    from .shard import DevicePool

    try:
        return DevicePool.from_spec(text, default=args.device)
    except ReproError:
        raise
    except ValueError as exc:
        raise ExecutionError(str(exc)) from exc


def cmd_run(args) -> int:
    database = _database(args)
    device = device_by_name(args.device)
    fault_plan = (
        FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    )
    spec = _query_spec(args.query)
    if args.deadline_cycles is not None:
        spec = dataclasses.replace(spec, deadline_cycles=args.deadline_cycles)
    pool = _pool_for(args)
    if pool is not None:
        if args.engine != "gpl":
            raise ExecutionError(
                "--devices shards through the GPL engine (plus the "
                "resilient fallback chain); it cannot run "
                f"--engine {args.engine}"
            )
        from .shard import ShardedExecutor

        executor = ShardedExecutor(
            database,
            pool,
            config=GPLConfig(tile_bytes=args.tile_kb * 1024),
            resilient=args.resilient,
            fault_plans=fault_plan,
            memory_budget_bytes=(
                args.memory_budget_mb * 1024 * 1024
                if args.memory_budget_mb
                else None
            ),
            max_retries=args.max_retries,
            partitioned_joins=args.partitioned_joins,
            workers=args.workers,
            max_relocations=args.max_relocations,
            quarantine_threshold=args.quarantine_threshold,
        )
        with _traced(args.trace_out):
            result = executor.execute(spec)
        print(banner(f"{args.query} on {result.engine} ({result.device})"))
        print(format_table(result.columns, result.decoded_rows()[:25]))
        if result.num_rows > 25:
            print(f"... {result.num_rows - 25} more rows")
        print(
            f"\nelapsed {result.elapsed_ms:.3f} ms (slowest shard + merge) "
            f"| launches {result.counters.kernel_launches}"
        )
        print(banner("shard report"))
        print(result.shard.describe())
        return 0
    if args.resilient:
        executor = ResilientExecutor(
            database,
            device,
            config=GPLConfig(tile_bytes=args.tile_kb * 1024),
            fault_plan=fault_plan,
            memory_budget_bytes=(
                args.memory_budget_mb * 1024 * 1024
                if args.memory_budget_mb
                else None
            ),
            max_retries=args.max_retries,
            partitioned_joins=args.partitioned_joins,
        )
        with _traced(args.trace_out):
            result = executor.execute(spec)
        engine_name = f"{result.engine} (resilient)"
    else:
        engine_cls = ENGINES[args.engine]
        kwargs = {}
        if args.engine in ("gpl", "gpl-woce"):
            kwargs["config"] = GPLConfig(tile_bytes=args.tile_kb * 1024)
        if args.partitioned_joins:
            kwargs["partitioned_joins"] = True
        engine = engine_cls(database, device, **kwargs)
        if fault_plan is not None:
            engine.fault_injector = FaultInjector(fault_plan)
        with _traced(args.trace_out):
            result = engine.execute(spec)
        engine_name = engine.name
    print(banner(f"{args.query} on {engine_name} ({device.name})"))
    print(format_table(result.columns, result.decoded_rows()[:25]))
    if result.num_rows > 25:
        print(f"... {result.num_rows - 25} more rows")
    counters = result.counters
    print(
        f"\nelapsed {result.elapsed_ms:.3f} ms | "
        f"VALUBusy {counters.valu_busy:.2f} | "
        f"MemUnitBusy {counters.mem_unit_busy:.2f} | "
        f"materialized {counters.bytes_materialized / 1e6:.2f} MB | "
        f"launches {counters.kernel_launches}"
    )
    if result.resilience is not None:
        print(banner("resilience report"))
        print(result.resilience.to_text())
    return 0


def cmd_serve(args) -> int:
    from .serve import QueryService

    names = [name.strip() for name in args.queries.split(",") if name.strip()]
    if not names:
        raise ExecutionError("serve needs at least one query name")
    names = names * max(1, args.repeat)
    ssb_flags = {_is_ssb(name) for name in names}
    if len(ssb_flags) > 1:
        raise ExecutionError(
            "cannot mix TPC-H and SSB queries in one served trace: they "
            "run against different databases"
        )
    if ssb_flags.pop():
        from .ssb import generate_ssb

        database = generate_ssb(scale=args.scale, seed=args.seed)
    else:
        database = generate_database(scale=args.scale, seed=args.seed)
    device = device_by_name(args.device)
    fault_plan = (
        FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    )
    pool = _pool_for(args)
    service = QueryService(
        database,
        device,
        config=GPLConfig(tile_bytes=args.tile_kb * 1024),
        policy=args.policy,
        max_concurrent=args.max_concurrent,
        memory_budget_bytes=(
            args.memory_budget_mb * 1024 * 1024
            if args.memory_budget_mb
            else None
        ),
        resilient=args.resilient,
        fault_plan=fault_plan,
        max_retries=args.max_retries,
        partitioned_joins=args.partitioned_joins,
        tuned=args.tuned,
        default_deadline_cycles=args.deadline_cycles,
        breaker_threshold=args.breaker_threshold,
        max_pending=args.max_pending,
        queue_policy=args.queue_policy,
        pool=pool,
        result_cache_bytes=(
            None if args.no_result_cache else args.result_cache_bytes
        ),
        segment_cache_bytes=(
            None if args.no_result_cache else 256 * 1024 * 1024
        ),
        batch_dedupe=args.batch_dedupe,
        workers=args.workers,
        max_relocations=args.max_relocations,
        quarantine_threshold=args.quarantine_threshold,
    )
    with _traced(args.trace_out):
        report = service.run([_query_spec(name) for name in names])
    where = (
        device.name if pool is None
        else f"a pool of {len(pool)} devices"
    )
    print(
        banner(
            f"serving {report.num_queries} queries on {where} "
            f"({args.policy}, {args.max_concurrent} concurrent)"
        )
    )
    print(report.to_text())
    # Exit-code priority mirrors `run`: hard failures beat deadline
    # cancellations beat load shedding; a fully-served drain exits 0.
    if report.hard_failures:
        return 1
    if report.deadline_exceeded:
        return 3
    if report.shed:
        return 4
    return 0


def cmd_compare(args) -> int:
    database = _database(args)
    device = device_by_name(args.device)
    spec = _query_spec(args.query)
    rows = []
    baseline: Optional[float] = None
    reference_result = None
    for name, engine_cls in sorted(ENGINES.items()):
        engine = engine_cls(database, device)
        result = engine.execute(spec)
        if reference_result is None:
            reference_result = result
        elif not reference_result.approx_equals(result):
            print(f"ERROR: {name} disagrees with the other engines")
            return 1
        if name == "kbe":
            baseline = result.elapsed_ms
        rows.append([engine.name, round(result.elapsed_ms, 3)])
    for row in rows:
        row.append(
            round(row[1] / baseline, 3) if baseline else float("nan")
        )
    print(banner(f"{args.query} on {device.name} (scale {args.scale})"))
    print(format_table(["engine", "ms", "vs KBE"], rows))
    return 0


def cmd_calibrate(args) -> int:
    device = device_by_name(args.device)
    table = calibrate_channels(device)
    print(banner(f"Γ(n, p, d) on {device.name} — GB/s"))
    sizes = sorted({point.data_bytes for point in table.points})
    header = ["n x p"] + [f"{s // (1024 * 4)}Ki ints" for s in sizes]
    rows = []
    for n, p in table.configurations():
        rows.append(
            [f"{n} x {p}B"]
            + [
                round(
                    table.throughput(n, p, s)
                    * device.core_mhz
                    * 1e6
                    / 1e9,
                    2,
                )
                for s in sizes
            ]
        )
    print(format_table(header, rows))
    for label, d in (("64KB", 65536), ("1MB", 1 << 20), ("16MB", 16 << 20)):
        n_max, p_max = table.best_config(d)
        print(f"best for {label:>5}: n={n_max}, p={p_max}B")
    return 0


def cmd_tune(args) -> int:
    database = _database(args)
    device = device_by_name(args.device)
    spec = _query_spec(args.query)
    engine = GPLEngine(database, device)
    plan = engine.prepare(spec)
    segments = plan_cost_inputs(plan, database)
    search = ConfigurationSearch(device, calibrate_channels(device))
    configs, predicted = search.optimize_plan(segments)
    print(banner(f"model-chosen configuration for {args.query}"))
    rows = [
        [
            segment_id,
            f"{config.tile_bytes // 1024}KB",
            config.channel.num_channels,
            config.channel.packet_bytes,
            config.default_workgroups,
        ]
        for segment_id, config in configs.items()
    ]
    print(format_table(["segment", "tile", "n", "p", "wg"], rows))
    tuned = GPLEngine(database, device, segment_configs=configs).execute(spec)
    default = GPLEngine(database, device).execute(spec)
    print(
        f"\npredicted {device.cycles_to_ms(predicted):.3f} ms | "
        f"measured (tuned) {tuned.elapsed_ms:.3f} ms | "
        f"measured (default) {default.elapsed_ms:.3f} ms"
    )
    return 0


def cmd_explain(args) -> int:
    database = _database(args)
    device = device_by_name(args.device)
    engine = GPLEngine(
        database, device, partitioned_joins=args.partitioned_joins
    )
    print(engine.explain(_query_spec(args.query)))
    return 0


def cmd_workload(args) -> int:
    from .bench.workload import run_workload

    device = device_by_name(args.device)
    if args.suite == "ssb":
        from .ssb import SSB_QUERIES, generate_ssb

        database = generate_ssb(scale=args.scale, seed=args.seed)
        specs = SSB_QUERIES
    else:
        from .tpch import QUERIES

        database = generate_database(scale=args.scale, seed=args.seed)
        specs = QUERIES
    engines = [cls(database, device) for _, cls in sorted(ENGINES.items())]
    # KBE first: the conventional speedup baseline.
    engines.sort(key=lambda engine: engine.name != "KBE")
    report = run_workload(engines, specs)
    print(report.to_text())
    return 0


def cmd_trace(args) -> int:
    from .gpu.trace import render_gantt, stage_utilization

    database = _database(args)
    device = device_by_name(args.device)
    engine = GPLEngine(database, device)
    result, traces = engine.execute_with_trace(_query_spec(args.query))
    print(banner(f"{args.query} pipelined execution on {device.name}"))
    print(f"total {result.elapsed_ms:.3f} ms\n")
    for pipeline_id, events in traces.items():
        if not events:
            continue
        elapsed = max(event.end for event in events)
        print(
            f"[{pipeline_id}] {len(events)} units, "
            f"{device.cycles_to_ms(elapsed):.3f} ms"
        )
        print(render_gantt(events, elapsed, width=args.width))
        for label, fraction in stage_utilization(events, elapsed).items():
            print(f"  {label:16s} in flight {fraction * 100:5.1f}%")
        print()
    return 0


def cmd_obs(args) -> int:
    from .obs import load_trace, summarize_trace

    try:
        payload = load_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        raise ExecutionError(str(exc)) from exc
    print(banner(f"trace summary: {args.trace_file}"))
    print(summarize_trace(payload, top=args.top, category=args.category))
    return 0


def cmd_dbgen(args) -> int:
    database = _database(args)
    rows = [
        [
            name,
            database.num_rows(name),
            round(database.table(name).nbytes / 1e6, 2),
        ]
        for name in database.names
    ]
    print(banner(f"TPC-H at scale factor {args.scale}"))
    print(format_table(["table", "rows", "MB"], rows))
    print(f"\ntotal {database.total_bytes() / 1e6:.2f} MB")
    if args.output:
        from .tpch.tbl import export_database

        written = export_database(database, args.output)
        print(f"\nexported {len(written)} .tbl files to {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "serve": cmd_serve,
        "compare": cmd_compare,
        "calibrate": cmd_calibrate,
        "tune": cmd_tune,
        "explain": cmd_explain,
        "workload": cmd_workload,
        "trace": cmd_trace,
        "obs": cmd_obs,
        "dbgen": cmd_dbgen,
    }
    try:
        return handlers[args.command](args)
    except DeadlineExceededError as exc:
        print(
            f"error: {type(exc).__name__}: {exc}".splitlines()[0],
            file=sys.stderr,
        )
        return 3
    except ReproError as exc:
        # One line, first line only: deadlock snapshots span many lines.
        message = str(exc).splitlines()[0] if str(exc) else "unknown error"
        print(f"error: {type(exc).__name__}: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
