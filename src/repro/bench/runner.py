"""Shared experiment infrastructure: cached databases, engines, model.

Every benchmark builds on an :class:`ExperimentContext`, which caches
generated databases per scale factor and the channel calibration per
device, and knows how to produce a model-optimized GPL engine for a query
(the paper's experiments run GPL under the analytical model's chosen
configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core import GPLConfig, GPLEngine, GPLWithoutCEEngine
from ..gpu import AMD_A10, DeviceSpec
from ..kbe import KBEEngine
from ..model import (
    CalibrationTable,
    ConfigurationSearch,
    CostModel,
    calibrate_channels,
    plan_cost_inputs,
)
from ..ocelot import OcelotEngine
from ..plans import PhysicalPlan, QuerySpec
from ..relational import Database
from ..tpch import generate_database

__all__ = ["DEFAULT_SCALE", "OptimizedRun", "ExperimentContext"]

#: Default scale factor for experiments: large enough that pipelines fill
#: and launch overhead is amortized (the paper's SF-10 regime, scaled to
#: what in-process numpy execution sustains comfortably).
DEFAULT_SCALE = 0.05


@dataclass
class OptimizedRun:
    """A query prepared under the model's optimal configuration."""

    engine: GPLEngine
    plan: PhysicalPlan
    configs: Dict[str, GPLConfig]
    predicted_cycles: float


@dataclass
class ExperimentContext:
    """Caches and factories shared by all experiments."""

    device: DeviceSpec = AMD_A10
    scale: float = DEFAULT_SCALE
    _databases: Dict[float, Database] = field(default_factory=dict)
    _calibration: Optional[CalibrationTable] = None

    def database(self, scale: Optional[float] = None) -> Database:
        scale = self.scale if scale is None else scale
        if scale not in self._databases:
            self._databases[scale] = generate_database(scale=scale)
        return self._databases[scale]

    def calibration(self) -> CalibrationTable:
        if self._calibration is None:
            self._calibration = calibrate_channels(self.device)
        return self._calibration

    def cost_model(self) -> CostModel:
        return CostModel(self.device, self.calibration())

    def search(self) -> ConfigurationSearch:
        return ConfigurationSearch(self.device, self.calibration())

    # -- engines ---------------------------------------------------------

    def kbe(self, scale: Optional[float] = None) -> KBEEngine:
        return KBEEngine(self.database(scale), self.device)

    def gpl(
        self,
        scale: Optional[float] = None,
        config: Optional[GPLConfig] = None,
        segment_configs: Optional[Dict[str, GPLConfig]] = None,
    ) -> GPLEngine:
        return GPLEngine(
            self.database(scale), self.device, config, segment_configs
        )

    def gpl_without_ce(
        self, scale: Optional[float] = None, config: Optional[GPLConfig] = None
    ) -> GPLWithoutCEEngine:
        return GPLWithoutCEEngine(self.database(scale), self.device, config)

    def ocelot(self, scale: Optional[float] = None) -> OcelotEngine:
        return OcelotEngine(self.database(scale), self.device)

    # -- model-optimized GPL ----------------------------------------------

    def optimized_gpl(
        self, spec: QuerySpec, scale: Optional[float] = None
    ) -> OptimizedRun:
        """GPL under the analytical model's per-segment optimal config."""
        database = self.database(scale)
        probe = GPLEngine(database, self.device)
        plan = probe.prepare(spec)
        segments = plan_cost_inputs(plan, database)
        configs, predicted = self.search().optimize_plan(segments)
        engine = GPLEngine(database, self.device, segment_configs=configs)
        return OptimizedRun(
            engine=engine,
            plan=plan,
            configs=configs,
            predicted_cycles=predicted,
        )

    def model_estimate(
        self,
        spec: QuerySpec,
        configs: Optional[Dict[str, GPLConfig]] = None,
        default: Optional[GPLConfig] = None,
        scale: Optional[float] = None,
    ) -> float:
        """Predicted cycles of a query under the given configuration."""
        database = self.database(scale)
        probe = GPLEngine(database, self.device)
        plan = probe.prepare(spec)
        segments = plan_cost_inputs(plan, database)
        return self.cost_model().estimate_plan(segments, configs, default)
