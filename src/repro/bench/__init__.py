"""Benchmark harness: experiment functions, shared context, reporting."""

from .experiments import (
    QUERY_NAMES,
    SELECTIVITY_SWEEP,
    exp_fig2_channel_calibration,
    exp_fig3_kbe_intermediate,
    exp_fig4_kbe_comm_cost,
    exp_fig5_kbe_utilization,
    exp_fig11_model_error,
    exp_fig12_13_tile_sweep,
    exp_fig14_15_workgroups,
    exp_fig16_overall,
    exp_fig17_materialization,
    exp_fig18_gpl_intermediate,
    exp_fig19_utilization,
    exp_fig20_breakdown,
    exp_fig21_data_sizes,
    exp_fig22_ocelot,
    exp_table1_hardware,
)
from .reporting import banner, format_mapping, format_table
from .runner import DEFAULT_SCALE, ExperimentContext, OptimizedRun
from .workload import QueryOutcome, WorkloadReport, run_workload

__all__ = [
    "QUERY_NAMES",
    "SELECTIVITY_SWEEP",
    "exp_table1_hardware",
    "exp_fig2_channel_calibration",
    "exp_fig3_kbe_intermediate",
    "exp_fig4_kbe_comm_cost",
    "exp_fig5_kbe_utilization",
    "exp_fig11_model_error",
    "exp_fig12_13_tile_sweep",
    "exp_fig14_15_workgroups",
    "exp_fig16_overall",
    "exp_fig17_materialization",
    "exp_fig18_gpl_intermediate",
    "exp_fig19_utilization",
    "exp_fig20_breakdown",
    "exp_fig21_data_sizes",
    "exp_fig22_ocelot",
    "banner",
    "format_mapping",
    "format_table",
    "DEFAULT_SCALE",
    "ExperimentContext",
    "OptimizedRun",
    "QueryOutcome",
    "WorkloadReport",
    "run_workload",
]
