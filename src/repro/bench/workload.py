"""Workload runner: execute query suites across engines with one call.

Wraps the run-every-query-on-every-engine loop (used throughout the
evaluation) into a reusable utility that also *verifies* cross-engine
agreement on every query — so a workload report doubles as a correctness
audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.base import EngineBase, QueryResult
from ..errors import ExecutionError
from ..plans import QuerySpec
from .reporting import banner, format_table

__all__ = ["QueryOutcome", "WorkloadReport", "run_workload"]


@dataclass(frozen=True)
class QueryOutcome:
    """One (query, engine) execution."""

    query: str
    engine: str
    elapsed_ms: float
    num_rows: int
    valu_busy: float
    mem_unit_busy: float
    bytes_materialized: float
    kernel_launches: int


@dataclass
class WorkloadReport:
    """All outcomes of one workload run plus summary accessors."""

    device: str
    outcomes: List[QueryOutcome] = field(default_factory=list)
    baseline_engine: Optional[str] = None

    def engines(self) -> List[str]:
        seen: Dict[str, None] = {}
        for outcome in self.outcomes:
            seen.setdefault(outcome.engine)
        return list(seen)

    def queries(self) -> List[str]:
        seen: Dict[str, None] = {}
        for outcome in self.outcomes:
            seen.setdefault(outcome.query)
        return list(seen)

    def outcome(self, query: str, engine: str) -> QueryOutcome:
        for candidate in self.outcomes:
            if candidate.query == query and candidate.engine == engine:
                return candidate
        raise ExecutionError(f"no outcome for {query!r} on {engine!r}")

    def total_ms(self, engine: str) -> float:
        return sum(
            outcome.elapsed_ms
            for outcome in self.outcomes
            if outcome.engine == engine
        )

    def speedup(self, engine: str, over: Optional[str] = None) -> float:
        """Workload-level speedup of ``engine`` over the baseline."""
        over = over or self.baseline_engine
        if over is None:
            raise ExecutionError("no baseline engine recorded")
        return self.total_ms(over) / self.total_ms(engine)

    def to_text(self) -> str:
        """The report as an aligned table plus totals."""
        engines = self.engines()
        rows = []
        for query in self.queries():
            row: List[object] = [query]
            for engine in engines:
                row.append(round(self.outcome(query, engine).elapsed_ms, 3))
            rows.append(row)
        totals: List[object] = ["TOTAL"]
        for engine in engines:
            totals.append(round(self.total_ms(engine), 3))
        rows.append(totals)
        text = banner(f"workload on {self.device} (ms)")
        text += "\n" + format_table(["query"] + engines, rows)
        if self.baseline_engine is not None:
            lines = []
            for engine in engines:
                if engine == self.baseline_engine:
                    continue
                lines.append(
                    f"{engine} speedup over {self.baseline_engine}: "
                    f"{self.speedup(engine):.2f}x"
                )
            if lines:
                text += "\n" + "\n".join(lines)
        return text


def run_workload(
    engines: Sequence[EngineBase],
    specs: Mapping[str, QuerySpec],
    verify: bool = True,
) -> WorkloadReport:
    """Run every query on every engine; verify answers agree.

    ``engines`` share one database; the first engine is the baseline for
    speedup reporting (conventionally KBE).  With ``verify`` (default) a
    cross-engine disagreement raises :class:`ExecutionError` naming the
    query.
    """
    if not engines:
        raise ExecutionError("run_workload needs at least one engine")
    report = WorkloadReport(
        device=engines[0].device.name,
        baseline_engine=engines[0].name,
    )
    for query_name, spec in specs.items():
        reference: Optional[QueryResult] = None
        for engine in engines:
            result = engine.execute(spec)
            if verify:
                if reference is None:
                    reference = result
                elif not reference.approx_equals(result):
                    raise ExecutionError(
                        f"{query_name}: {engine.name} disagrees with "
                        f"{reference.engine}"
                    )
            counters = result.counters
            report.outcomes.append(
                QueryOutcome(
                    query=query_name,
                    engine=engine.name,
                    elapsed_ms=result.elapsed_ms,
                    num_rows=result.num_rows,
                    valu_busy=counters.valu_busy,
                    mem_unit_busy=counters.mem_unit_busy,
                    bytes_materialized=counters.bytes_materialized,
                    kernel_launches=counters.kernel_launches,
                )
            )
    return report
