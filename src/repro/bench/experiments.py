"""One function per reproduced table/figure of the paper.

Each experiment returns plain data (lists/dicts of numbers) so that the
benchmark harness can print the paper's rows/series and tests can assert
the expected *shapes* (who wins, where the knees fall) without caring
about presentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import GPLConfig
from ..gpu import AMD_A10, NVIDIA_K40
from ..model import TILE_SIZE_CANDIDATES, plan_cost_inputs, workgroup_ladder
from ..tpch import q14, query_by_name
from .runner import ExperimentContext

__all__ = [
    "QUERY_NAMES",
    "SELECTIVITY_SWEEP",
    "exp_table1_hardware",
    "exp_fig2_channel_calibration",
    "exp_fig3_kbe_intermediate",
    "exp_fig4_kbe_comm_cost",
    "exp_fig5_kbe_utilization",
    "exp_fig11_model_error",
    "exp_fig12_13_tile_sweep",
    "exp_fig14_15_workgroups",
    "exp_fig16_overall",
    "exp_fig17_materialization",
    "exp_fig18_gpl_intermediate",
    "exp_fig19_utilization",
    "exp_fig20_breakdown",
    "exp_fig21_data_sizes",
    "exp_fig22_ocelot",
]

QUERY_NAMES: Tuple[str, ...] = ("Q5", "Q7", "Q8", "Q9", "Q14")

#: The paper's Q14 predicate sweep: approximate selectivities 1%..100%.
SELECTIVITY_SWEEP: Tuple[float, ...] = (0.01, 0.1, 0.164, 0.25, 0.5, 0.75, 1.0)


def _query_input_bytes(context: ExperimentContext, scale=None) -> float:
    """Input size Q14 is normalized against: LINEITEM + PART payloads."""
    database = context.database(scale)
    return float(
        database.table("lineitem").nbytes + database.table("part").nbytes
    )


# ---------------------------------------------------------------------------
# Table 1 / Section 2
# ---------------------------------------------------------------------------


def exp_table1_hardware() -> Dict[str, Dict[str, object]]:
    """Table 1: hardware specification of both simulated devices."""
    return {
        "AMD": AMD_A10.table1_row(),
        "NVIDIA": NVIDIA_K40.table1_row(),
    }


def exp_fig2_channel_calibration(
    context: ExperimentContext,
    channel_counts: Sequence[int] = (1, 4, 16),
    packet_bytes: int = 16,
) -> Dict[int, List[Tuple[int, float]]]:
    """Fig 2 / Fig 23: channel throughput vs N for several channel counts.

    Returns ``{n: [(num_integers, GB/s), ...]}`` for 16-byte packets.
    """
    table = context.calibration()
    result: Dict[int, List[Tuple[int, float]]] = {}
    for n in channel_counts:
        series = table.series(n, packet_bytes)
        result[n] = [
            (point.data_bytes // 4, point.throughput_gbps(context.device))
            for point in series
        ]
    return result


def exp_fig3_kbe_intermediate(
    context: ExperimentContext,
    selectivities: Sequence[float] = SELECTIVITY_SWEEP,
) -> List[Tuple[float, float]]:
    """Fig 3: KBE Q14 intermediate bytes / input bytes, per selectivity."""
    input_bytes = _query_input_bytes(context)
    rows = []
    for selectivity in selectivities:
        result = context.kbe().execute(q14(selectivity=selectivity))
        rows.append(
            (selectivity, result.counters.bytes_materialized / input_bytes)
        )
    return rows


def exp_fig4_kbe_comm_cost(
    context: ExperimentContext,
    selectivities: Sequence[float] = SELECTIVITY_SWEEP,
) -> List[Tuple[float, float, float]]:
    """Fig 4: KBE Q14 memory-stall cost vs selectivity.

    Returns ``(selectivity, mem_cost_ms, mem_share)`` rows, where
    ``mem_cost_ms`` is the profiler's Mem_cost and ``mem_share`` its
    fraction of the execution-time breakdown.
    """
    rows = []
    for selectivity in selectivities:
        result = context.kbe().execute(q14(selectivity=selectivity))
        counters = result.counters
        mem_ms = context.device.cycles_to_ms(
            counters.memory_cycles / context.device.num_cus
        )
        rows.append((selectivity, mem_ms, counters.breakdown()["Mem_cost"]))
    return rows


def exp_fig5_kbe_utilization(
    context: ExperimentContext,
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[str, Tuple[float, float]]:
    """Fig 5: KBE VALUBusy / MemUnitBusy per query."""
    result = {}
    for name in queries:
        run = context.kbe().execute(query_by_name(name))
        result[name] = (run.counters.valu_busy, run.counters.mem_unit_busy)
    return result


# ---------------------------------------------------------------------------
# Section 5.2 — model evaluation (Figs 11–15; Appendix Figs 24–26)
# ---------------------------------------------------------------------------


def exp_fig11_model_error(
    context: ExperimentContext,
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[str, Dict[str, float]]:
    """Fig 11 / Fig 24: relative error of the model at the optimal config.

    Returns per query: measured ms, estimated ms, relative error, and
    whether the model under-estimated (the paper's typical direction).
    """
    result = {}
    for name in queries:
        optimized = context.optimized_gpl(query_by_name(name))
        run = optimized.engine.execute(query_by_name(name))
        measured = run.counters.elapsed_cycles
        estimated = optimized.predicted_cycles
        result[name] = {
            "measured_ms": context.device.cycles_to_ms(measured),
            "estimated_ms": context.device.cycles_to_ms(estimated),
            "relative_error": abs(measured - estimated) / measured,
            "underestimated": float(estimated < measured),
        }
    return result


def exp_fig12_13_tile_sweep(
    context: ExperimentContext,
    query_name: str = "Q8",
    tile_sizes: Sequence[int] = TILE_SIZE_CANDIDATES,
) -> Dict[str, object]:
    """Fig 12+13 / Fig 25+26: runtime and model error vs tile size (Q8).

    Returns the measured/estimated series (normalized to the smallest
    tile), the model's chosen tile size, and the measured-best tile size.
    """
    spec = query_by_name(query_name)
    database = context.database()
    probe = context.gpl()
    plan = probe.prepare(spec)
    segments = plan_cost_inputs(plan, database)
    model = context.cost_model()

    rows = []
    for tile_bytes in tile_sizes:
        config = GPLConfig(tile_bytes=tile_bytes)
        engine = context.gpl(config=config)
        run = engine.execute(spec)
        estimated = model.estimate_plan(segments, default=config)
        rows.append(
            {
                "tile_bytes": tile_bytes,
                "measured_cycles": run.counters.elapsed_cycles,
                "estimated_cycles": estimated,
                "relative_error": abs(
                    run.counters.elapsed_cycles - estimated
                )
                / run.counters.elapsed_cycles,
            }
        )
    base = rows[0]["measured_cycles"]
    for row in rows:
        row["normalized_time"] = row["measured_cycles"] / base
        row["normalized_estimate"] = row["estimated_cycles"] / base
    model_pick = min(rows, key=lambda row: row["estimated_cycles"])
    measured_best = min(rows, key=lambda row: row["measured_cycles"])
    return {
        "rows": rows,
        "model_tile_bytes": model_pick["tile_bytes"],
        "measured_best_tile_bytes": measured_best["tile_bytes"],
    }


def exp_fig14_15_workgroups(
    context: ExperimentContext,
    query_name: str = "Q8",
    steps: int = 7,
) -> Dict[str, object]:
    """Fig 14+15: model error and delay cost across S_1..S_7 settings."""
    spec = query_by_name(query_name)
    database = context.database()
    probe = context.gpl()
    plan = probe.prepare(spec)
    segments = plan_cost_inputs(plan, database)
    model = context.cost_model()
    ladder = workgroup_ladder(context.device, steps)

    rows = []
    for setting, workgroups in enumerate(ladder, start=1):
        config = GPLConfig(default_workgroups=workgroups)
        run = context.gpl(config=config).execute(spec)
        estimated = model.estimate_plan(segments, default=config)
        measured = run.counters.elapsed_cycles
        rows.append(
            {
                "setting": f"S{setting}",
                "workgroups": workgroups,
                "measured_cycles": measured,
                "estimated_cycles": estimated,
                "relative_error": abs(measured - estimated) / measured,
                "delay_cycles": run.counters.delay_cycles,
            }
        )
    base_delay = max(rows[0]["delay_cycles"], 1e-9)
    for row in rows:
        row["normalized_delay"] = row["delay_cycles"] / base_delay
    model_pick = min(rows, key=lambda row: row["estimated_cycles"])
    lowest_delay = min(rows, key=lambda row: row["delay_cycles"])
    return {
        "rows": rows,
        "model_setting": model_pick["setting"],
        "lowest_delay_setting": lowest_delay["setting"],
    }


# ---------------------------------------------------------------------------
# Section 5.3–5.5 (Figs 16–22; Appendix Figs 27–29)
# ---------------------------------------------------------------------------


def exp_fig16_overall(
    context: ExperimentContext,
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[str, Dict[str, float]]:
    """Fig 16 / Fig 27: KBE vs GPL (w/o CE) vs GPL per query.

    GPL runs under the model-optimized configuration, as in the paper.
    Times are in ms, with normalized-to-KBE companions.
    """
    result = {}
    for name in queries:
        spec = query_by_name(name)
        kbe = context.kbe().execute(spec)
        woce = context.gpl_without_ce().execute(spec)
        gpl = context.optimized_gpl(spec).engine.execute(spec)
        result[name] = {
            "KBE_ms": kbe.elapsed_ms,
            "GPL_woCE_ms": woce.elapsed_ms,
            "GPL_ms": gpl.elapsed_ms,
            "GPL_woCE_normalized": woce.elapsed_ms / kbe.elapsed_ms,
            "GPL_normalized": gpl.elapsed_ms / kbe.elapsed_ms,
            "improvement": 1.0 - gpl.elapsed_ms / kbe.elapsed_ms,
        }
    return result


def exp_fig17_materialization(
    context: ExperimentContext,
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[str, float]:
    """Fig 17: GPL materialized intermediate bytes normalized to KBE."""
    result = {}
    for name in queries:
        spec = query_by_name(name)
        kbe = context.kbe().execute(spec)
        gpl = context.gpl().execute(spec)
        result[name] = gpl.counters.bytes_materialized / max(
            1.0, kbe.counters.bytes_materialized
        )
    return result


def exp_fig18_gpl_intermediate(
    context: ExperimentContext,
    selectivities: Sequence[float] = SELECTIVITY_SWEEP,
) -> List[Tuple[float, float, float]]:
    """Fig 18: GPL vs KBE Q14 intermediates / input, per selectivity."""
    input_bytes = _query_input_bytes(context)
    rows = []
    for selectivity in selectivities:
        spec = q14(selectivity=selectivity)
        gpl = context.gpl().execute(spec)
        kbe = context.kbe().execute(spec)
        rows.append(
            (
                selectivity,
                gpl.counters.bytes_materialized / input_bytes,
                kbe.counters.bytes_materialized / input_bytes,
            )
        )
    return rows


def exp_fig19_utilization(
    context: ExperimentContext,
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[str, Dict[str, float]]:
    """Fig 19 / Fig 28: VALUBusy & MemUnitBusy, KBE vs GPL, per query."""
    result = {}
    for name in queries:
        spec = query_by_name(name)
        kbe = context.kbe().execute(spec)
        gpl = context.optimized_gpl(spec).engine.execute(spec)
        result[name] = {
            "KBE_valu": kbe.counters.valu_busy,
            "KBE_mem": kbe.counters.mem_unit_busy,
            "GPL_valu": gpl.counters.valu_busy,
            "GPL_mem": gpl.counters.mem_unit_busy,
        }
    return result


def exp_fig20_breakdown(
    context: ExperimentContext,
    query_name: str = "Q8",
) -> Dict[str, Dict[str, float]]:
    """Fig 20 / Fig 29: execution-time breakdown for KBE and GPL (Q8).

    For GPL the communication cost is Mem + DC + Delay (Section 5.3.2).
    """
    spec = query_by_name(query_name)
    kbe = context.kbe().execute(spec)
    gpl = context.optimized_gpl(spec).engine.execute(spec)
    kbe_breakdown = kbe.counters.breakdown()
    gpl_breakdown = gpl.counters.breakdown()
    kbe_breakdown["communication_share"] = kbe_breakdown["Mem_cost"]
    gpl_breakdown["communication_share"] = (
        gpl_breakdown["Mem_cost"]
        + gpl_breakdown["DC_cost"]
        + gpl_breakdown["Delay"]
    )
    return {"KBE": kbe_breakdown, "GPL": gpl_breakdown}


def exp_fig21_data_sizes(
    context: ExperimentContext,
    scales: Sequence[float] = (0.01, 0.02, 0.05, 0.1, 0.2),
    query_name: str = "Q8",
) -> List[Dict[str, float]]:
    """Fig 21: KBE vs GPL execution time with growing data sizes."""
    rows = []
    for scale in scales:
        spec = query_by_name(query_name)
        kbe = context.kbe(scale=scale).execute(spec)
        gpl = context.optimized_gpl(spec, scale=scale).engine.execute(spec)
        rows.append(
            {
                "scale": scale,
                "KBE_ms": kbe.elapsed_ms,
                "GPL_ms": gpl.elapsed_ms,
                "improvement": 1.0 - gpl.elapsed_ms / kbe.elapsed_ms,
            }
        )
    return rows


def exp_fig22_ocelot(
    context: ExperimentContext,
    scales: Sequence[float] = (0.02, 0.05, 0.1),
    queries: Sequence[str] = QUERY_NAMES,
) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Fig 22: GPL vs Ocelot per query across scale factors.

    The paper's SF 1/5/10 maps to the context's reduced scales.  One
    Ocelot engine persists across queries within a scale so its hash-table
    cache is effective (MonetDB's memory manager behaviour).
    """
    result: Dict[float, Dict[str, Dict[str, float]]] = {}
    for scale in scales:
        ocelot = context.ocelot(scale=scale)
        per_query: Dict[str, Dict[str, float]] = {}
        for name in queries:
            spec = query_by_name(name)
            gpl = context.optimized_gpl(spec, scale=scale).engine.execute(spec)
            oce = ocelot.execute(spec)
            per_query[name] = {
                "GPL_ms": gpl.elapsed_ms,
                "Ocelot_ms": oce.elapsed_ms,
                "GPL_over_Ocelot": gpl.elapsed_ms / oce.elapsed_ms,
            }
        result[scale] = per_query
    return result
