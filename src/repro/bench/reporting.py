"""Plain-text report formatting for experiment results."""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_mapping", "banner"]


def banner(title: str) -> str:
    """A section header line."""
    rule = "=" * max(8, len(title))
    return f"\n{rule}\n{title}\n{rule}"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Align a table of values as monospaced text."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append(
            [
                f"{value:.4g}" if isinstance(value, float) else str(value)
                for value in row
            ]
        )
    widths = [
        max(len(line[column]) for line in rendered)
        for column in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(rendered):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_mapping(mapping: Dict[str, object], indent: int = 2) -> str:
    """Render a flat mapping as aligned key/value lines."""
    if not mapping:
        return ""
    width = max(len(str(key)) for key in mapping)
    pad = " " * indent
    lines = []
    for key, value in mapping.items():
        if isinstance(value, float):
            value = f"{value:.4g}"
        lines.append(f"{pad}{str(key).ljust(width)}  {value}")
    return "\n".join(lines)
