"""Channel calibration: measuring Γ(n, p, d) (paper Eq. 1 / Eq. 11).

The paper determines the relationship between channel throughput and its
three knobs — number of channels ``n``, packet size ``p`` (AMD only), and
data size ``d`` — by running a producer/consumer microbenchmark and uses
the measured surface as a cost-model input.  This module does exactly
that against the simulated device: a two-kernel chain pushes ``d`` bytes
through a channel, and the measured throughput is tabulated.

The resulting :class:`CalibrationTable` interpolates log-linearly in
``d`` and answers the model's two questions:

* ``throughput(n, p, d)`` — Γ itself (bytes per cycle);
* ``best_config(d)`` — the (n_max, p_max) maximizing throughput for a
  given transfer size (used by Eq. 6).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CalibrationError
from ..gpu import (
    ChannelConfig,
    DataLocation,
    DeviceSpec,
    KernelLaunch,
    KernelSpec,
    Simulator,
    StageSpec,
)

__all__ = [
    "CALIBRATION_SIZES",
    "CALIBRATION_CHANNELS",
    "CALIBRATION_PACKETS",
    "CalibrationPoint",
    "CalibrationTable",
    "calibrate_channels",
    "calibration_cache_stats",
    "clear_calibration_cache",
]

KIB = 1024

#: Data sizes (in 4-byte integers) swept by the calibration, matching the
#: paper's 512K–8M range (Fig 2 / Fig 23).
CALIBRATION_SIZES: Tuple[int, ...] = (
    256 * KIB,
    512 * KIB,
    1024 * KIB,
    2048 * KIB,
    4096 * KIB,
    8192 * KIB,
)
CALIBRATION_CHANNELS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)
CALIBRATION_PACKETS: Tuple[int, ...] = (8, 16, 32, 64)

#: The microbenchmark kernels: a producer that generates integers and a
#: consumer that folds them (Section 2.1's calibration experiment).
_PRODUCER = KernelSpec(
    name="k_producer",
    compute_instr=16.0,
    memory_instr=1.0,
    pm_per_workitem=16,
    lm_per_workitem=0,
)
_CONSUMER = KernelSpec(
    name="k_consumer",
    compute_instr=12.0,
    memory_instr=0.0,
    pm_per_workitem=16,
    lm_per_workitem=8,
)


@dataclass(frozen=True)
class CalibrationPoint:
    """One measured configuration."""

    num_channels: int
    packet_bytes: int
    data_bytes: int
    elapsed_cycles: float

    @property
    def bytes_per_cycle(self) -> float:
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.data_bytes / self.elapsed_cycles

    def throughput_gbps(self, device: DeviceSpec) -> float:
        seconds = self.elapsed_cycles / (device.core_mhz * 1e6)
        return self.data_bytes / 1e9 / max(seconds, 1e-18)


def _measure(
    device: DeviceSpec,
    num_integers: int,
    config: ChannelConfig,
    workgroups: Optional[int] = None,
) -> CalibrationPoint:
    """Run the producer/consumer chain once and time it.

    The work-group count scales with the input (one work-group per 64K
    integers, capped): small transfers cannot occupy the device, which is
    the paper's "when the input data is small, the channel is not fully
    utilized" — the rising left flank of Fig 2.
    """
    simulator = Simulator(device)
    data_bytes = num_integers * 4
    if workgroups is None:
        workgroups = int(min(16, max(2, num_integers // 65536)))
    producer = KernelLaunch(
        spec=_PRODUCER,
        tuples=num_integers,
        workgroups=workgroups,
        in_bytes_per_tuple=4,
        out_bytes_per_tuple=4,
        selectivity=1.0,
        input_location=DataLocation.GLOBAL,
        output_location=DataLocation.CHANNEL,
        label="producer",
    )
    consumer = KernelLaunch(
        spec=_CONSUMER,
        tuples=num_integers,
        workgroups=workgroups,
        in_bytes_per_tuple=4,
        out_bytes_per_tuple=0,
        selectivity=0.0,
        input_location=DataLocation.CHANNEL,
        output_location=DataLocation.NONE,
        label="consumer",
    )
    # Burst size per producer work-group must fit the channel; the total
    # in-flight budget is fixed across channel counts (the hardware's pipe
    # buffer does not grow with n — only its partitioning changes) and
    # holds two waves of work-group bursts so reservation granularity does
    # not serialize the producers.
    unit_bytes = data_bytes / workgroups
    burst_packets = math.ceil(unit_bytes / config.packet_bytes)
    total_budget = max(4096, 2 * workgroups * burst_packets)
    depth = math.ceil(total_budget / config.num_channels)
    sized = ChannelConfig(
        num_channels=config.num_channels,
        packet_bytes=config.packet_bytes,
        depth_packets=depth,
    )
    result = simulator.run_pipeline(
        [StageSpec(producer), StageSpec(consumer)],
        [sized],
        num_tiles=1,
        tile_tuples=num_integers,
        tile_bytes=data_bytes,
    )
    return CalibrationPoint(
        num_channels=config.num_channels,
        packet_bytes=config.packet_bytes,
        data_bytes=data_bytes,
        elapsed_cycles=result.elapsed_cycles,
    )


@dataclass
class CalibrationTable:
    """The measured Γ surface for one device."""

    device: DeviceSpec
    points: List[CalibrationPoint] = field(default_factory=list)
    _index: Dict[Tuple[int, int], List[CalibrationPoint]] = field(
        default_factory=dict, repr=False
    )

    def add(self, point: CalibrationPoint) -> None:
        self.points.append(point)
        key = (point.num_channels, point.packet_bytes)
        series = self._index.setdefault(key, [])
        series.append(point)
        series.sort(key=lambda p: p.data_bytes)

    def configurations(self) -> List[Tuple[int, int]]:
        return sorted(self._index)

    def series(self, num_channels: int, packet_bytes: int) -> List[CalibrationPoint]:
        try:
            return list(self._index[(num_channels, packet_bytes)])
        except KeyError:
            raise CalibrationError(
                f"no calibration for n={num_channels}, p={packet_bytes}"
            ) from None

    def throughput(
        self, num_channels: int, packet_bytes: int, data_bytes: float
    ) -> float:
        """Γ(n, p, d) in bytes per cycle, log-interpolated in ``d``."""
        series = self.series(num_channels, packet_bytes)
        if data_bytes <= 0:
            return series[0].bytes_per_cycle
        sizes = [point.data_bytes for point in series]
        if data_bytes <= sizes[0]:
            return series[0].bytes_per_cycle
        if data_bytes >= sizes[-1]:
            return series[-1].bytes_per_cycle
        for low, high in zip(series, series[1:]):
            if low.data_bytes <= data_bytes <= high.data_bytes:
                span = math.log(high.data_bytes) - math.log(low.data_bytes)
                frac = (math.log(data_bytes) - math.log(low.data_bytes)) / span
                return (
                    low.bytes_per_cycle
                    + (high.bytes_per_cycle - low.bytes_per_cycle) * frac
                )
        raise CalibrationError("interpolation fell through")  # pragma: no cover

    def best_config(self, data_bytes: float) -> Tuple[int, int]:
        """(n_max, p_max): the configuration maximizing Γ for ``d``."""
        best: Optional[Tuple[float, Tuple[int, int]]] = None
        for key in self.configurations():
            value = self.throughput(key[0], key[1], data_bytes)
            if best is None or value > best[0]:
                best = (value, key)
        if best is None:
            raise CalibrationError("empty calibration table")
        return best[1]


_CACHE: Dict[str, CalibrationTable] = {}
_CACHE_STATS: Dict[str, int] = {"hits": 0, "misses": 0}
#: Guards the module-level memo + stats (shared by worker-pool tasks).
_CACHE_LOCK = threading.RLock()


def calibration_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of the per-device Γ-table cache.

    A *hit* means a :func:`calibrate_channels` call was answered without
    re-running the producer/consumer sweep; a *miss* means the full grid
    was measured.  Surfaced by :class:`repro.serve.ServiceReport` so
    serving runs can show the calibration cost being paid once.
    """
    with _CACHE_LOCK:
        return dict(_CACHE_STATS)


def clear_calibration_cache() -> None:
    """Drop every memoized Γ table and reset the hit/miss counters."""
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_STATS["hits"] = 0
        _CACHE_STATS["misses"] = 0


def calibrate_channels(
    device: DeviceSpec,
    sizes: Sequence[int] = CALIBRATION_SIZES,
    channels: Sequence[int] = CALIBRATION_CHANNELS,
    packets: Optional[Sequence[int]] = None,
    use_cache: bool = True,
) -> CalibrationTable:
    """Sweep the calibration grid on ``device`` (cached per device name).

    NVIDIA's packet size is not user-tunable (Appendix A.1), so its grid
    collapses to the default packet size.
    """
    with _CACHE_LOCK:
        if use_cache and device.name in _CACHE:
            _CACHE_STATS["hits"] += 1
            return _CACHE[device.name]
        _CACHE_STATS["misses"] += 1
    if packets is None:
        packets = CALIBRATION_PACKETS if device.tunable_packet_size else (16,)
    table = CalibrationTable(device=device)
    for packet_bytes in packets:
        for num_channels in channels:
            config = ChannelConfig(
                num_channels=num_channels, packet_bytes=packet_bytes
            )
            for num_integers in sizes:
                table.add(_measure(device, num_integers, config))
    if use_cache:
        with _CACHE_LOCK:
            _CACHE[device.name] = table
    return table
