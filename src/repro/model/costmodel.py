"""The analytical cost model (paper Section 4, Eqs. 2–9).

Given a segment description, a candidate configuration (tile size Δ,
channel setting, per-kernel work-group counts), the device specification,
and the calibrated Γ, the model predicts the segment's execution time:

* **Eq. 2** — resource feasibility of the concurrent work-group counts;
* **Eq. 3** — ``req_Ki``: rounds needed to run all work-groups;
* **Eq. 4** — computation cost from instruction counts;
* **Eq. 5** — memory cost of leaf / after-blocking kernels (global);
* **Eq. 6** — channel cost of interior kernels, via Γ(n_max, p_max, Δλ);
* **Eq. 7** — ``T_Ki = c_Ki + m_Ki``;
* **Eq. 8** — delay from imbalanced producer/consumer rates;
* **Eq. 9** — ``T_Sk = (1/C) Σ T_Ki + delay``.

The model deliberately assumes ideal concurrency (the 1/C factor), which
— as the paper observes in Section 5.2 — makes it *underestimate*: the
event simulator additionally pays backpressure, residency swaps, and
device-level resource contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..gpu import DeviceSpec, KernelLaunch
from ..gpu.memory import MemoryModel
from ..gpu.occupancy import (
    allocate_segment_occupancy,
    check_segment_feasible,
    scheduling_contention,
)
from ..core.config import GPLConfig
from .calibration import CalibrationTable
from .notation import KernelCostInput, SegmentCostInput

__all__ = ["KernelEstimate", "SegmentEstimate", "CostModel"]


@dataclass(frozen=True)
class KernelEstimate:
    """Per-kernel model output (Eq. 4–7), in cycles per tile."""

    name: str
    compute_cycles: float  # c_Ki
    memory_cycles: float  # m_Ki
    tiles: int  # r_Ki

    @property
    def time_cycles(self) -> float:
        """T_Ki (Eq. 7)."""
        return self.compute_cycles + self.memory_cycles

    @property
    def total_cycles(self) -> float:
        return self.time_cycles * self.tiles


@dataclass(frozen=True)
class SegmentEstimate:
    """Model output for one segment (Eq. 8–9)."""

    name: str
    kernels: Tuple[KernelEstimate, ...]
    delay_cycles: float  # delay_Sk
    total_cycles: float  # T_Sk
    num_tiles: int
    feasible: bool = True


class CostModel:
    """Evaluates configurations against segments (paper Section 4.1)."""

    def __init__(self, device: DeviceSpec, calibration: CalibrationTable):
        self.device = device
        self.calibration = calibration
        self.memory = MemoryModel.for_device(device)

    # ------------------------------------------------------------------

    def estimate_segment(
        self, segment: SegmentCostInput, config: GPLConfig
    ) -> SegmentEstimate:
        """Predict one segment's execution time under ``config``."""
        if not segment.kernels:
            return SegmentEstimate(segment.name, (), 0.0, 0.0, 0)

        tile_rows = max(1.0, config.tile_bytes / segment.source_width)
        num_tiles = max(1, math.ceil(segment.source_rows / tile_rows))
        tile_rows = segment.source_rows / num_tiles

        launches = self._launches(segment, config, tile_rows)
        feasible = check_segment_feasible(launches, self.device)
        contention = 1.0
        if not feasible:
            fitted = config.fit_workgroups(launches, self.device)
            requested = sum(launch.workgroups for launch in launches)
            launches = [
                launch.with_workgroups(fitted[index])
                for index, launch in enumerate(launches)
            ]
            contention = scheduling_contention(
                requested, sum(fitted.values())
            )
        shares = allocate_segment_occupancy(launches, self.device)
        resident = max(
            1, min(len(segment.kernels), self.device.concurrency)
        )
        boost = len(segment.kernels) / resident

        # Working set of the pipelined execution: tile + all live channel
        # flows (Section 3.3); decides Γ's cache-locality regime.
        working_set = float(config.tile_bytes)
        flow = float(config.tile_bytes)
        for kernel in segment.kernels[:-1]:
            flow = max(
                1.0,
                flow
                * kernel.selectivity
                * (kernel.out_width / max(1, kernel.in_width)),
            )
            working_set += flow

        estimates: List[KernelEstimate] = []
        tuples = tile_rows
        for kernel, launch in zip(segment.kernels, launches):
            share = shares[launch.display_name]
            active = max(1.0, min(
                float(launch.workgroups),
                share.active_workgroups * boost,
            ))
            compute = self._compute_cost(kernel, tuples, active) * contention
            memory = (
                self._memory_cost(
                    kernel, tuples, active, config, working_set
                )
                * contention
            )
            estimates.append(
                KernelEstimate(
                    name=kernel.spec.name,
                    compute_cycles=compute,
                    memory_cycles=memory,
                    tiles=num_tiles,
                )
            )
            tuples *= kernel.selectivity

        delay = self._delay_cost(estimates)
        concurrency = max(
            1, min(len(segment.kernels), self.device.concurrency)
        )
        pipeline_total = (
            sum(estimate.total_cycles for estimate in estimates) / concurrency
        )
        # Pipeline fill/drain: the pipe is empty for roughly one tile's
        # worth of work at the start and end; with many small tiles this
        # amortizes away, with few large tiles it does not (the right
        # flank of Fig 12 beyond cache effects).
        fill = (
            pipeline_total / num_tiles * (concurrency - 1) / concurrency
            if len(segment.kernels) > 1
            else 0.0
        )
        # Scheduler costs: one launch per kernel, one dispatch per tile.
        overheads = (
            len(segment.kernels) * self.device.launch_overhead_cycles
            + num_tiles * self.device.tile_dispatch_cycles
        )
        # A pipeline cannot finish faster than its slowest stage: the
        # bottleneck kernel bounds throughput however many kernels overlap.
        bottleneck = max(
            (estimate.total_cycles for estimate in estimates), default=0.0
        )
        total = max(pipeline_total + fill + delay, bottleneck) + overheads
        return SegmentEstimate(
            name=segment.name,
            kernels=tuple(estimates),
            delay_cycles=delay,
            total_cycles=total,
            num_tiles=num_tiles,
            feasible=feasible,
        )

    def estimate_plan(
        self,
        segments: Sequence[SegmentCostInput],
        configs: Optional[Dict[str, GPLConfig]] = None,
        default: Optional[GPLConfig] = None,
    ) -> float:
        """Total predicted cycles of a plan (segments run one by one)."""
        default = default or GPLConfig()
        configs = configs or {}
        return sum(
            self.estimate_segment(
                segment, configs.get(segment.name, default)
            ).total_cycles
            for segment in segments
        )

    # ------------------------------------------------------------------

    def _launches(
        self,
        segment: SegmentCostInput,
        config: GPLConfig,
        tile_rows: float,
    ) -> List[KernelLaunch]:
        launches = []
        for index, kernel in enumerate(segment.kernels):
            launches.append(
                KernelLaunch(
                    spec=kernel.spec,
                    tuples=max(1, int(tile_rows)),
                    workgroups=config.workgroups_for_stage(index),
                    in_bytes_per_tuple=kernel.in_width,
                    out_bytes_per_tuple=kernel.out_width,
                    selectivity=kernel.selectivity,
                    label=f"{kernel.spec.name}#{index}",
                )
            )
        return launches

    def _compute_cost(
        self, kernel: KernelCostInput, tuples: float, active: float
    ) -> float:
        """Eq. 3 + Eq. 4: issue cycles divided over active work-groups."""
        issue = (
            tuples
            * kernel.spec.instr_per_tuple
            * self.device.instruction_cycles
            / kernel.spec.workgroup_size
        )
        return issue / active

    def _memory_cost(
        self,
        kernel: KernelCostInput,
        tuples: float,
        active: float,
        config: GPLConfig,
        working_set: float,
    ) -> float:
        """Eq. 5 for leaf kernels, Eq. 6 for channel-fed kernels."""
        if kernel.is_leaf:
            # Cold streaming read of the tile (set_l / set_b, Eq. 5).
            hit = self.memory.cache.streaming_hit_ratio(8.0)
            accesses = kernel.spec.memory_instr * tuples
            cost = self.memory.access_cycles(accesses, hit) / active
        else:
            # Eq. 6: channel volume over calibrated throughput.  Γ is
            # evaluated at the pipelined working set (tile plus live
            # flows), which decides cache residency of the packets; the
            # transfer parallelizes across the kernel's active
            # work-groups.
            data_bytes = tuples * kernel.in_width
            if data_bytes > 0:
                locality_bytes = max(data_bytes, working_set)
                n_max, p_max = self._channel_choice(config, data_bytes)
                gamma = self.calibration.throughput(
                    n_max, p_max, locality_bytes
                )
                if gamma <= 0:
                    raise ModelError("calibrated throughput is zero")
                cost = data_bytes / gamma / active
            else:
                cost = 0.0
        if kernel.aux_reads_per_tuple > 0:
            # Cache contention between the streamed tile (plus flows) and
            # the probed structure — mirrors the simulator's rule.
            aux_hit = self.memory.cache.hit_ratio(
                kernel.aux_working_set_bytes + 0.5 * working_set
            )
            aux = kernel.aux_reads_per_tuple * tuples
            cost += self.memory.access_cycles(aux, aux_hit) / active
        return cost

    def _channel_choice(
        self, config: GPLConfig, data_bytes: float
    ) -> Tuple[int, int]:
        """(n_max, p_max): from the config if pinned, else from Γ."""
        if config.channel is not None:
            return (
                config.channel.num_channels,
                config.channel.packet_bytes
                if self.device.tunable_packet_size
                else 16,
            )
        return self.calibration.best_config(data_bytes)

    @staticmethod
    def _delay_cost(estimates: Sequence[KernelEstimate]) -> float:
        """Eq. 8: accumulated rate imbalance between adjacent kernels."""
        delay = 0.0
        for left, right in zip(estimates, estimates[1:]):
            delay += abs(left.total_cycles - right.total_cycles)
        # The imbalance manifests once per pipeline drain, not per tile
        # pair; scale to the pipeline's critical imbalance.
        return delay / 2.0
