"""Cost-model inputs: the notation of the paper's Table 2, as data.

Table 2 groups the model's parameters by provenance:

* *platform input* — lives on :class:`~repro.gpu.device.DeviceSpec`
  (#CU, w, C, mem_l, c_l, pm_max, lm_max, wg_max);
* *program analysis* — per-kernel instruction counts and memory
  footprints, carried by :class:`~repro.gpu.kernel.KernelSpec`;
* *query optimizer* — data-reduction ratios λ and leaf/after-blocking
  kernel sets, captured here per kernel;
* *calibration* — Γ, provided by
  :class:`~repro.model.calibration.CalibrationTable`;
* *model output* — Δ, n, p, wg_Ki and the time estimates computed by
  :class:`~repro.model.costmodel.CostModel`.

This module defines the structures for the middle group and a builder
that derives them from a lowered physical plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..gpu.kernel import KernelSpec
from ..plans import PhysicalPlan, Pipeline
from ..plans.physical import BuildSink
from ..relational import Database

__all__ = ["KernelCostInput", "SegmentCostInput", "plan_cost_inputs"]


@dataclass(frozen=True)
class KernelCostInput:
    """Everything the cost model needs to know about one kernel.

    ``selectivity`` is the optimizer's λ expressed as tuple survival;
    combined with the widths it yields the byte-level λ of Table 2.
    ``is_leaf`` marks members of set_l (they stream tiles from global
    memory); within a segment every non-leaf kernel receives input via a
    channel.  (set_b membership — first kernel after a blocking kernel —
    coincides with being a leaf of the *next* segment in this pipeline
    decomposition, because segments materialize their outputs.)
    """

    spec: KernelSpec
    selectivity: float
    in_width: int
    out_width: int
    aux_reads_per_tuple: float = 0.0
    aux_working_set_bytes: float = 0.0
    is_leaf: bool = False


@dataclass(frozen=True)
class SegmentCostInput:
    """One segment (pipeline) as the cost model sees it."""

    name: str
    kernels: Tuple[KernelCostInput, ...]
    source_rows: float
    source_width: int

    @property
    def source_bytes(self) -> float:
        return self.source_rows * self.source_width


def _pipeline_cost_input(
    pipeline: Pipeline,
    source_rows: float,
    aux_sizes: Dict[str, float],
) -> Tuple[SegmentCostInput, float]:
    """Build one segment's input; returns it plus its output row estimate."""
    kernels: List[KernelCostInput] = []
    templates = []
    for op in pipeline.ops:
        templates.extend(op.gpl_kernels())
    templates.extend(pipeline.sink.gpl_kernels())

    rows = source_rows
    for position, template in enumerate(templates):
        aux_ws = 0.0
        if template.aux_build_id is not None:
            aux_ws = aux_sizes.get(template.aux_build_id, 0.0)
            aux_ws /= max(1, getattr(template, "aux_partitions", 1))
        kernels.append(
            KernelCostInput(
                spec=template.spec,
                selectivity=template.est_selectivity,
                in_width=template.in_width,
                out_width=template.out_width,
                aux_reads_per_tuple=template.aux_reads_per_tuple,
                aux_working_set_bytes=aux_ws,
                is_leaf=position == 0,
            )
        )
        rows *= template.est_selectivity

    segment = SegmentCostInput(
        name=pipeline.pipeline_id,
        kernels=tuple(kernels),
        source_rows=source_rows,
        source_width=max(1, pipeline.source_row_width),
    )
    return segment, rows


def plan_cost_inputs(
    plan: PhysicalPlan, database: Database
) -> List[SegmentCostInput]:
    """Derive every segment's cost input from a lowered plan.

    Row estimates flow through the pipelines in execution order; hash
    table sizes estimated for build pipelines feed the probes'
    auxiliary working sets.
    """
    inputs: List[SegmentCostInput] = []
    output_rows: Dict[str, float] = {}
    aux_sizes: Dict[str, float] = {}

    for pipeline in plan.pipelines:
        if pipeline.source_table is not None:
            source_rows = float(database.num_rows(pipeline.source_table))
        else:
            source_rows = output_rows.get(pipeline.source_intermediate, 1.0)
        segment, out_rows = _pipeline_cost_input(
            pipeline, source_rows, aux_sizes
        )
        inputs.append(segment)
        output_rows[pipeline.output_id] = max(out_rows, 1.0)
        if isinstance(pipeline.sink, BuildSink):
            # Estimated hash-table bytes: surviving rows x (key + payload).
            survivors = source_rows
            for op in pipeline.ops:
                for template in op.gpl_kernels():
                    survivors *= template.est_selectivity
            width = 8.0 * (1 + len(pipeline.sink.payload_columns))
            aux_sizes[pipeline.sink.build_id] = survivors * width
    return inputs
