"""Configuration search: picking Δ, n, p, and wg_Ki (paper Section 4.1).

The paper constrains each parameter to a feasible range and exhaustively
searches the reduced space per query segment:

* tile size Δ between 256 KB and 16 MB (the Fig 12 sweep range);
* number of channels 1–16 ("throughput continues to drop when the number
  of channels is over 16"), chosen with the packet size from Γ's argmax
  for the segment's transfer volume;
* work-group counts as integral multiples of #CU, swept through the S_1–
  S_7 doubling ladder of Section 5.2.

The smallest predicted ``T_Sk`` wins (query optimization takes a few
milliseconds, "ignorable compared with the query processing time").
"""

from __future__ import annotations

import hashlib
import math
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import GPLConfig
from ..gpu import ChannelConfig, DeviceSpec
from ..obs.tracing import maybe_span
from .calibration import CalibrationTable
from .costmodel import CostModel, SegmentEstimate
from .notation import SegmentCostInput

__all__ = [
    "TILE_SIZE_CANDIDATES",
    "workgroup_ladder",
    "SegmentChoice",
    "ConfigurationSearch",
    "search_cache_stats",
    "clear_search_cache",
    "set_search_cache_limit",
    "DEFAULT_SEARCH_CACHE_LIMIT",
]

KIB = 1024
MIB = 1024 * 1024

#: Δ candidates: 256 KB ... 16 MB in powers of two (Fig 12's sweep).
TILE_SIZE_CANDIDATES: Tuple[int, ...] = (
    256 * KIB,
    512 * KIB,
    1 * MIB,
    2 * MIB,
    4 * MIB,
    8 * MIB,
    16 * MIB,
)


def workgroup_ladder(device: DeviceSpec, steps: int = 7) -> List[int]:
    """The S_1..S_7 work-group settings: S_i = S_1 * 2^(i-1).

    S_1 is 2 for the AMD GPU in the paper; we generalize to one quarter
    of #CU (>= 2) so the ladder scales to other devices.
    """
    base = max(2, device.num_cus // 4)
    return [base * (2 ** i) for i in range(steps)]


@dataclass(frozen=True)
class SegmentChoice:
    """Search outcome for one segment."""

    segment: str
    config: GPLConfig
    estimate: SegmentEstimate

    @property
    def predicted_cycles(self) -> float:
        return self.estimate.total_cycles


#: Default bound on memoized search outcomes.  A long-lived serving
#: process sees an unbounded stream of distinct query shapes (every new
#: scale factor changes the segment fingerprints), so the memo must not
#: grow without limit; 1024 entries comfortably covers the catalogue at
#: several scale factors while capping memory at a few MiB.
DEFAULT_SEARCH_CACHE_LIMIT = 1024

#: Memoized search outcomes, keyed by (device name, segment/search
#: fingerprint).  The paper argues the search is "ignorable compared with
#: the query processing time" *per query*; a serving workload pays it per
#: *query shape* instead (same idea as the Γ cache one level down).
#: Kept in LRU order: hits refresh an entry, inserts beyond the limit
#: evict the least recently used one.
_SEARCH_CACHE: "OrderedDict[Tuple[str, str], SegmentChoice]" = OrderedDict()
_SEARCH_CACHE_LIMIT = DEFAULT_SEARCH_CACHE_LIMIT
_SEARCH_STATS: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}
#: Guards the module-level memo + stats (shared by worker-pool tasks).
_SEARCH_LOCK = threading.RLock()


def search_cache_stats() -> Dict[str, int]:
    """Hit/miss/eviction counters and current size of the search memo."""
    with _SEARCH_LOCK:
        stats = dict(_SEARCH_STATS)
        stats["size"] = len(_SEARCH_CACHE)
        stats["limit"] = _SEARCH_CACHE_LIMIT
        return stats


def clear_search_cache() -> None:
    """Drop every memoized search outcome and reset the counters."""
    with _SEARCH_LOCK:
        _SEARCH_CACHE.clear()
        _SEARCH_STATS["hits"] = 0
        _SEARCH_STATS["misses"] = 0
        _SEARCH_STATS["evictions"] = 0


def set_search_cache_limit(limit: int) -> None:
    """Change the LRU bound; shrinking evicts oldest entries immediately."""
    global _SEARCH_CACHE_LIMIT
    if limit < 1:
        raise ValueError("search cache limit must be at least 1")
    with _SEARCH_LOCK:
        _SEARCH_CACHE_LIMIT = int(limit)
        while len(_SEARCH_CACHE) > _SEARCH_CACHE_LIMIT:
            _SEARCH_CACHE.popitem(last=False)
            _SEARCH_STATS["evictions"] += 1


class ConfigurationSearch:
    """Exhaustive search over the reduced parameter space.

    ``use_cache`` (default on) memoizes :meth:`best_for_segment` per
    (device, segment shape, candidate grid): every field of
    :class:`~repro.model.notation.SegmentCostInput` is a frozen dataclass,
    so its ``repr`` fingerprints the search input exactly, and the search
    is deterministic, so replaying it could only waste time.
    """

    def __init__(
        self,
        device: DeviceSpec,
        calibration: CalibrationTable,
        tile_candidates: Sequence[int] = TILE_SIZE_CANDIDATES,
        workgroup_candidates: Optional[Sequence[int]] = None,
        use_cache: bool = True,
    ):
        self.device = device
        self.calibration = calibration
        self.model = CostModel(device, calibration)
        self.tile_candidates = tuple(tile_candidates)
        self.workgroup_candidates = tuple(
            workgroup_candidates
            if workgroup_candidates is not None
            else workgroup_ladder(device)
        )
        self.use_cache = use_cache
        # The Γ surface is an input to the search; fingerprint it once so
        # a custom (non-default) calibration cannot alias a cached entry.
        self._calibration_digest = hashlib.sha1(
            repr(calibration.points).encode()
        ).hexdigest()

    def _cache_key(self, segment: SegmentCostInput) -> Tuple[str, str]:
        payload = repr(
            (
                segment,
                self.tile_candidates,
                self.workgroup_candidates,
                self._calibration_digest,
            )
        )
        return (
            self.device.name,
            hashlib.sha1(payload.encode()).hexdigest(),
        )

    def best_for_segment(self, segment: SegmentCostInput) -> SegmentChoice:
        """Minimize T_Sk over (Δ, wg ladder), with (n, p) from Γ."""
        with maybe_span(
            "search.segment", category="search", segment=segment.name
        ) as span:
            if self.use_cache:
                key = self._cache_key(segment)
                with _SEARCH_LOCK:
                    cached = _SEARCH_CACHE.get(key)
                    if cached is not None:
                        _SEARCH_CACHE.move_to_end(key)
                        _SEARCH_STATS["hits"] += 1
                    else:
                        _SEARCH_STATS["misses"] += 1
                if cached is not None:
                    if span is not None:
                        span.attrs["cached"] = True
                    return cached
            if span is not None:
                span.attrs["cached"] = False
            best: Optional[SegmentChoice] = None
            for tile_bytes in self.tile_candidates:
                channel = self._channel_for(segment, tile_bytes)
                for workgroups in self.workgroup_candidates:
                    config = GPLConfig(
                        tile_bytes=tile_bytes,
                        channel=channel,
                        default_workgroups=workgroups,
                    )
                    estimate = self.model.estimate_segment(segment, config)
                    if best is None or (
                        estimate.total_cycles < best.predicted_cycles
                    ):
                        best = SegmentChoice(
                            segment=segment.name,
                            config=config,
                            estimate=estimate,
                        )
            assert best is not None  # tile_candidates is never empty
            if self.use_cache:
                with _SEARCH_LOCK:
                    _SEARCH_CACHE[self._cache_key(segment)] = best
                    while len(_SEARCH_CACHE) > _SEARCH_CACHE_LIMIT:
                        _SEARCH_CACHE.popitem(last=False)
                        _SEARCH_STATS["evictions"] += 1
            return best

    def optimize_plan(
        self, segments: Sequence[SegmentCostInput]
    ) -> Tuple[Dict[str, GPLConfig], float]:
        """Per-segment optimal configs and the total predicted cycles."""
        configs: Dict[str, GPLConfig] = {}
        total = 0.0
        for segment in segments:
            choice = self.best_for_segment(segment)
            configs[segment.name] = choice.config
            total += choice.predicted_cycles
        return configs, total

    # ------------------------------------------------------------------

    def _channel_for(
        self, segment: SegmentCostInput, tile_bytes: int
    ) -> ChannelConfig:
        """(n_max, p_max) from Γ for the segment's typical edge volume.

        The representative transfer size is Δ x λ of the first channel
        edge (Eq. 6's d); deeper edges shrink with selectivity, and Γ's
        argmax is stable across neighbouring sizes.
        """
        if len(segment.kernels) < 2:
            return ChannelConfig()
        first = segment.kernels[0]
        data_bytes = max(
            1.0,
            tile_bytes
            * first.selectivity
            * (first.out_width / max(1, first.in_width)),
        )
        n_max, p_max = self.calibration.best_config(data_bytes)
        return ChannelConfig(num_channels=n_max, packet_bytes=p_max)
