"""Analytical model: calibration (Γ), cost model (Eqs. 2–9), and the
configuration search over Δ, n, p, wg_Ki."""

from .calibration import (
    CALIBRATION_CHANNELS,
    CALIBRATION_PACKETS,
    CALIBRATION_SIZES,
    CalibrationPoint,
    CalibrationTable,
    calibrate_channels,
    calibration_cache_stats,
    clear_calibration_cache,
)
from .costmodel import CostModel, KernelEstimate, SegmentEstimate
from .notation import KernelCostInput, SegmentCostInput, plan_cost_inputs
from .search import (
    TILE_SIZE_CANDIDATES,
    ConfigurationSearch,
    SegmentChoice,
    clear_search_cache,
    search_cache_stats,
    workgroup_ladder,
)

__all__ = [
    "CALIBRATION_CHANNELS",
    "CALIBRATION_PACKETS",
    "CALIBRATION_SIZES",
    "CalibrationPoint",
    "CalibrationTable",
    "calibrate_channels",
    "calibration_cache_stats",
    "clear_calibration_cache",
    "CostModel",
    "KernelEstimate",
    "SegmentEstimate",
    "KernelCostInput",
    "SegmentCostInput",
    "plan_cost_inputs",
    "TILE_SIZE_CANDIDATES",
    "ConfigurationSearch",
    "SegmentChoice",
    "clear_search_cache",
    "search_cache_stats",
    "workgroup_ladder",
]
