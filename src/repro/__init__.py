"""repro: a full reproduction of "GPL: A GPU-based Pipelined Query
Processing Engine" (SIGMOD 2016) on a simulated GPU substrate.

Quickstart::

    from repro import AMD_A10, GPLEngine, KBEEngine, generate_database, q14

    db = generate_database(scale=0.01)
    gpl = GPLEngine(db, AMD_A10)
    result = gpl.execute(q14())
    print(result.rows(), result.elapsed_ms)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from .cancel import CancellationToken
from .core import (
    CheckpointStore,
    GPLConfig,
    GPLEngine,
    GPLWithoutCEEngine,
    QueryResult,
    ResilienceReport,
    ResilientExecutor,
)
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from .gpu import AMD_A10, NVIDIA_K40, ChannelConfig, DeviceSpec, device_by_name
from .kbe import KBEEngine
from .model import CostModel, ConfigurationSearch, calibrate_channels
from .ocelot import OcelotEngine
from .plans import QuerySpec
from .serve import PlanCache, QueryService, ServiceReport
from .shard import DevicePool, DeviceSlot, ShardedExecutor, ShardReport
from .ssb import generate_ssb, ssb_query
from .tpch import generate_database, q5, q7, q8, q9, q14, query_by_name

__version__ = "1.0.0"

__all__ = [
    "CancellationToken",
    "CheckpointStore",
    "GPLConfig",
    "GPLEngine",
    "GPLWithoutCEEngine",
    "QueryResult",
    "ResilienceReport",
    "ResilientExecutor",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "AMD_A10",
    "NVIDIA_K40",
    "ChannelConfig",
    "DeviceSpec",
    "device_by_name",
    "KBEEngine",
    "OcelotEngine",
    "CostModel",
    "ConfigurationSearch",
    "calibrate_channels",
    "QuerySpec",
    "PlanCache",
    "QueryService",
    "ServiceReport",
    "DevicePool",
    "DeviceSlot",
    "ShardedExecutor",
    "ShardReport",
    "generate_ssb",
    "ssb_query",
    "generate_database",
    "q5",
    "q7",
    "q8",
    "q9",
    "q14",
    "query_by_name",
    "__version__",
]
