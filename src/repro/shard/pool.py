"""Device pools: N independently-seeded simulated GPUs for sharding.

A :class:`DevicePool` is the fleet abstraction the scatter-gather
executor runs against.  Each :class:`DeviceSlot` pairs one simulator
preset (:data:`~repro.gpu.AMD_A10` / :data:`~repro.gpu.NVIDIA_K40`,
mixable) with a per-device memory budget, the device's concurrent-kernel
slots, and a deterministically derived seed so per-device fault
schedules (and any future per-device randomness) are independent but
reproducible: the same pool spec always yields the same seeds.

The pool itself holds no mutable execution state — simulators are built
per run by the engines, exactly as in single-device execution — so one
pool can back any number of concurrent queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import SchemaError
from ..gpu import AMD_A10, DeviceSpec, device_by_name
from ..relational.partition import _splitmix64

__all__ = ["DeviceSlot", "DevicePool", "DEFAULT_POOL_SEED"]

#: Default pool seed: the SIGMOD 2016 camera-ready date, like the rest of
#: the repo's deterministic seeds.
DEFAULT_POOL_SEED = 20160626


def _derive_seed(base: int, index: int) -> int:
    """Independent per-device seed via the splitmix64 finalizer."""
    mixed = _splitmix64(np.asarray([base + index], dtype=np.int64))
    return int(mixed[0] & np.uint64(0x7FFFFFFF))


@dataclass(frozen=True)
class DeviceSlot:
    """One pool member: a device preset plus its per-device envelope."""

    index: int
    spec: DeviceSpec
    #: Memory-budget ceiling for queries admitted to this device;
    #: ``None`` means the device's full global memory.
    memory_budget_bytes: Optional[float]
    #: Deterministic per-device seed (fault schedules, jitter).
    seed: int

    @property
    def name(self) -> str:
        """Stable slot label used in breaker scopes and metrics."""
        return f"dev{self.index}"

    @property
    def kernel_slots(self) -> int:
        """Concurrent-kernel slots this device offers (the spec's C)."""
        return self.spec.concurrency

    @property
    def effective_budget_bytes(self) -> float:
        if self.memory_budget_bytes is not None:
            return float(self.memory_budget_bytes)
        return float(self.spec.global_mem_bytes)

    def describe(self) -> str:
        return (
            f"{self.name}[{self.spec.vendor} {self.spec.name}, "
            f"slots={self.kernel_slots}, "
            f"budget={self.effective_budget_bytes / 2**20:.0f}MiB, "
            f"seed={self.seed}]"
        )


class DevicePool:
    """An ordered, immutable collection of :class:`DeviceSlot`.

    ``devices`` accepts a count (``4`` → four default presets), a
    sequence of preset names (``["amd", "nvidia"]``), or a sequence of
    :class:`DeviceSpec` instances.  ``memory_budget_bytes`` is either one
    ceiling applied to every device or a per-device sequence.
    """

    def __init__(
        self,
        devices: Union[int, Sequence[Union[str, DeviceSpec]]] = 2,
        memory_budget_bytes: Union[None, float, Sequence[Optional[float]]] = None,
        seed: int = DEFAULT_POOL_SEED,
    ) -> None:
        specs = self._resolve_specs(devices)
        budgets = self._resolve_budgets(memory_budget_bytes, len(specs))
        self._slots: Tuple[DeviceSlot, ...] = tuple(
            DeviceSlot(
                index=index,
                spec=spec,
                memory_budget_bytes=budget,
                seed=_derive_seed(seed, index),
            )
            for index, (spec, budget) in enumerate(zip(specs, budgets))
        )
        self.seed = seed

    @staticmethod
    def _resolve_specs(
        devices: Union[int, Sequence[Union[str, DeviceSpec]]],
    ) -> List[DeviceSpec]:
        if isinstance(devices, int):
            if devices < 1:
                raise SchemaError("a device pool needs at least one device")
            return [AMD_A10] * devices
        specs: List[DeviceSpec] = []
        for entry in devices:
            if isinstance(entry, DeviceSpec):
                specs.append(entry)
            else:
                try:
                    specs.append(device_by_name(entry))
                except ValueError as error:
                    raise SchemaError(str(error)) from None
        if not specs:
            raise SchemaError("a device pool needs at least one device")
        return specs

    @staticmethod
    def _resolve_budgets(
        budgets: Union[None, float, Sequence[Optional[float]]],
        count: int,
    ) -> List[Optional[float]]:
        if budgets is None or isinstance(budgets, (int, float)):
            return [budgets] * count  # type: ignore[list-item]
        resolved = list(budgets)
        if len(resolved) != count:
            raise SchemaError(
                f"{len(resolved)} memory budgets for {count} devices"
            )
        return resolved

    @classmethod
    def from_spec(
        cls,
        text: str,
        memory_budget_bytes: Union[None, float, Sequence[Optional[float]]] = None,
        seed: int = DEFAULT_POOL_SEED,
        default: str = "amd",
    ) -> "DevicePool":
        """Parse a CLI-style pool spec.

        ``"4"`` → four devices of the ``default`` preset;
        ``"amd,amd,nvidia"`` → the named presets in order.
        """
        stripped = text.strip()
        if not stripped:
            raise SchemaError("empty device pool spec")
        if stripped.isdigit():
            return cls(
                [default] * int(stripped), memory_budget_bytes, seed
            )
        names = [part.strip() for part in stripped.split(",") if part.strip()]
        return cls(names, memory_budget_bytes, seed)

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self._slots)

    def __iter__(self) -> Iterator[DeviceSlot]:
        return iter(self._slots)

    @property
    def slots(self) -> Tuple[DeviceSlot, ...]:
        return self._slots

    def slot(self, index: int) -> DeviceSlot:
        return self._slots[index]

    @property
    def specs(self) -> Tuple[DeviceSpec, ...]:
        return tuple(slot.spec for slot in self._slots)

    @property
    def total_kernel_slots(self) -> int:
        return sum(slot.kernel_slots for slot in self._slots)

    def describe(self) -> str:
        members = ", ".join(slot.describe() for slot in self._slots)
        return f"DevicePool({len(self._slots)} devices: {members})"
