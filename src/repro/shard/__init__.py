"""Multi-device sharded execution: device pools + scatter-gather plans.

This layer scales the single-device GPL stack horizontally: a
:class:`DevicePool` of independently-seeded simulated GPUs, deterministic
fact-table partitioning (:mod:`repro.relational.partition`), and a
:class:`ShardedExecutor` that scatters one logical query across the pool
and gathers the partials with a correctness-preserving merge.  See
``docs/sharding.md`` for the full lifecycle.
"""

from .executor import ShardedExecutor, ShardRecord, ShardReport
from .health import POOL_HEALTH_STATES, PoolHealth
from .planner import (
    PARTIALS_TABLE,
    ShardPlan,
    choose_partition_key,
    decompose,
    substitute_columns,
)
from .pool import DEFAULT_POOL_SEED, DevicePool, DeviceSlot

__all__ = [
    "DEFAULT_POOL_SEED",
    "DevicePool",
    "DeviceSlot",
    "PARTIALS_TABLE",
    "POOL_HEALTH_STATES",
    "PoolHealth",
    "ShardPlan",
    "ShardRecord",
    "ShardReport",
    "ShardedExecutor",
    "choose_partition_key",
    "decompose",
    "substitute_columns",
]
