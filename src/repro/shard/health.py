"""Per-device pool health: the failure-domain tracker for sharded pools.

A :class:`~repro.serve.breaker.CircuitBreaker` protects one *query shape*
on the GPL tier; :class:`PoolHealth` protects one *device slot* across
every query that touches it.  A device whose shards keep exhausting their
resilience chain (or that a ``device_down`` fault marks lost outright)
should stop receiving shards entirely — relocating every shard off a dead
device per query burns the relocation budget without learning anything.

Same four-phase machine as the breaker, counted in completed sharded
queries so the lifecycle is deterministic for a given workload:

* ``healthy`` — full participation; a failure moves the slot to suspect.
* ``suspect`` — still serving; ``threshold`` *consecutive* shard failures
  quarantine the slot, one success clears it back to healthy.
* ``quarantined`` — excluded from scatter and relocation targets for
  ``cooldown`` completed queries, then moved to probation.
* ``probation`` — half-open: the slot serves shards again with a budget
  of ``probe_budget`` failures; one success readmits it to healthy,
  exhausting the budget re-quarantines it.

``threshold=0`` disables tracking entirely (every slot always available,
all hooks are no-ops) — the single-device and legacy pooled paths.

If *every* slot is quarantined the pool keeps serving on all of them:
a fully-dead pool has nothing better to offer, and refusing to schedule
would turn a degraded pool into a hung one.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["POOL_HEALTH_STATES", "PoolHealth"]

#: The states a slot reports (also the order used in summaries).
POOL_HEALTH_STATES = ("healthy", "suspect", "quarantined", "probation")


class PoolHealth:
    """Health tracker for the slots of one :class:`~repro.shard.DevicePool`."""

    def __init__(
        self,
        num_slots: int,
        threshold: int = 2,
        cooldown: int = 2,
        probe_budget: int = 1,
    ):
        if num_slots < 1:
            raise ValueError("pool health needs at least one slot")
        if threshold < 0:
            raise ValueError("quarantine threshold must be >= 0 (0 disables)")
        if cooldown < 1:
            raise ValueError("quarantine cooldown must be at least 1")
        if probe_budget < 1:
            raise ValueError("quarantine probe budget must be at least 1")
        self.num_slots = num_slots
        self.threshold = threshold
        self.cooldown = cooldown
        self.probe_budget = probe_budget
        self._state = ["healthy"] * num_slots
        self._consecutive = [0] * num_slots
        self._cooldown_left = [0] * num_slots
        self._probes_left = [0] * num_slots
        # lifetime counters
        self.quarantines = 0
        self.probes = 0
        self.readmissions = 0

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    # -- outcome hooks ---------------------------------------------------

    def record_failure(self, index: int) -> None:
        """A shard on slot ``index`` exhausted its chain (or the device
        was marked lost)."""
        if not self.enabled:
            return
        state = self._state[index]
        if state == "quarantined":
            return
        if state == "probation":
            self._probes_left[index] -= 1
            if self._probes_left[index] <= 0:
                self._quarantine(index)
            return
        self._consecutive[index] += 1
        if self._consecutive[index] >= self.threshold:
            self._quarantine(index)
        else:
            self._state[index] = "suspect"

    def record_success(self, index: int) -> None:
        """A shard on slot ``index`` completed its chain successfully."""
        if not self.enabled:
            return
        state = self._state[index]
        if state == "probation":
            self.readmissions += 1
        if state in ("suspect", "probation"):
            self._state[index] = "healthy"
        self._consecutive[index] = 0

    def on_query_complete(self) -> None:
        """Tick quarantine cooldowns: one completed sharded query served.

        A slot whose cooldown expires moves to probation with a fresh
        probe budget; the next scatter includes it again.
        """
        if not self.enabled:
            return
        for index in range(self.num_slots):
            if self._state[index] != "quarantined":
                continue
            self._cooldown_left[index] -= 1
            if self._cooldown_left[index] <= 0:
                self._state[index] = "probation"
                self._probes_left[index] = self.probe_budget
                self.probes += 1

    def _quarantine(self, index: int) -> None:
        self._state[index] = "quarantined"
        self._consecutive[index] = 0
        self._cooldown_left[index] = self.cooldown
        self.quarantines += 1

    # -- queries ---------------------------------------------------------

    def state(self, index: int) -> str:
        return self._state[index]

    def available(self, index: int) -> bool:
        """Whether slot ``index`` may receive shards (scatter or relocation)."""
        return self._state[index] != "quarantined"

    def active_indices(self) -> List[int]:
        """Slots eligible for the next scatter, lowest index first.

        Falls back to the full pool when everything is quarantined — a
        fully-dead pool still has to answer.
        """
        active = [i for i in range(self.num_slots) if self.available(i)]
        return active if active else list(range(self.num_slots))

    def quarantined_count(self) -> int:
        return sum(1 for s in self._state if s == "quarantined")

    def states(self) -> Dict[str, str]:
        """State per slot name, sorted for deterministic witnesses."""
        return {f"dev{i}": self._state[i] for i in range(self.num_slots)}

    def counters_dict(self) -> Dict[str, object]:
        return {
            "states": self.states(),
            "quarantines": self.quarantines,
            "probes": self.probes,
            "readmissions": self.readmissions,
        }

    def describe(self) -> Tuple[str, ...]:
        """Human lines for reports: only the non-healthy slots."""
        lines = []
        for i in range(self.num_slots):
            if self._state[i] != "healthy":
                lines.append(f"dev{i}: {self._state[i]}")
        return tuple(lines)
