"""Scatter-gather decomposition of one logical query into shard plans.

:func:`decompose` splits a :class:`~repro.plans.QuerySpec` into

* a **scatter spec** — the original query minus its epilogue
  (order/limit/post-projection), executed once per shard against that
  shard's slice of the fact table.  ``avg`` aggregates are rewritten to
  a ``sum`` + ``count`` pair because averages of averages are wrong
  under re-aggregation.
* a **gather spec** — a single-table query over the concatenated
  per-shard partial results (table :data:`PARTIALS_TABLE`) that
  re-aggregates mergeable partials (``sum``/``count`` → ``sum``,
  ``min`` → ``min``, ``max`` → ``max``, ``avg`` → summed pair plus a
  division fix-up in the projection), then applies the original
  post-projection, ordering, and limit.  Running the merge as a real
  query through the normal optimizer/lowering path means merge work is
  simulated, traced, and costed like any other query.

Global (ungrouped) aggregates need one extra guard: a shard whose
filters reject every row still emits one identity partial row, and a
zero-count identity would poison ``min``/``max`` merges.  The scatter
spec therefore carries a ``__shard_rows`` count and the gather spec
filters partial rows with ``__shard_rows > 0``, reproducing the
single-device "no rows at all → zero row" semantics exactly.

Partition-key selection (:func:`choose_partition_key`) prefers the fact
table's join/group-key columns (hash partitioning keeps match groups and
aggregation groups whole per shard, maximizing scatter-side reduction),
breaking ties by distinct count; a fact table with no integral candidate
falls back to round-robin.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import PlanError
from ..plans.logical import AggSpec, QuerySpec, TableRef
from ..relational import (
    Arith,
    CaseWhen,
    Col,
    Compare,
    Database,
    Expression,
    col,
    lit,
)

__all__ = [
    "PARTIALS_TABLE",
    "SHARD_ROWS_COLUMN",
    "ShardPlan",
    "substitute_columns",
    "choose_partition_key",
    "decompose",
]

#: Name (and alias) of the synthesized table holding concatenated
#: per-shard partial results during the gather phase.
PARTIALS_TABLE = "_shard_partials"

#: Per-partial-row contributing-row count added to ungrouped scatter
#: specs; the gather phase filters identity rows on it (see module doc).
SHARD_ROWS_COLUMN = "__shard_rows"


def substitute_columns(
    expr: Expression, mapping: Mapping[str, Expression]
) -> Expression:
    """Replace :class:`Col` references per ``mapping``, rebuilding nodes.

    Works over any expression tree because every node is a frozen
    dataclass whose fields are either child expressions or plain values.
    Unchanged subtrees are returned as-is (no gratuitous copies).
    """
    if isinstance(expr, Col):
        return mapping.get(expr.name, expr)
    values: Dict[str, object] = {}
    changed = False
    for spec_field in dataclasses.fields(expr):
        value = getattr(expr, spec_field.name)
        if isinstance(value, Expression):
            replaced = substitute_columns(value, mapping)
            changed = changed or replaced is not value
            values[spec_field.name] = replaced
        else:
            values[spec_field.name] = value
    return type(expr)(**values) if changed else expr


@dataclass(frozen=True)
class ShardPlan:
    """One logical query decomposed for scatter-gather execution."""

    #: The original spec (kept for naming / reporting).
    spec: QuerySpec
    #: Per-shard query: original joins/filters/grouping, no epilogue.
    scatter_spec: QuerySpec
    #: Merge query over :data:`PARTIALS_TABLE`; ``None`` when the merge
    #: is a plain host-side concatenation (no aggregates, no distinct).
    gather_spec: Optional[QuerySpec]
    #: Base-table name of the partitioned (fact) table.
    partition_table: str
    #: Base-table column to hash-partition on; ``None`` → round-robin.
    partition_key: Optional[str]

    @property
    def merge_kind(self) -> str:
        if self.spec.aggregates:
            return "reaggregate"
        if self.spec.distinct:
            return "distinct"
        return "concat"


def choose_partition_key(
    spec: QuerySpec, database: Database
) -> Optional[str]:
    """Pick the fact-table column to hash-partition on.

    Candidates are the fact side of every join edge plus any group key
    that lives on the fact table, translated back through the table
    ref's renames to base-table column names.  Only integral columns
    qualify (the hash mixer needs them); the highest distinct count wins
    so partitions spread as evenly as possible.  Returns ``None`` when
    no candidate qualifies — callers fall back to round-robin.
    """
    ref = spec.table_ref(spec.fact)
    table = database.table(ref.table)
    # post-rename name -> base name for the fact table's columns.
    reverse = {renamed: base for base, renamed in ref.rename.items()}
    visible = {
        (ref.rename.get(column.name, column.name)): column.name
        for column in table.schema
    }

    candidates: List[str] = []
    for edge in spec.join_edges:
        if edge.touches(spec.fact):
            key = edge.key_for(spec.fact)
            base = reverse.get(key, key)
            if base in table.schema.names and base not in candidates:
                candidates.append(base)
    for key in spec.group_keys:
        base = visible.get(key)
        if base is not None and base not in candidates:
            candidates.append(base)

    best: Optional[str] = None
    best_distinct = -1
    for base in candidates:
        array = table.column(base)
        if not (
            np.issubdtype(array.dtype, np.integer)
            or array.dtype == np.bool_
        ):
            continue
        distinct = database.stats(ref.table, base).distinct
        if distinct > best_distinct:
            best, best_distinct = base, distinct
    return best


def _scatter_aggregates(
    spec: QuerySpec,
) -> Tuple[Tuple[AggSpec, ...], Dict[str, Tuple[str, str]]]:
    """Rewrite ``avg`` into a mergeable ``sum`` + ``count`` pair.

    Returns the scatter aggregate list and, per rewritten avg, the
    ``(sum_name, count_name)`` pair the gather phase recombines.
    """
    scatter: List[AggSpec] = []
    avg_parts: Dict[str, Tuple[str, str]] = {}
    for agg in spec.aggregates:
        if agg.func == "avg":
            sum_name = f"{agg.name}__psum"
            count_name = f"{agg.name}__pcnt"
            # avg divides the sum of the expression by the *group row
            # count* (see GroupAggState.result), so the count partial is
            # count(*), not count(expr).
            scatter.append(AggSpec(sum_name, "sum", agg.expr))
            scatter.append(AggSpec(count_name, "count", None))
            avg_parts[agg.name] = (sum_name, count_name)
        else:
            scatter.append(agg)
    if not spec.group_keys and spec.aggregates:
        scatter.append(AggSpec(SHARD_ROWS_COLUMN, "count", None))
    return tuple(scatter), avg_parts


_MERGE_FUNC = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}


def _gather_spec(
    spec: QuerySpec, avg_parts: Dict[str, Tuple[str, str]]
) -> Optional[QuerySpec]:
    """The merge query over :data:`PARTIALS_TABLE`."""
    partials_ref = TableRef(table=PARTIALS_TABLE, alias=PARTIALS_TABLE)
    common = dict(
        name=f"{spec.name}@gather",
        tables=(partials_ref,),
        join_edges=(),
        fact=PARTIALS_TABLE,
        order_by=spec.order_by,
        order_desc=spec.order_desc,
        limit=spec.limit,
    )

    if spec.aggregates:
        merged: List[AggSpec] = []
        for agg in spec.aggregates:
            if agg.func == "avg":
                sum_name, count_name = avg_parts[agg.name]
                merged.append(AggSpec(sum_name, "sum", col(sum_name)))
                merged.append(AggSpec(count_name, "sum", col(count_name)))
            else:
                merged.append(
                    AggSpec(agg.name, _MERGE_FUNC[agg.func], col(agg.name))
                )
        # avg fix-ups: guarded division so a merged count of zero (every
        # shard filtered everything) reproduces single-device avg = 0.0.
        fixups: Dict[str, Expression] = {
            name: CaseWhen(
                Compare(">", col(count_name), lit(0)),
                Arith("/", col(sum_name), col(count_name)),
                lit(0.0),
            )
            for name, (sum_name, count_name) in avg_parts.items()
        }
        if spec.post_projection:
            projection = tuple(
                (name, substitute_columns(expr, fixups))
                for name, expr in spec.post_projection
            )
        elif avg_parts:
            # No original projection but avgs need recombining: project
            # every aggregate back under its original name, in order.
            projection = tuple(
                (agg.name, fixups.get(agg.name, col(agg.name)))
                for agg in spec.aggregates
            )
        else:
            projection = ()
        filters: Dict[str, Expression] = {}
        if not spec.group_keys:
            filters[PARTIALS_TABLE] = Compare(
                ">", col(SHARD_ROWS_COLUMN), lit(0)
            )
        return QuerySpec(
            group_keys=spec.group_keys,
            aggregates=tuple(merged),
            post_projection=projection,
            filters=filters,
            **common,
        )

    if spec.distinct:
        return QuerySpec(distinct=spec.distinct, **common)

    # Plain selection: the merge is a host-side concatenation (plus the
    # original ordering/limit), handled by the executor directly.
    return None


def decompose(spec: QuerySpec, database: Database) -> ShardPlan:
    """Split ``spec`` into scatter and gather specs (see module doc)."""
    ref = spec.table_ref(spec.fact)
    if ref.table not in database:
        raise PlanError(
            f"fact table {ref.table!r} of {spec.name} not in database"
        )
    scatter_aggs, avg_parts = _scatter_aggregates(spec)
    # A plain selection's limit pushes down (each shard's ordered top-K
    # is a superset of its contribution to the global top-K) — but only
    # together with its ordering: a per-shard limit without the sort
    # would keep K *arbitrary* rows.  Aggregates/distinct never push the
    # limit down (it applies to merged groups, not partials).
    keep_limit = (
        None if (spec.aggregates or spec.distinct) else spec.limit
    )
    scatter_spec = dataclasses.replace(
        spec,
        name=f"{spec.name}@shard",
        aggregates=scatter_aggs,
        post_projection=(),
        order_by=spec.order_by if keep_limit is not None else (),
        order_desc=spec.order_desc if keep_limit is not None else (),
        limit=keep_limit,
    )
    gather = _gather_spec(spec, avg_parts)
    return ShardPlan(
        spec=spec,
        scatter_spec=scatter_spec,
        gather_spec=gather,
        partition_table=ref.table,
        partition_key=choose_partition_key(spec, database),
    )
