"""The scatter-gather executor: one logical query across a device pool.

Execution lifecycle (see :mod:`repro.shard.planner` for the plan split):

1. **Partition** — the fact table is hash-partitioned (round-robin
   fallback) into one database per pool device; partitions are cached
   per (table, key, shard-count) so repeated queries over the same pool
   repartition nothing.
2. **Scatter** — the scatter spec runs once per non-empty shard, each on
   its own device through a per-shard :class:`ResilientExecutor`, so
   admission control, fault retries, Δ-halving, engine fallback,
   checkpoints, and deadlines all compose per device.  Empty shards are
   skipped (a shard with no fact rows contributes nothing to any merge;
   when *every* shard is empty, shard 0 runs alone to reproduce
   single-device empty-input semantics, including global-aggregate
   identity rows).
3. **Gather** — partial results are concatenated into a synthetic
   ``_shard_partials`` table and the gather spec runs over it as a
   normal single-table query on the merge device (pool slot 0), so merge
   work is simulated, traced, and costed like any other query.  Plans
   with no aggregates and no DISTINCT merge host-side (concatenation +
   the original ordering/limit) because there is nothing to re-reduce.

The merged :class:`~repro.core.QueryResult` carries fleet-level
counters (work summed across shards, critical-path elapsed time: the
slowest shard plus the merge) and a :class:`ShardReport` on its
``shard`` attribute with per-device records, partition metadata, skew,
and merge accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import GPLEngine, QueryResult, ResilientExecutor
from ..core.checkpoint import CheckpointStore
from ..core.config import GPLConfig
from ..core.parallel import PoolTask, WorkerPool
from ..core.resilience import ENGINE_CHAIN
from ..faults import FaultPlan
from ..gpu import HardwareCounters
from ..obs.tracing import maybe_span
from ..plans import QuerySpec
from ..relational import (
    ColumnDef,
    Database,
    DataType,
    PartitionCache,
    PartitionMetadata,
    Table,
    TableSchema,
    partition_database,
)
from .planner import PARTIALS_TABLE, ShardPlan, decompose
from .pool import DevicePool, DeviceSlot

__all__ = ["ShardRecord", "ShardReport", "ShardedExecutor"]


@dataclass(frozen=True)
class ShardRecord:
    """One device's share of a scatter phase."""

    index: int
    device: str  # slot label, e.g. "dev2"
    spec_name: str  # device preset name
    rows_in: int  # fact rows assigned to this shard
    rows_out: int  # partial rows produced
    elapsed_ms: float
    sim_cycles: float
    kernel_launches: int
    engine: str
    retries: int
    fallbacks: int
    skipped: bool

    def describe(self) -> str:
        if self.skipped:
            return f"{self.device}: skipped (0 rows)"
        return (
            f"{self.device}: {self.rows_in} rows -> {self.rows_out} "
            f"partials in {self.elapsed_ms:.3f} ms [{self.engine}]"
        )


@dataclass(frozen=True)
class ShardReport:
    """Fan-out, partition, and merge accounting for one sharded query."""

    query: str
    devices: int
    partition: PartitionMetadata
    merge_kind: str  # "reaggregate" | "distinct" | "concat"
    records: Tuple[ShardRecord, ...]
    merge_ms: float
    merge_cycles: float
    merge_engine: str

    @property
    def fanout(self) -> int:
        """Shards that actually executed (non-empty)."""
        return sum(1 for record in self.records if not record.skipped)

    @property
    def skew(self) -> float:
        return self.partition.skew

    @property
    def makespan_ms(self) -> float:
        """Critical-path time: slowest shard plus the serial merge."""
        scatter = max(
            (record.elapsed_ms for record in self.records), default=0.0
        )
        return scatter + self.merge_ms

    def device_busy_ms(self) -> Dict[str, float]:
        """Per-device busy time (the utilization metric's raw material)."""
        busy = {record.device: record.elapsed_ms for record in self.records}
        busy["dev0"] = busy.get("dev0", 0.0) + self.merge_ms
        return busy

    def describe(self) -> str:
        lines = [
            f"shard report for {self.query}: {self.fanout}/{self.devices} "
            f"devices, {self.partition.describe()}, merge={self.merge_kind} "
            f"({self.merge_ms:.3f} ms on {self.merge_engine})",
        ]
        lines.extend(f"  {record.describe()}" for record in self.records)
        return "\n".join(lines)


def _dtype_for(array: np.ndarray, dictionary: Optional[Tuple[str, ...]]) -> DataType:
    """Partials-schema type for one partial-result column."""
    if dictionary is not None:
        return DataType.DICT
    if array.dtype == np.float32:
        return DataType.FLOAT32
    if np.issubdtype(array.dtype, np.floating):
        return DataType.FLOAT64
    if array.dtype == np.int32:
        return DataType.INT32
    return DataType.INT64


class ShardedExecutor:
    """Run logical queries across a :class:`DevicePool` (see module doc)."""

    def __init__(
        self,
        database: Database,
        pool: DevicePool,
        config: Optional[GPLConfig] = None,
        resilient: bool = True,
        fault_plans: Union[None, FaultPlan, Sequence[Optional[FaultPlan]]] = None,
        memory_budget_bytes: Optional[float] = None,
        max_retries: int = 2,
        engines: Sequence[str] = ENGINE_CHAIN,
        partitioned_joins: bool = False,
        plan_cache=None,
        deadline_cycles: Optional[float] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoints: bool = True,
        segment_cache=None,
        workers: int = 1,
    ) -> None:
        self.database = database
        self.pool = pool
        self.config = config or GPLConfig()
        self.resilient = resilient
        self.fault_plans = fault_plans
        #: Uniform per-device budget override; ``None`` defers to each
        #: slot's own budget (which defaults to full device memory).
        self.memory_budget_bytes = memory_budget_bytes
        self.max_retries = max_retries
        self.engines = tuple(engines)
        self.partitioned_joins = partitioned_joins
        self.plan_cache = plan_cache
        self.deadline_cycles = deadline_cycles
        self.checkpoint_store = checkpoint_store
        self.checkpoints = checkpoints
        #: Optional cross-query :class:`repro.core.checkpoint.SegmentCache`
        #: shared across shards and the gather merge.  Shard databases have
        #: distinct fingerprints, so shard entries never alias whole-table
        #: entries — the cache pays off when the same shard recurs.
        self.segment_cache = segment_cache
        #: Host worker pool for the scatter phase.  ``workers=1`` keeps
        #: the exact sequential path; the serving layer hands the
        #: executor its own pool size but never shares a pool instance
        #: (a bounded pool whose tasks submit to themselves deadlocks).
        self.worker_pool = WorkerPool(workers, name="repro-shard")
        # (table, key, num_shards) -> (shard databases, metadata); the
        # executor is bound to one database, so the key needs no db id.
        # Thread-safe: concurrent serving members partition through it.
        self._partition_cache = PartitionCache()

    @property
    def workers(self) -> int:
        return self.worker_pool.workers

    # -- partitioning -----------------------------------------------------

    def _partitions(
        self, plan: ShardPlan
    ) -> Tuple[List[Database], PartitionMetadata]:
        key = (plan.partition_table, plan.partition_key, len(self.pool))
        return self._partition_cache.get_or_compute(
            key,
            lambda: partition_database(
                self.database,
                len(self.pool),
                plan.partition_table,
                key=plan.partition_key,
            ),
        )

    def _fault_plan_for(self, slot: DeviceSlot) -> Optional[FaultPlan]:
        if self.fault_plans is None or isinstance(self.fault_plans, FaultPlan):
            return self.fault_plans
        return self.fault_plans[slot.index]

    # -- execution --------------------------------------------------------

    def execute(
        self,
        spec: QuerySpec,
        engines: Optional[Sequence[str]] = None,
        share: int = 1,
        engines_by_device: Optional[Dict[int, Sequence[str]]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> QueryResult:
        """Scatter ``spec`` across the pool and merge the partials.

        The serving layer uses the overrides: ``share`` is how many
        concurrent queries split each device (every shard gets
        ``concurrency // share`` kernel slots and ``budget / share``
        memory on its device), ``engines`` replaces the fallback chain
        for every shard, ``engines_by_device`` overrides it per device
        index (per-device breaker degradation), and ``fault_plan``
        overrides the executor-wide fault plans for this query.
        """
        plan = decompose(spec, self.database)
        shard_dbs, metadata = self._partitions(plan)
        executed = [
            index
            for index in range(len(self.pool))
            if metadata.shard_rows[index] > 0
        ]
        if not executed:
            # Every shard is empty: run shard 0 alone so empty-input
            # semantics (including global-aggregate identity rows) match
            # single-device execution exactly.
            executed = [0]

        with maybe_span(
            "shard.execute",
            "shard",
            query=spec.name,
            devices=len(self.pool),
            fanout=len(executed),
            scheme=metadata.scheme,
        ):
            # Scatter: submit every executed shard onto the worker pool
            # (workers=1 runs each inline right here, the exact
            # sequential path), then gather **in shard order** — each
            # task's private trace grafts back at its ordered position,
            # so the exported trace is byte-identical at any worker
            # count.  On failure the lowest shard index wins, as in a
            # sequential loop; traces of later shards are discarded
            # because sequentially they would never have run.
            records: List[Optional[ShardRecord]] = [None] * len(self.pool)
            tasks: List[Optional[PoolTask]] = [None] * len(self.pool)
            sequential = self.worker_pool.sequential
            for index in range(len(self.pool)):
                slot = self.pool.slot(index)
                if index not in executed:
                    records[index] = ShardRecord(
                        index=index,
                        device=slot.name,
                        spec_name=slot.spec.name,
                        rows_in=0,
                        rows_out=0,
                        elapsed_ms=0.0,
                        sim_cycles=0.0,
                        kernel_launches=0,
                        engine="",
                        retries=0,
                        fallbacks=0,
                        skipped=True,
                    )
                    continue
                shard_engines = engines
                if engines_by_device and index in engines_by_device:
                    shard_engines = engines_by_device[index]
                task = self.worker_pool.submit(
                    lambda db=shard_dbs[index], slot=slot,
                    shard_engines=shard_engines: self._run_shard(
                        plan.scatter_spec,
                        db,
                        slot,
                        engines=shard_engines,
                        share=max(1, share),
                        fault_plan=fault_plan,
                    )
                )
                tasks[index] = task
                if sequential:
                    # Inline task already ran: graft its trace now (the
                    # same member-order position the parallel gather
                    # uses) and fail fast so later shards never run —
                    # the exact sequential loop, byte for byte.
                    task.merge_trace()
                    if task.error is not None:
                        raise task.error

            partials: List[QueryResult] = []
            failure: Optional[BaseException] = None
            for index in range(len(self.pool)):
                task = tasks[index]
                if task is None:
                    continue
                task.wait()
                if failure is not None:
                    task.tracer = None  # never ran, sequentially speaking
                    continue
                if task.error is not None:
                    task.merge_trace()
                    failure = task.error
                    continue
                task.merge_trace()
                result = task.result
                partials.append(result)
                slot = self.pool.slot(index)
                resilience = result.resilience
                records[index] = ShardRecord(
                    index=index,
                    device=slot.name,
                    spec_name=slot.spec.name,
                    rows_in=metadata.shard_rows[index],
                    rows_out=result.num_rows,
                    elapsed_ms=result.elapsed_ms,
                    sim_cycles=result.counters.elapsed_cycles,
                    kernel_launches=result.counters.kernel_launches,
                    engine=result.engine,
                    retries=getattr(resilience, "retries", 0),
                    fallbacks=getattr(resilience, "fallbacks", 0),
                    skipped=False,
                )
            if failure is not None:
                raise failure

            merged = self._merge(spec, plan, partials)
            report = ShardReport(
                query=spec.name,
                devices=len(self.pool),
                partition=metadata,
                merge_kind=plan.merge_kind,
                records=tuple(records),
                merge_ms=merged.elapsed_ms,
                merge_cycles=merged.counters.elapsed_cycles,
                merge_engine=merged.engine,
            )
            return self._assemble(spec, partials, merged, report)

    def _run_shard(
        self,
        scatter_spec: QuerySpec,
        shard_db: Database,
        slot: DeviceSlot,
        engines: Optional[Sequence[str]],
        share: int,
        fault_plan: Optional[FaultPlan],
    ) -> QueryResult:
        device = slot.spec
        if share > 1:
            device = device.with_overrides(
                concurrency=max(1, device.concurrency // share)
            )
        budget = self.memory_budget_bytes
        if budget is None:
            budget = slot.memory_budget_bytes
        if budget is None and share > 1:
            # Sharing an unbounded device still splits its real memory.
            budget = slot.effective_budget_bytes
        if budget is not None:
            budget = budget / share
        with maybe_span(
            "shard.scatter",
            "shard",
            query=scatter_spec.name,
            device=slot.name,
            rows=shard_db.table(
                scatter_spec.table_ref(scatter_spec.fact).table
            ).num_rows,
        ):
            if not self.resilient:
                engine = GPLEngine(
                    shard_db,
                    device,
                    config=self.config,
                    partitioned_joins=self.partitioned_joins,
                )
                engine.plan_cache = self.plan_cache
                engine.segment_cache = self.segment_cache
                return engine.execute(scatter_spec)
            executor = ResilientExecutor(
                shard_db,
                device,
                config=self.config,
                fault_plan=(
                    fault_plan if fault_plan is not None
                    else self._fault_plan_for(slot)
                ),
                memory_budget_bytes=budget,
                max_retries=self.max_retries,
                engines=engines or self.engines,
                partitioned_joins=self.partitioned_joins,
                plan_cache=self.plan_cache,
                deadline_cycles=self.deadline_cycles,
                checkpoint_store=self.checkpoint_store,
                checkpoints=self.checkpoints,
                segment_cache=self.segment_cache,
            )
            return executor.execute(scatter_spec)

    # -- merge ------------------------------------------------------------

    def _partials_table(self, partials: Sequence[QueryResult]) -> Table:
        """Concatenate partial batches into one deterministic table.

        Shards are concatenated in device order; within a shard the
        engine's output order is deterministic, so two runs build
        byte-identical partials tables.
        """
        first = partials[0]
        columns: Dict[str, np.ndarray] = {}
        defs: List[ColumnDef] = []
        for name in first.columns:
            arrays = [partial.batch[name] for partial in partials]
            merged = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
            dictionary = first.dictionaries.get(name)
            defs.append(
                ColumnDef(name, _dtype_for(merged, dictionary), dictionary)
            )
            columns[name] = merged
        return Table(TableSchema(tuple(defs)), columns)

    def _merge(
        self,
        spec: QuerySpec,
        plan: ShardPlan,
        partials: Sequence[QueryResult],
    ) -> QueryResult:
        table = self._partials_table(partials)
        with maybe_span(
            "shard.gather",
            "shard",
            query=spec.name,
            partial_rows=table.num_rows,
            kind=plan.merge_kind,
        ):
            if plan.gather_spec is None:
                return self._concat_merge(spec, table, partials[0])
            gather_db = Database()
            gather_db.add(PARTIALS_TABLE, table)
            merge_slot = self.pool.slot(0)
            if not self.resilient:
                engine = GPLEngine(
                    gather_db, merge_slot.spec, config=self.config
                )
                engine.plan_cache = self.plan_cache
                engine.segment_cache = self.segment_cache
                return engine.execute(plan.gather_spec)
            # The merge runs resiliently (admission + fallback) but
            # without fault injection: fault schedules target shard
            # work, and a deterministic merge keeps soak invariants
            # anchored to the scatter phase.
            executor = ResilientExecutor(
                gather_db,
                merge_slot.spec,
                config=self.config,
                memory_budget_bytes=merge_slot.memory_budget_bytes,
                max_retries=self.max_retries,
                engines=self.engines,
                plan_cache=self.plan_cache,
                checkpoint_store=self.checkpoint_store,
                checkpoints=self.checkpoints,
                segment_cache=self.segment_cache,
            )
            return executor.execute(plan.gather_spec)

    def _concat_merge(
        self, spec: QuerySpec, table: Table, first: QueryResult
    ) -> QueryResult:
        """Host-side merge for plain selections: concat + order + limit."""
        if spec.order_by:
            table = table.sort_by(spec.order_by, spec.order_desc)
        batch = {
            name: table.column(name)[: spec.limit]
            if spec.limit is not None
            else table.column(name)
            for name in table.schema.names
        }
        return QueryResult(
            query=spec.name,
            engine="host-concat",
            device=self.pool.slot(0).spec.name,
            batch=batch,
            columns=tuple(table.schema.names),
            elapsed_ms=0.0,
            counters=HardwareCounters(num_cus=0),
            report=first.report,
            dictionaries=dict(first.dictionaries),
        )

    # -- assembly ---------------------------------------------------------

    def _assemble(
        self,
        spec: QuerySpec,
        partials: Sequence[QueryResult],
        merged: QueryResult,
        report: ShardReport,
    ) -> QueryResult:
        counters = self._fleet_counters(partials, merged)
        engines = {partial.engine for partial in partials}
        engine = engines.pop() if len(engines) == 1 else "mixed"
        names = sorted({slot.spec.name for slot in self.pool})
        result = QueryResult(
            query=spec.name,
            engine=f"sharded:{engine}x{report.fanout}",
            device=f"pool[{len(self.pool)}: {' + '.join(names)}]",
            batch=merged.batch,
            columns=merged.columns,
            elapsed_ms=report.makespan_ms,
            counters=counters,
            report=merged.report,
            dictionaries=dict(merged.dictionaries),
            resilience=merged.resilience,
            shard=report,
        )
        return result

    def _fleet_counters(
        self, partials: Sequence[QueryResult], merged: QueryResult
    ) -> HardwareCounters:
        """Fleet-level counters: work summed, elapsed on the critical path.

        ``elapsed_cycles`` adds the slowest shard's device-local cycles
        to the merge cycles — the simulated makespan in cycles (exact
        for homogeneous pools; for mixed pools the per-device clocks
        differ and :attr:`ShardReport.makespan_ms` is the comparable
        measure).
        """
        counters = HardwareCounters(
            num_cus=sum(partial.counters.num_cus for partial in partials)
        )
        sources = list(partials) + [merged]
        for source in sources:
            other = source.counters
            counters.compute_cycles += other.compute_cycles
            counters.memory_cycles += other.memory_cycles
            counters.stall_cycles += other.stall_cycles
            counters.channel_cycles += other.channel_cycles
            counters.delay_cycles += other.delay_cycles
            counters.launch_overhead_cycles += other.launch_overhead_cycles
            counters.bytes_materialized += other.bytes_materialized
            counters.bytes_channel += other.bytes_channel
            counters.cache_hits += other.cache_hits
            counters.cache_accesses += other.cache_accesses
            counters.kernel_launches += other.kernel_launches
            counters.kernel_stats.extend(other.kernel_stats)
        scatter_cycles = max(
            (partial.counters.elapsed_cycles for partial in partials),
            default=0.0,
        )
        counters.elapsed_cycles = (
            scatter_cycles + merged.counters.elapsed_cycles
        )
        return counters
