"""The scatter-gather executor: one logical query across a device pool.

Execution lifecycle (see :mod:`repro.shard.planner` for the plan split):

1. **Partition** — the fact table is hash-partitioned (round-robin
   fallback) into one database per *active* pool device; partitions are
   cached per (table, key, shard-count) so repeated queries over the
   same pool width repartition nothing.  Devices quarantined by
   :class:`~repro.shard.health.PoolHealth` are excluded from the
   scatter, so serving continues at reduced width.
2. **Scatter** — the scatter spec runs once per non-empty shard, each on
   its own device through a per-shard :class:`ResilientExecutor`, so
   admission control, fault retries, Δ-halving, engine fallback,
   checkpoints, and deadlines all compose per device.  Empty shards are
   skipped (a shard with no fact rows contributes nothing to any merge;
   when *every* shard is empty, the lowest active shard runs alone to
   reproduce single-device empty-input semantics, including
   global-aggregate identity rows).
3. **Recover** — a shard whose whole resilience chain fails (or whose
   device a ``device_down`` fault marks lost) is *relocated*: re-run on
   the lowest-index healthy device not yet tried for that shard,
   bounded by ``max_relocations`` per query.  Outcomes feed the pool
   health tracker, which quarantines persistently bad slots.
4. **Gather** — partial results are concatenated into a synthetic
   ``_shard_partials`` table and the gather spec runs over it as a
   normal single-table query on the merge device (the lowest active
   slot), so merge work is simulated, traced, and costed like any other
   query.  Plans with no aggregates and no DISTINCT merge host-side
   (concatenation + the original ordering/limit) because there is
   nothing to re-reduce.

Results, records, and traces commit in shard order on the gather path,
so the host-parallel determinism contract holds: same seed + any worker
count ⇒ byte-identical results, counters, and traces — with or without
relocations.

The merged :class:`~repro.core.QueryResult` carries fleet-level
counters (work summed across shards, critical-path elapsed time: the
slowest shard plus the merge) and a :class:`ShardReport` on its
``shard`` attribute with per-device records, partition metadata, skew,
relocation and merge accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..core import GPLEngine, QueryResult, ResilientExecutor
from ..core.checkpoint import CheckpointStore
from ..core.config import GPLConfig
from ..core.parallel import PoolTask, WorkerPool
from ..core.resilience import ENGINE_CHAIN
from ..errors import (
    DeadlineExceededError,
    DeviceLostError,
    ReproError,
    SchemaError,
)
from ..faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from ..gpu import HardwareCounters
from ..obs.tracing import maybe_span
from ..plans import QuerySpec
from ..relational import (
    ColumnDef,
    Database,
    DataType,
    PartitionCache,
    PartitionMetadata,
    Table,
    TableSchema,
    partition_database,
)
from .health import PoolHealth
from .planner import PARTIALS_TABLE, ShardPlan, decompose
from .pool import DevicePool, DeviceSlot

__all__ = ["ShardRecord", "ShardReport", "ShardedExecutor"]


@dataclass(frozen=True)
class ShardRecord:
    """One device's share of a scatter phase."""

    index: int
    device: str  # slot label, e.g. "dev2"
    spec_name: str  # device preset name
    rows_in: int  # fact rows assigned to this shard
    rows_out: int  # partial rows produced
    elapsed_ms: float
    sim_cycles: float
    kernel_launches: int
    engine: str
    retries: int
    fallbacks: int
    skipped: bool
    #: Slot was quarantined by pool health and excluded from the scatter.
    quarantined: bool = False
    #: Shard failed on this device and was handed to the relocator.
    failed: bool = False
    #: Relocation attempts consumed to land this shard (relocated
    #: records only).
    relocations: int = 0
    #: Original device of a relocated shard (relocated records only).
    relocated_from: str = ""

    def describe(self) -> str:
        if self.quarantined:
            return f"{self.device}: quarantined"
        if self.skipped:
            return f"{self.device}: skipped (0 rows)"
        if self.failed:
            return f"{self.device}: failed ({self.rows_in} rows relocated)"
        line = (
            f"{self.device}: {self.rows_in} rows -> {self.rows_out} "
            f"partials in {self.elapsed_ms:.3f} ms [{self.engine}]"
        )
        if self.relocated_from:
            line += (
                f" (relocated from {self.relocated_from}, "
                f"attempts={self.relocations})"
            )
        return line


@dataclass(frozen=True)
class ShardReport:
    """Fan-out, partition, and merge accounting for one sharded query."""

    query: str
    devices: int
    partition: PartitionMetadata
    merge_kind: str  # "reaggregate" | "distinct" | "concat"
    records: Tuple[ShardRecord, ...]
    merge_ms: float
    merge_cycles: float
    merge_engine: str
    #: Slot the gather merge ran on (the lowest active device).
    merge_device: str = "dev0"
    #: One record per relocated shard: ``device`` is the slot that
    #: finally served it, ``relocated_from`` the slot that failed.
    relocated: Tuple[ShardRecord, ...] = ()
    #: ``device_down`` accounting for this query (scheduled only counts
    #: per-query plans; the executor-wide injector reports fired deltas).
    device_faults_scheduled: int = 0
    device_faults_fired: int = 0
    device_faults_unfired: Tuple[str, ...] = ()

    @property
    def fanout(self) -> int:
        """Shards that actually executed (non-empty, wherever they landed)."""
        in_place = sum(
            1 for record in self.records
            if not record.skipped and not record.failed
        )
        return in_place + len(self.relocated)

    @property
    def relocations(self) -> int:
        """Relocation attempts consumed by this query."""
        return sum(record.relocations for record in self.relocated)

    @property
    def quarantined_devices(self) -> Tuple[str, ...]:
        return tuple(r.device for r in self.records if r.quarantined)

    @property
    def skew(self) -> float:
        return self.partition.skew

    @property
    def makespan_ms(self) -> float:
        """Critical-path time: slowest shard plus the serial merge."""
        scatter = max(
            (
                record.elapsed_ms
                for record in self.records + self.relocated
            ),
            default=0.0,
        )
        return scatter + self.merge_ms

    def device_busy_ms(self) -> Dict[str, float]:
        """Per-device busy time (the utilization metric's raw material)."""
        busy: Dict[str, float] = {}
        for record in self.records:
            busy[record.device] = (
                busy.get(record.device, 0.0) + record.elapsed_ms
            )
        for record in self.relocated:
            busy[record.device] = (
                busy.get(record.device, 0.0) + record.elapsed_ms
            )
        busy[self.merge_device] = (
            busy.get(self.merge_device, 0.0) + self.merge_ms
        )
        return busy

    def describe(self) -> str:
        lines = [
            f"shard report for {self.query}: {self.fanout}/{self.devices} "
            f"devices, {self.partition.describe()}, merge={self.merge_kind} "
            f"({self.merge_ms:.3f} ms on {self.merge_engine})",
        ]
        lines.extend(f"  {record.describe()}" for record in self.records)
        lines.extend(f"  {record.describe()}" for record in self.relocated)
        return "\n".join(lines)


def _dtype_for(array: np.ndarray, dictionary: Optional[Tuple[str, ...]]) -> DataType:
    """Partials-schema type for one partial-result column."""
    if dictionary is not None:
        return DataType.DICT
    if array.dtype == np.float32:
        return DataType.FLOAT32
    if np.issubdtype(array.dtype, np.floating):
        return DataType.FLOAT64
    if array.dtype == np.int32:
        return DataType.INT32
    return DataType.INT64


def _split_device_specs(
    plan: Optional[FaultPlan],
) -> Tuple[Optional[FaultPlan], Tuple[FaultSpec, ...]]:
    """Split ``device_down`` specs out of a fault plan.

    The engines never see device-loss faults — they are whole-slot
    events consumed at the shard layer — so a plan is divided into the
    engine residue (everything else, ``None`` when empty) and the
    device specs.
    """
    if plan is None:
        return None, ()
    device = tuple(
        spec for spec in plan.faults if spec.kind is FaultKind.DEVICE_LOST
    )
    if not device:
        return plan, ()
    engine = tuple(
        spec for spec in plan.faults if spec.kind is not FaultKind.DEVICE_LOST
    )
    residue = (
        FaultPlan(faults=engine, seed=plan.seed) if engine else None
    )
    return residue, device


class ShardedExecutor:
    """Run logical queries across a :class:`DevicePool` (see module doc)."""

    def __init__(
        self,
        database: Database,
        pool: DevicePool,
        config: Optional[GPLConfig] = None,
        resilient: bool = True,
        fault_plans: Union[None, FaultPlan, Sequence[Optional[FaultPlan]]] = None,
        memory_budget_bytes: Optional[float] = None,
        max_retries: int = 2,
        engines: Sequence[str] = ENGINE_CHAIN,
        partitioned_joins: bool = False,
        plan_cache=None,
        deadline_cycles: Optional[float] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoints: bool = True,
        segment_cache=None,
        workers: int = 1,
        max_relocations: int = 2,
        quarantine_threshold: int = 2,
        quarantine_cooldown: int = 2,
        quarantine_probes: int = 1,
    ) -> None:
        self.database = database
        self.pool = pool
        self.config = config or GPLConfig()
        self.resilient = resilient
        if fault_plans is not None and not isinstance(fault_plans, FaultPlan):
            fault_plans = tuple(fault_plans)
            if len(fault_plans) != len(pool):
                raise SchemaError(
                    f"fault_plans sequence has {len(fault_plans)} entries "
                    f"for a {len(pool)}-device pool; pass one plan per "
                    "slot (None for no injection)"
                )
        self.fault_plans = fault_plans
        #: Uniform per-device budget override; ``None`` defers to each
        #: slot's own budget (which defaults to full device memory).
        self.memory_budget_bytes = memory_budget_bytes
        self.max_retries = max_retries
        self.engines = tuple(engines)
        self.partitioned_joins = partitioned_joins
        self.plan_cache = plan_cache
        self.deadline_cycles = deadline_cycles
        self.checkpoint_store = checkpoint_store
        self.checkpoints = checkpoints
        #: Optional cross-query :class:`repro.core.checkpoint.SegmentCache`
        #: shared across shards and the gather merge.  Shard databases have
        #: distinct fingerprints, so shard entries never alias whole-table
        #: entries — the cache pays off when the same shard recurs.
        self.segment_cache = segment_cache
        #: Host worker pool for the scatter phase.  ``workers=1`` keeps
        #: the exact sequential path; the serving layer hands the
        #: executor its own pool size but never shares a pool instance
        #: (a bounded pool whose tasks submit to themselves deadlocks).
        self.worker_pool = WorkerPool(workers, name="repro-shard")
        #: Per-query relocation budget for failed shards.
        self.max_relocations = max_relocations
        #: Device failure domains: per-slot health driven by shard
        #: outcomes.  ``quarantine_threshold=0`` disables tracking.
        self.health = PoolHealth(
            len(pool),
            threshold=quarantine_threshold,
            cooldown=quarantine_cooldown,
            probe_budget=quarantine_probes,
        )
        # Split executor-wide plans once: engines get the residue, the
        # persistent device injector eats every device_down spec.  A
        # per-slot entry with segment "*" is pinned to that slot's name
        # so "kill whatever runs on slot 2" means slot 2, not "first
        # slot consulted".
        self._engine_fault_plans: Union[
            None, FaultPlan, Tuple[Optional[FaultPlan], ...]
        ]
        device_specs: List[FaultSpec] = []
        if self.fault_plans is None:
            self._engine_fault_plans = None
        elif isinstance(self.fault_plans, FaultPlan):
            residue, specs = _split_device_specs(self.fault_plans)
            self._engine_fault_plans = residue
            device_specs.extend(specs)
        else:
            residues: List[Optional[FaultPlan]] = []
            for index, entry in enumerate(self.fault_plans):
                residue, specs = _split_device_specs(entry)
                residues.append(residue)
                for spec in specs:
                    if spec.segment == "*":
                        spec = FaultSpec(
                            kind=spec.kind,
                            segment=f"dev{index}",
                            kernel=spec.kernel,
                            after_cycle=spec.after_cycle,
                            before_cycle=spec.before_cycle,
                            times=spec.times,
                        )
                    device_specs.append(spec)
            self._engine_fault_plans = tuple(residues)
        self._device_injector: Optional[FaultInjector] = (
            FaultInjector(FaultPlan(faults=tuple(device_specs)))
            if device_specs
            else None
        )
        # (table, key, num_shards) -> (shard databases, metadata); the
        # executor is bound to one database, so the key needs no db id.
        # Thread-safe: concurrent serving members partition through it.
        self._partition_cache = PartitionCache()

    @property
    def workers(self) -> int:
        return self.worker_pool.workers

    # -- partitioning -----------------------------------------------------

    def _partitions(
        self, plan: ShardPlan, num_shards: int
    ) -> Tuple[List[Database], PartitionMetadata]:
        key = (plan.partition_table, plan.partition_key, num_shards)
        return self._partition_cache.get_or_compute(
            key,
            lambda: partition_database(
                self.database,
                num_shards,
                plan.partition_table,
                key=plan.partition_key,
            ),
        )

    def _engine_fault_plan_for(self, slot: DeviceSlot) -> Optional[FaultPlan]:
        plans = self._engine_fault_plans
        if plans is None or isinstance(plans, FaultPlan):
            return plans
        return plans[slot.index]

    # -- execution --------------------------------------------------------

    def execute(
        self,
        spec: QuerySpec,
        engines: Optional[Sequence[str]] = None,
        share: int = 1,
        engines_by_device: Optional[Dict[int, Sequence[str]]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> QueryResult:
        """Scatter ``spec`` across the active pool and merge the partials.

        The serving layer uses the overrides: ``share`` is how many
        concurrent queries split each device (every shard gets
        ``concurrency // share`` kernel slots and ``budget / share``
        memory on its device), ``engines`` replaces the fallback chain
        for every shard, ``engines_by_device`` overrides it per device
        index (per-device breaker degradation), and ``fault_plan``
        overrides the executor-wide fault plans for this query.
        """
        try:
            return self._execute(
                spec,
                engines=engines,
                share=share,
                engines_by_device=engines_by_device,
                fault_plan=fault_plan,
            )
        finally:
            # Cooldowns are counted in *completed* queries — success or
            # failure, the pool served one more query.
            self.health.on_query_complete()

    def _execute(
        self,
        spec: QuerySpec,
        engines: Optional[Sequence[str]],
        share: int,
        engines_by_device: Optional[Dict[int, Sequence[str]]],
        fault_plan: Optional[FaultPlan],
    ) -> QueryResult:
        plan = decompose(spec, self.database)
        # Quarantined slots are excluded from the scatter: the pool
        # repartitions over the active width (cached per shard count).
        active = self.health.active_indices()
        active_set = set(active)
        shard_dbs, metadata = self._partitions(plan, len(active))
        executed = [
            position
            for position in range(len(active))
            if metadata.shard_rows[position] > 0
        ]
        if not executed:
            # Every shard is empty: run the lowest active shard alone so
            # empty-input semantics (including global-aggregate identity
            # rows) match single-device execution exactly.
            executed = [0]

        # A per-query fault-plan override replaces the executor-wide
        # plans entirely: split off its device_down specs into a fresh
        # injector and hand the engines only the residue.
        override = fault_plan is not None
        query_residue, query_device_specs = _split_device_specs(fault_plan)
        query_injector = (
            FaultInjector(FaultPlan(faults=query_device_specs))
            if query_device_specs
            else None
        )
        injector = query_injector if override else self._device_injector
        persistent_fired_before = (
            len(self._device_injector.fired)
            if injector is self._device_injector and injector is not None
            else 0
        )

        with maybe_span(
            "shard.execute",
            "shard",
            query=spec.name,
            devices=len(self.pool),
            fanout=len(executed),
            scheme=metadata.scheme,
        ):
            # Scatter: submit every executed shard onto the worker pool
            # (workers=1 runs each inline at submit, the exact
            # sequential path), then gather **in shard order** — each
            # task's private trace grafts back at its ordered position,
            # so the exported trace is byte-identical at any worker
            # count.  Recovery (device-loss checks, relocation) happens
            # on the ordered gather path for the same reason.  On an
            # unrecoverable failure the lowest shard position wins;
            # traces of later shards are discarded because sequentially
            # they would never have run.
            records: List[Optional[ShardRecord]] = [None] * len(self.pool)
            for index in range(len(self.pool)):
                if index in active_set:
                    continue
                slot = self.pool.slot(index)
                records[index] = ShardRecord(
                    index=index,
                    device=slot.name,
                    spec_name=slot.spec.name,
                    rows_in=0,
                    rows_out=0,
                    elapsed_ms=0.0,
                    sim_cycles=0.0,
                    kernel_launches=0,
                    engine="",
                    retries=0,
                    fallbacks=0,
                    skipped=True,
                    quarantined=True,
                )
            tasks: List[Optional[PoolTask]] = [None] * len(active)
            for position, index in enumerate(active):
                slot = self.pool.slot(index)
                if position not in executed:
                    records[index] = ShardRecord(
                        index=index,
                        device=slot.name,
                        spec_name=slot.spec.name,
                        rows_in=0,
                        rows_out=0,
                        elapsed_ms=0.0,
                        sim_cycles=0.0,
                        kernel_launches=0,
                        engine="",
                        retries=0,
                        fallbacks=0,
                        skipped=True,
                    )
                    continue
                shard_engines = engines
                if engines_by_device and index in engines_by_device:
                    shard_engines = engines_by_device[index]
                shard_plan = (
                    query_residue if override
                    else self._engine_fault_plan_for(slot)
                )
                tasks[position] = self.worker_pool.submit(
                    lambda db=shard_dbs[position], slot=slot,
                    shard_engines=shard_engines,
                    shard_plan=shard_plan: self._run_shard(
                        plan.scatter_spec,
                        db,
                        slot,
                        engines=shard_engines,
                        share=max(1, share),
                        fault_plan=shard_plan,
                    )
                )

            partials: List[QueryResult] = []
            relocated: List[ShardRecord] = []
            relocations_left = self.max_relocations
            failure: Optional[BaseException] = None
            for position, index in enumerate(active):
                task = tasks[position]
                if task is None:
                    continue
                slot = self.pool.slot(index)
                task.wait()
                if failure is not None:
                    task.tracer = None  # never ran, sequentially speaking
                    continue
                error = task.error
                task.merge_trace()
                if error is None and injector is not None \
                        and injector.takes_device(slot.name):
                    # The whole slot died: the shard's work is lost even
                    # though its chain succeeded.
                    error = DeviceLostError(
                        f"device {slot.name} lost while serving shard "
                        f"{position} of {spec.name}",
                        device=slot.name,
                        injected=True,
                    )
                if error is None:
                    result = task.result
                    self.health.record_success(index)
                    partials.append(result)
                    resilience = result.resilience
                    records[index] = ShardRecord(
                        index=index,
                        device=slot.name,
                        spec_name=slot.spec.name,
                        rows_in=metadata.shard_rows[position],
                        rows_out=result.num_rows,
                        elapsed_ms=result.elapsed_ms,
                        sim_cycles=result.counters.elapsed_cycles,
                        kernel_launches=result.counters.kernel_launches,
                        engine=result.engine,
                        retries=getattr(resilience, "retries", 0),
                        fallbacks=getattr(resilience, "fallbacks", 0),
                        skipped=False,
                    )
                    continue
                if isinstance(error, DeadlineExceededError) \
                        or not isinstance(error, ReproError):
                    # Deadlines are the caller's time budget, not a
                    # device fault: never relocated, never blamed on
                    # the slot.  Non-library errors are bugs.
                    failure = error
                    continue
                self.health.record_failure(index)
                records[index] = ShardRecord(
                    index=index,
                    device=slot.name,
                    spec_name=slot.spec.name,
                    rows_in=metadata.shard_rows[position],
                    rows_out=0,
                    elapsed_ms=0.0,
                    sim_cycles=0.0,
                    kernel_launches=0,
                    engine="",
                    retries=0,
                    fallbacks=0,
                    skipped=False,
                    failed=True,
                )
                landed, attempts, relocations_left, relocation_failure = \
                    self._relocate(
                        plan,
                        spec,
                        shard_dbs[position],
                        position,
                        slot,
                        engines=engines,
                        engines_by_device=engines_by_device,
                        share=share,
                        override=override,
                        query_residue=query_residue,
                        injector=injector,
                        failed_devices={index},
                        relocations_left=relocations_left,
                    )
                if landed is None:
                    failure = relocation_failure or error
                    continue
                result, target_slot = landed
                partials.append(result)
                resilience = result.resilience
                relocated.append(
                    ShardRecord(
                        index=index,
                        device=target_slot.name,
                        spec_name=target_slot.spec.name,
                        rows_in=metadata.shard_rows[position],
                        rows_out=result.num_rows,
                        elapsed_ms=result.elapsed_ms,
                        sim_cycles=result.counters.elapsed_cycles,
                        kernel_launches=result.counters.kernel_launches,
                        engine=result.engine,
                        retries=getattr(resilience, "retries", 0),
                        fallbacks=getattr(resilience, "fallbacks", 0),
                        skipped=False,
                        relocations=attempts,
                        relocated_from=slot.name,
                    )
                )
            if failure is not None:
                raise failure

            merge_slot = self.pool.slot(active[0])
            merged = self._merge(spec, plan, partials, merge_slot)
            if injector is not None and injector is self._device_injector:
                fired_delta = len(injector.fired) - persistent_fired_before
                faults_scheduled = fired_delta
                faults_fired = fired_delta
                faults_unfired: Tuple[str, ...] = ()
            elif injector is not None:
                faults_scheduled = injector.scheduled_total
                faults_fired = len(injector.fired)
                faults_unfired = tuple(injector.unfired_specs())
            else:
                faults_scheduled = 0
                faults_fired = 0
                faults_unfired = ()
            report = ShardReport(
                query=spec.name,
                devices=len(self.pool),
                partition=metadata,
                merge_kind=plan.merge_kind,
                records=tuple(records),
                merge_ms=merged.elapsed_ms,
                merge_cycles=merged.counters.elapsed_cycles,
                merge_engine=merged.engine,
                merge_device=merge_slot.name,
                relocated=tuple(relocated),
                device_faults_scheduled=faults_scheduled,
                device_faults_fired=faults_fired,
                device_faults_unfired=faults_unfired,
            )
            return self._assemble(spec, partials, merged, report)

    def _relocate(
        self,
        plan: ShardPlan,
        spec: QuerySpec,
        shard_db: Database,
        position: int,
        source_slot: DeviceSlot,
        engines: Optional[Sequence[str]],
        engines_by_device: Optional[Dict[int, Sequence[str]]],
        share: int,
        override: bool,
        query_residue: Optional[FaultPlan],
        injector: Optional[FaultInjector],
        failed_devices: Set[int],
        relocations_left: int,
    ) -> Tuple[
        Optional[Tuple[QueryResult, DeviceSlot]],
        int,
        int,
        Optional[BaseException],
    ]:
        """Re-run a failed shard on healthy devices, lowest index first.

        Returns ``(landed, attempts, relocations_left, failure)`` where
        ``landed`` is ``(result, target_slot)`` on success and ``None``
        when the budget or the candidate list ran out (or a deadline
        fired — ``failure`` carries it).  Every attempt — including one
        whose target a ``device_down`` fault kills before the run —
        consumes relocation budget.
        """
        attempts = 0
        while relocations_left > 0:
            candidates = [
                index
                for index in range(len(self.pool))
                if self.health.available(index)
                and index not in failed_devices
            ]
            if not candidates:
                break
            target = candidates[0]
            target_slot = self.pool.slot(target)
            relocations_left -= 1
            attempts += 1
            with maybe_span(
                "shard.relocate",
                "shard",
                query=spec.name,
                shard=position,
                source=source_slot.name,
                target=target_slot.name,
            ):
                if injector is not None \
                        and injector.takes_device(target_slot.name):
                    self.health.record_failure(target)
                    failed_devices.add(target)
                    continue
                shard_engines = engines
                if engines_by_device and target in engines_by_device:
                    shard_engines = engines_by_device[target]
                shard_plan = (
                    query_residue if override
                    else self._engine_fault_plan_for(target_slot)
                )
                try:
                    result = self._run_shard(
                        plan.scatter_spec,
                        shard_db,
                        target_slot,
                        engines=shard_engines,
                        share=max(1, share),
                        fault_plan=shard_plan,
                    )
                except DeadlineExceededError as exc:
                    return None, attempts, relocations_left, exc
                except ReproError:
                    self.health.record_failure(target)
                    failed_devices.add(target)
                    continue
                self.health.record_success(target)
                return (
                    (result, target_slot),
                    attempts,
                    relocations_left,
                    None,
                )
        return None, attempts, relocations_left, None

    def _run_shard(
        self,
        scatter_spec: QuerySpec,
        shard_db: Database,
        slot: DeviceSlot,
        engines: Optional[Sequence[str]],
        share: int,
        fault_plan: Optional[FaultPlan],
    ) -> QueryResult:
        device = slot.spec
        if share > 1:
            device = device.with_overrides(
                concurrency=max(1, device.concurrency // share)
            )
        budget = self.memory_budget_bytes
        if budget is None:
            budget = slot.memory_budget_bytes
        if budget is None and share > 1:
            # Sharing an unbounded device still splits its real memory.
            budget = slot.effective_budget_bytes
        if budget is not None:
            budget = budget / share
        with maybe_span(
            "shard.scatter",
            "shard",
            query=scatter_spec.name,
            device=slot.name,
            rows=shard_db.table(
                scatter_spec.table_ref(scatter_spec.fact).table
            ).num_rows,
        ):
            if not self.resilient:
                engine = GPLEngine(
                    shard_db,
                    device,
                    config=self.config,
                    partitioned_joins=self.partitioned_joins,
                )
                engine.plan_cache = self.plan_cache
                engine.segment_cache = self.segment_cache
                return engine.execute(scatter_spec)
            executor = ResilientExecutor(
                shard_db,
                device,
                config=self.config,
                fault_plan=fault_plan,
                memory_budget_bytes=budget,
                max_retries=self.max_retries,
                engines=engines or self.engines,
                partitioned_joins=self.partitioned_joins,
                plan_cache=self.plan_cache,
                deadline_cycles=self.deadline_cycles,
                checkpoint_store=self.checkpoint_store,
                checkpoints=self.checkpoints,
                segment_cache=self.segment_cache,
            )
            return executor.execute(scatter_spec)

    # -- merge ------------------------------------------------------------

    def _partials_table(self, partials: Sequence[QueryResult]) -> Table:
        """Concatenate partial batches into one deterministic table.

        Shards are concatenated in shard order; within a shard the
        engine's output order is deterministic, so two runs build
        byte-identical partials tables.
        """
        first = partials[0]
        columns: Dict[str, np.ndarray] = {}
        defs: List[ColumnDef] = []
        for name in first.columns:
            arrays = [partial.batch[name] for partial in partials]
            merged = np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
            dictionary = first.dictionaries.get(name)
            defs.append(
                ColumnDef(name, _dtype_for(merged, dictionary), dictionary)
            )
            columns[name] = merged
        return Table(TableSchema(tuple(defs)), columns)

    def _merge(
        self,
        spec: QuerySpec,
        plan: ShardPlan,
        partials: Sequence[QueryResult],
        merge_slot: DeviceSlot,
    ) -> QueryResult:
        table = self._partials_table(partials)
        with maybe_span(
            "shard.gather",
            "shard",
            query=spec.name,
            partial_rows=table.num_rows,
            kind=plan.merge_kind,
        ):
            if plan.gather_spec is None:
                return self._concat_merge(spec, table, partials[0], merge_slot)
            gather_db = Database()
            gather_db.add(PARTIALS_TABLE, table)
            if not self.resilient:
                engine = GPLEngine(
                    gather_db, merge_slot.spec, config=self.config
                )
                engine.plan_cache = self.plan_cache
                engine.segment_cache = self.segment_cache
                return engine.execute(plan.gather_spec)
            # The merge runs resiliently (admission + fallback) but
            # without fault injection: fault schedules target shard
            # work, and a deterministic merge keeps soak invariants
            # anchored to the scatter phase.
            executor = ResilientExecutor(
                gather_db,
                merge_slot.spec,
                config=self.config,
                memory_budget_bytes=merge_slot.memory_budget_bytes,
                max_retries=self.max_retries,
                engines=self.engines,
                plan_cache=self.plan_cache,
                checkpoint_store=self.checkpoint_store,
                checkpoints=self.checkpoints,
                segment_cache=self.segment_cache,
            )
            return executor.execute(plan.gather_spec)

    def _concat_merge(
        self,
        spec: QuerySpec,
        table: Table,
        first: QueryResult,
        merge_slot: DeviceSlot,
    ) -> QueryResult:
        """Host-side merge for plain selections: concat + order + limit."""
        if spec.order_by:
            table = table.sort_by(spec.order_by, spec.order_desc)
        batch = {
            name: table.column(name)[: spec.limit]
            if spec.limit is not None
            else table.column(name)
            for name in table.schema.names
        }
        return QueryResult(
            query=spec.name,
            engine="host-concat",
            device=merge_slot.spec.name,
            batch=batch,
            columns=tuple(table.schema.names),
            elapsed_ms=0.0,
            counters=HardwareCounters(num_cus=0),
            report=first.report,
            dictionaries=dict(first.dictionaries),
        )

    # -- assembly ---------------------------------------------------------

    def _assemble(
        self,
        spec: QuerySpec,
        partials: Sequence[QueryResult],
        merged: QueryResult,
        report: ShardReport,
    ) -> QueryResult:
        counters = self._fleet_counters(partials, merged)
        engines = {partial.engine for partial in partials}
        engine = engines.pop() if len(engines) == 1 else "mixed"
        names = sorted({slot.spec.name for slot in self.pool})
        result = QueryResult(
            query=spec.name,
            engine=f"sharded:{engine}x{report.fanout}",
            device=f"pool[{len(self.pool)}: {' + '.join(names)}]",
            batch=merged.batch,
            columns=merged.columns,
            elapsed_ms=report.makespan_ms,
            counters=counters,
            report=merged.report,
            dictionaries=dict(merged.dictionaries),
            resilience=merged.resilience,
            shard=report,
        )
        return result

    def _fleet_counters(
        self, partials: Sequence[QueryResult], merged: QueryResult
    ) -> HardwareCounters:
        """Fleet-level counters: work summed, elapsed on the critical path.

        ``elapsed_cycles`` adds the slowest shard's device-local cycles
        to the merge cycles — the simulated makespan in cycles (exact
        for homogeneous pools; for mixed pools the per-device clocks
        differ and :attr:`ShardReport.makespan_ms` is the comparable
        measure).
        """
        counters = HardwareCounters(
            num_cus=sum(partial.counters.num_cus for partial in partials)
        )
        sources = list(partials) + [merged]
        for source in sources:
            other = source.counters
            counters.compute_cycles += other.compute_cycles
            counters.memory_cycles += other.memory_cycles
            counters.stall_cycles += other.stall_cycles
            counters.channel_cycles += other.channel_cycles
            counters.delay_cycles += other.delay_cycles
            counters.launch_overhead_cycles += other.launch_overhead_cycles
            counters.bytes_materialized += other.bytes_materialized
            counters.bytes_channel += other.bytes_channel
            counters.cache_hits += other.cache_hits
            counters.cache_accesses += other.cache_accesses
            counters.kernel_launches += other.kernel_launches
            counters.kernel_stats.extend(other.kernel_stats)
        scatter_cycles = max(
            (partial.counters.elapsed_cycles for partial in partials),
            default=0.0,
        )
        counters.elapsed_cycles = (
            scatter_cycles + merged.counters.elapsed_cycles
        )
        return counters
