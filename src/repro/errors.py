"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific failure mode.

Runtime faults that the resilience layer (:mod:`repro.core.resilience`)
can react to carry structured context: :class:`DeviceMemoryError` knows
the requested and available bytes, :class:`PipelineDeadlockError` carries
a :class:`DeadlockSnapshot` of the stalled segment, and
:class:`KernelFaultError` names the kernel and cycle of the abort.  The
snapshot dataclasses live here (pure data, no imports) so both the
simulator and callers can share them without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or type was used inconsistently with its schema."""


class ExpressionError(ReproError):
    """An expression tree is malformed or evaluated against missing columns."""


class PlanError(ReproError):
    """A logical or physical query plan is invalid."""


class SimulationError(ReproError):
    """The GPU simulator was driven into an inconsistent state."""


class ChannelError(SimulationError):
    """Misuse of an inter-kernel data channel (pipe)."""


class OccupancyError(SimulationError):
    """A kernel configuration violates device resource limits (paper Eq. 2)."""


class CalibrationError(ReproError):
    """Channel calibration data is missing or cannot be interpolated."""


class ModelError(ReproError):
    """The analytical cost model was given inconsistent inputs."""


class ExecutionError(ReproError):
    """A query engine failed while executing a physical plan."""


# ---------------------------------------------------------------------------
# resilience-layer faults (context-carrying)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StageSnapshot:
    """State of one pipeline stage at the moment a watchdog fired."""

    index: int
    name: str
    completed: int
    total: int
    ready: int
    active: int
    max_active: int
    packets_out: int

    @property
    def finished(self) -> bool:
        return self.completed >= self.total


@dataclass(frozen=True)
class ChannelSnapshot:
    """Occupancy of one channel edge at the moment a watchdog fired."""

    edge: int
    buffered_packets: int
    reserved_packets: int
    capacity_packets: int
    total_packets: int

    @property
    def in_flight(self) -> int:
        return self.buffered_packets + self.reserved_packets

    @property
    def full(self) -> bool:
        return self.in_flight >= self.capacity_packets


@dataclass(frozen=True)
class DeadlockSnapshot:
    """Diagnostic state of a pipelined segment that stopped making progress.

    Captured by the simulator's watchdog when the event loop drains with
    unfinished stages (classic producer/consumer deadlock) or when the
    no-progress cycle budget is exhausted.
    """

    segment: str
    cycle: float
    last_progress_cycle: float
    stages: Tuple[StageSnapshot, ...] = field(default_factory=tuple)
    channels: Tuple[ChannelSnapshot, ...] = field(default_factory=tuple)

    @property
    def unfinished_stages(self) -> Tuple[StageSnapshot, ...]:
        return tuple(s for s in self.stages if not s.finished)

    @property
    def blocked_workgroups(self) -> int:
        """Work-group units queued behind stages that can no longer run."""
        return sum(s.ready for s in self.unfinished_stages)

    def describe(self) -> str:
        lines = [
            f"segment {self.segment or '?'} stopped at cycle "
            f"{self.cycle:.0f} (last progress at "
            f"{self.last_progress_cycle:.0f})"
        ]
        for s in self.stages:
            lines.append(
                f"  stage {s.index} {s.name}: {s.completed}/{s.total} done, "
                f"{s.ready} ready, {s.active}/{s.max_active} active"
            )
        for c in self.channels:
            lines.append(
                f"  channel {c.edge}: {c.in_flight}/{c.capacity_packets} "
                f"packets in flight"
                + (" (FULL)" if c.full else "")
            )
        return "\n".join(lines)


class DeviceMemoryError(ReproError):
    """A launch would exceed (or exhausted) the device memory budget."""

    def __init__(
        self,
        message: str,
        segment: str = "",
        requested_bytes: float = 0.0,
        budget_bytes: float = 0.0,
        injected: bool = False,
    ):
        super().__init__(message)
        self.segment = segment
        self.requested_bytes = requested_bytes
        self.budget_bytes = budget_bytes
        self.injected = injected


class AdmissionError(ReproError):
    """Admission control rejected a launch before it reached the device."""

    def __init__(
        self,
        message: str,
        segment: str = "",
        footprint_bytes: float = 0.0,
        budget_bytes: float = 0.0,
    ):
        super().__init__(message)
        self.segment = segment
        self.footprint_bytes = footprint_bytes
        self.budget_bytes = budget_bytes


class KernelFaultError(SimulationError):
    """A kernel aborted mid-flight (injected or simulated hardware fault)."""

    def __init__(
        self,
        message: str,
        segment: str = "",
        kernel: str = "",
        cycle: float = 0.0,
        injected: bool = False,
    ):
        super().__init__(message)
        self.segment = segment
        self.kernel = kernel
        self.cycle = cycle
        self.injected = injected


class DeviceLostError(ReproError):
    """A whole device slot failed while shards were running on it.

    Raised at the shard layer (never inside a simulated segment) when a
    ``device_down`` fault marks the slot lost.  Retryable *by relocation
    only*: re-running the same shard on the same device cannot help, so
    the resilience chain never sees this error — the sharded executor
    moves the partition to a healthy slot instead.
    """

    def __init__(self, message: str, device: str = "", injected: bool = False):
        super().__init__(message)
        self.device = device
        self.injected = injected


class DeadlineExceededError(ReproError):
    """A query ran past its deadline and was cooperatively cancelled.

    Raised by the simulator's cancellation checks (segment and tile
    boundaries) when the simulated cycles consumed by a query — summed
    across resilient retries — exceed ``QuerySpec.deadline_cycles`` (or
    the service-level default).  Deliberately *not* a
    :class:`SimulationError`: the device did nothing wrong, the caller's
    time budget simply ran out, so the resilience layer treats it as
    fatal rather than retryable.
    """

    def __init__(
        self,
        message: str,
        query: str = "",
        deadline_cycles: float = 0.0,
        elapsed_cycles: float = 0.0,
        where: str = "",
    ):
        super().__init__(message)
        self.query = query
        self.deadline_cycles = deadline_cycles
        self.elapsed_cycles = elapsed_cycles
        self.where = where


class PipelineDeadlockError(SimulationError):
    """A pipelined segment stopped making progress.

    ``snapshot`` carries the per-stage and per-channel diagnostic state so
    callers (and humans) can see *why*: which stage starved, which channel
    filled, how many work-groups were blocked.
    """

    def __init__(self, message: str, snapshot: Optional[DeadlockSnapshot] = None):
        if snapshot is not None:
            message = f"{message}\n{snapshot.describe()}"
        super().__init__(message)
        self.snapshot = snapshot
