"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the specific failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table, column, or type was used inconsistently with its schema."""


class ExpressionError(ReproError):
    """An expression tree is malformed or evaluated against missing columns."""


class PlanError(ReproError):
    """A logical or physical query plan is invalid."""


class SimulationError(ReproError):
    """The GPU simulator was driven into an inconsistent state."""


class ChannelError(SimulationError):
    """Misuse of an inter-kernel data channel (pipe)."""


class OccupancyError(SimulationError):
    """A kernel configuration violates device resource limits (paper Eq. 2)."""


class CalibrationError(ReproError):
    """Channel calibration data is missing or cannot be interpolated."""


class ModelError(ReproError):
    """The analytical cost model was given inconsistent inputs."""


class ExecutionError(ReproError):
    """A query engine failed while executing a physical plan."""
