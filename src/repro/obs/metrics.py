"""Metrics registry: counters, gauges, histograms with label sets.

The serving and resilience layers used to report ad-hoc counter dicts;
this module gives those numbers one home with one naming scheme, two
export formats (JSON and the Prometheus text exposition format), and —
crucially for the docs linter — a machine-readable **catalogue**:
:data:`METRIC_CATALOGUE` is the single source of truth for every metric
name, type, and label set, and ``scripts/check_docs.py`` fails the build
when ``docs/observability.md`` and the catalogue disagree.

Everything is deterministic: metrics have no timestamps, label series
are stored in insertion order and exported sorted, and histogram bucket
bounds are fixed per metric.  Two identical runs therefore export
identical snapshots, which the tests assert.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "MetricSpec",
    "METRIC_CATALOGUE",
    "metric_catalogue",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bounds for simulated-millisecond latencies.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)

#: Histogram bounds for relative errors (dimensionless fractions).
ERROR_BUCKETS: Tuple[float, ...] = (
    0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0,
)


@dataclass(frozen=True)
class MetricSpec:
    """One catalogue entry: the contract a metric is exported under."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    labels: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = LATENCY_BUCKETS_MS


#: Every metric the engine can emit.  Docs and code share this list:
#: ``docs/observability.md`` documents exactly these names (enforced by
#: ``scripts/check_docs.py``), and :class:`MetricsRegistry` refuses
#: lookups of anything else.
METRIC_CATALOGUE: Tuple[MetricSpec, ...] = (
    # -- serving ---------------------------------------------------------
    MetricSpec(
        "serve_queries_total", "counter",
        "Queries drained through the service, by outcome.",
        labels=("status",),  # ok | failed | deadline | shed | cached
    ),
    MetricSpec(
        "serve_rounds_total", "counter",
        "Admission rounds executed across all drains.",
    ),
    MetricSpec(
        "serve_drains_total", "counter",
        "Backlog drains (each produces one ServiceReport).",
    ),
    MetricSpec(
        "serve_wait_ms", "histogram",
        "Simulated queue wait before a query's round started.",
    ),
    MetricSpec(
        "serve_exec_ms", "histogram",
        "Simulated execution time of completed queries.",
    ),
    MetricSpec(
        "serve_latency_ms", "histogram",
        "Simulated service latency (wait + execution) of completed queries.",
    ),
    MetricSpec(
        "serve_makespan_ms", "gauge",
        "Makespan of the most recent drain.",
    ),
    MetricSpec(
        "serve_workers", "gauge",
        "Host worker threads draining each admission round.",
    ),
    MetricSpec(
        "serve_deadline_exceeded_total", "counter",
        "Queries cancelled because their cycle deadline expired.",
    ),
    MetricSpec(
        "serve_shed_total", "counter",
        "Queries dropped by the bounded admission queue, by policy.",
        labels=("policy",),  # reject | shed-oldest
    ),
    # -- sharded execution -----------------------------------------------
    MetricSpec(
        "shard_queries_total", "counter",
        "Queries executed by scatter-gather across a device pool, by "
        "merge kind.",
        labels=("merge",),  # reaggregate | distinct | concat
    ),
    MetricSpec(
        "shard_fanout", "histogram",
        "Shards that actually executed per sharded query (empty shards "
        "are skipped).",
        buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
    ),
    MetricSpec(
        "shard_skew", "gauge",
        "Partition skew of the most recent sharded query (largest shard "
        "over mean shard; 1.0 = balanced).",
    ),
    MetricSpec(
        "shard_merge_ms", "histogram",
        "Simulated gather/merge time per sharded query.",
    ),
    MetricSpec(
        "shard_device_busy_ms_total", "counter",
        "Cumulative simulated busy time per pool device (scatter work "
        "plus, on the merge device, merges).",
        labels=("device",),
    ),
    MetricSpec(
        "shard_relocations_total", "counter",
        "Shard relocation attempts: a shard whose device failed was "
        "re-run on a healthy device.",
    ),
    MetricSpec(
        "pool_quarantined", "gauge",
        "Device slots currently quarantined by the pool-health tracker.",
    ),
    MetricSpec(
        "pool_probe_total", "counter",
        "Probation probes opened: a quarantined slot finished its "
        "cooldown and re-entered the scatter half-open.",
    ),
    # -- circuit breaker -------------------------------------------------
    MetricSpec(
        "breaker_transitions_total", "counter",
        "Circuit-breaker state transitions, by state entered.",
        labels=("state",),  # closed | open | half-open
    ),
    MetricSpec(
        "breaker_degraded_total", "counter",
        "Queries routed straight to KBE by an open breaker.",
    ),
    # -- segment checkpoints ---------------------------------------------
    MetricSpec(
        "checkpoint_segments_total", "counter",
        "Segment checkpoint events across the shared store, by event.",
        labels=("event",),  # recorded | resumed | evicted | invalidated
    ),
    MetricSpec(
        "checkpoint_live_bytes", "gauge",
        "Bytes of materialized segment outputs held by the store.",
    ),
    # -- caches ----------------------------------------------------------
    MetricSpec(
        "cache_lookups_total", "counter",
        "Serving-cache lookups, by cache and outcome.",
        labels=("cache", "outcome"),
        # cache: plan|calibration|search|result|segment
    ),
    MetricSpec(
        "cache_evictions_total", "counter",
        "LRU evictions, by cache.",
        labels=("cache",),
    ),
    MetricSpec(
        "cache_result_bytes", "gauge",
        "Bytes of materialized query results held by the result cache.",
    ),
    MetricSpec(
        "cache_segment_bytes", "gauge",
        "Bytes of materialized segment outputs held by the cross-query "
        "segment cache.",
    ),
    # -- batched admission -----------------------------------------------
    MetricSpec(
        "batch_dedupe_queries_total", "counter",
        "Queries answered by another identical pending query's "
        "execution (dedupe fan-out).",
    ),
    MetricSpec(
        "batch_shared_scan_rounds_total", "counter",
        "Admission rounds whose members shared one fact-table scan.",
    ),
    # -- resilience ------------------------------------------------------
    MetricSpec(
        "resilience_retries_total", "counter",
        "Same-engine retries down the Δ-halving ladder.",
    ),
    MetricSpec(
        "resilience_fallbacks_total", "counter",
        "Engine-chain fallbacks (GPL -> GPL w/o CE -> KBE).",
    ),
    MetricSpec(
        "resilience_reconfigurations_total", "counter",
        "Successful shrink-reconfigurations between retries.",
    ),
    MetricSpec(
        "resilience_admission_shrinks_total", "counter",
        "Pre-launch admission shrinks down the Δ ladder.",
    ),
    MetricSpec(
        "resilience_admission_rejections_total", "counter",
        "Typed admission rejections at the Δ floor.",
    ),
    MetricSpec(
        "resilience_faults_total", "counter",
        "Injected faults that actually fired, by kind.",
        labels=("kind",),
    ),
    # -- cost-model drift ------------------------------------------------
    MetricSpec(
        "model_drift_relative_error", "histogram",
        "Per-query |measured - predicted| / measured from serve telemetry.",
        buckets=ERROR_BUCKETS,
    ),
    MetricSpec(
        "model_drift_observations_total", "counter",
        "Drift observations, by direction of the model's miss.",
        labels=("direction",),  # under | over | exact
    ),
)


def metric_catalogue() -> Tuple[MetricSpec, ...]:
    """The full metric catalogue (the docs linter's source of truth)."""
    return METRIC_CATALOGUE


def _label_key(
    spec: MetricSpec, labels: Dict[str, object]
) -> Tuple[str, ...]:
    if set(labels) != set(spec.labels):
        raise ValueError(
            f"metric {spec.name!r} takes labels {sorted(spec.labels)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in spec.labels)


class Counter:
    """Monotonically increasing value, one series per label set."""

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self._series: Dict[Tuple[str, ...], float] = {}
        self._lock = threading.RLock()

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.spec.name!r} cannot decrease")
        key = _label_key(self.spec, labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + float(amount)

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self.spec, labels), 0.0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        return [
            (dict(zip(self.spec.labels, key)), value)
            for key, value in sorted(self._series.items())
        ]


class Gauge:
    """Last-written value, one series per label set."""

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self._series: Dict[Tuple[str, ...], float] = {}
        self._lock = threading.RLock()

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._series[_label_key(self.spec, labels)] = float(value)

    def value(self, **labels) -> float:
        return self._series.get(_label_key(self.spec, labels), 0.0)

    def series(self) -> List[Tuple[Dict[str, str], float]]:
        return [
            (dict(zip(self.spec.labels, key)), value)
            for key, value in sorted(self._series.items())
        ]


@dataclass
class _HistogramState:
    counts: List[int]
    total: float = 0.0
    count: int = 0


class Histogram:
    """Cumulative-bucket histogram (Prometheus ``le`` semantics)."""

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.bounds: Tuple[float, ...] = tuple(spec.buckets)
        self._series: Dict[Tuple[str, ...], _HistogramState] = {}
        self._lock = threading.RLock()

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.spec, labels)
        with self._lock:
            state = self._series.get(key)
            if state is None:
                state = _HistogramState(counts=[0] * (len(self.bounds) + 1))
                self._series[key] = state
            index = len(self.bounds)  # the +Inf bucket
            for position, bound in enumerate(self.bounds):
                if value <= bound:
                    index = position
                    break
            state.counts[index] += 1
            state.total += float(value)
            state.count += 1

    def snapshot(self, **labels) -> Dict[str, object]:
        """Cumulative counts per bound, plus sum and count."""
        state = self._series.get(_label_key(self.spec, labels))
        if state is None:
            return {"buckets": [], "count": 0, "sum": 0.0}
        cumulative, running = [], 0
        for position, bound in enumerate(self.bounds):
            running += state.counts[position]
            cumulative.append((bound, running))
        cumulative.append((float("inf"), state.count))
        return {
            "buckets": cumulative,
            "count": state.count,
            "sum": state.total,
        }

    def series(self) -> List[Tuple[Dict[str, str], _HistogramState]]:
        return [
            (dict(zip(self.spec.labels, key)), state)
            for key, state in sorted(self._series.items())
        ]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """All metrics of one process/service, instantiated from the catalogue.

    Lookups are typed (``registry.counter("serve_rounds_total")``) and
    fail fast on unknown names or kind mismatches, so instrumentation
    cannot silently invent metrics the catalogue — and therefore the
    documentation — does not know about.
    """

    def __init__(self, catalogue: Tuple[MetricSpec, ...] = METRIC_CATALOGUE):
        self.specs: Dict[str, MetricSpec] = {}
        self._metrics: Dict[str, object] = {}
        for spec in catalogue:
            if spec.name in self.specs:
                raise ValueError(f"duplicate metric {spec.name!r}")
            if spec.kind not in _KINDS:
                raise ValueError(
                    f"metric {spec.name!r} has unknown kind {spec.kind!r}"
                )
            self.specs[spec.name] = spec
            self._metrics[spec.name] = _KINDS[spec.kind](spec)

    def _get(self, name: str, kind: str):
        spec = self.specs.get(name)
        if spec is None:
            raise KeyError(f"metric {name!r} is not in the catalogue")
        if spec.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {spec.kind}, not a {kind}"
            )
        return self._metrics[name]

    def counter(self, name: str) -> Counter:
        return self._get(name, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, "gauge")

    def histogram(self, name: str) -> Histogram:
        return self._get(name, "histogram")

    def names(self) -> List[str]:
        return sorted(self.specs)

    # -- export ----------------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """Nested-dict snapshot; deterministic (sorted names and series).

        Series that were never touched are omitted, so a snapshot is
        exactly what the run emitted.
        """
        out: Dict[str, object] = {}
        for name in self.names():
            spec = self.specs[name]
            metric = self._metrics[name]
            series: List[Dict[str, object]] = []
            if spec.kind == "histogram":
                for labels, state in metric.series():
                    series.append(
                        {
                            "labels": labels,
                            "count": state.count,
                            "sum": state.total,
                        }
                    )
            else:
                for labels, value in metric.series():
                    series.append({"labels": labels, "value": value})
            if series:
                out[name] = {
                    "type": spec.kind,
                    "help": spec.help,
                    "series": series,
                }
        return out

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (``# HELP``/``# TYPE``)."""

        def fmt_labels(labels: Dict[str, str], extra: str = "") -> str:
            parts = [f'{k}="{v}"' for k, v in sorted(labels.items())]
            if extra:
                parts.append(extra)
            return "{" + ",".join(parts) + "}" if parts else ""

        lines: List[str] = []
        for name in self.names():
            spec = self.specs[name]
            metric = self._metrics[name]
            if not metric.series():
                continue
            lines.append(f"# HELP {name} {spec.help}")
            lines.append(f"# TYPE {name} {spec.kind}")
            if spec.kind == "histogram":
                for labels, state in metric.series():
                    running = 0
                    for position, bound in enumerate(metric.bounds):
                        running += state.counts[position]
                        le = 'le="%g"' % bound
                        lines.append(
                            f"{name}_bucket{fmt_labels(labels, le)} {running}"
                        )
                    inf = 'le="+Inf"'
                    lines.append(
                        f"{name}_bucket{fmt_labels(labels, inf)} {state.count}"
                    )
                    lines.append(
                        f"{name}_sum{fmt_labels(labels)} {state.total:g}"
                    )
                    lines.append(
                        f"{name}_count{fmt_labels(labels)} {state.count}"
                    )
            else:
                for labels, value in metric.series():
                    lines.append(f"{name}{fmt_labels(labels)} {value:g}")
        return "\n".join(lines) + ("\n" if lines else "")
