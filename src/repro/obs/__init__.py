"""repro.obs — end-to-end observability for the GPL reproduction.

Three pieces, designed to compose:

- :mod:`repro.obs.tracing` — a deterministic span tracer threading one
  trace through planning, configuration search, resilience, the
  simulated device, and the serving loop; exports Chrome/Perfetto
  ``trace.json``.
- :mod:`repro.obs.metrics` — a typed metrics registry (counters,
  gauges, histograms with label sets) built from a single-source-of-
  truth catalogue; exports JSON and Prometheus text.
- :mod:`repro.obs.drift` — a cost-model drift recorder pairing the
  model's predicted cycles with the device's measured cycles, rolled up
  the way Figs 11/24 report error.

See ``docs/observability.md`` for the span model, the full metrics
catalogue, and a worked ``serve --trace-out`` walkthrough.
"""

from repro.obs.drift import DriftRecord, DriftRecorder
from repro.obs.metrics import (
    METRIC_CATALOGUE,
    Counter,
    Gauge,
    Histogram,
    MetricSpec,
    MetricsRegistry,
    metric_catalogue,
)
from repro.obs.tracing import (
    CATEGORY_TRACKS,
    Span,
    SpanEvent,
    Tracer,
    add_event,
    current_tracer,
    load_trace,
    maybe_span,
    summarize_trace,
    use_tracer,
)

__all__ = [
    "CATEGORY_TRACKS",
    "Counter",
    "DriftRecord",
    "DriftRecorder",
    "Gauge",
    "Histogram",
    "METRIC_CATALOGUE",
    "MetricSpec",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "Tracer",
    "add_event",
    "current_tracer",
    "load_trace",
    "maybe_span",
    "metric_catalogue",
    "summarize_trace",
    "use_tracer",
]
