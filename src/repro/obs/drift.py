"""Cost-model drift: predicted-vs-actual cycles from live telemetry.

Figures 11 and 24 of the paper characterize the cost model by running
every query twice — once through the model, once on the device — and
plotting the relative error.  In a serving deployment that second pass
is free: the model already predicted each admitted query's cycles
(`ScheduledQuery.est_cost_cycles`), and the device then measured them
(`result.counters.elapsed_cycles`).  :class:`DriftRecorder` pairs the
two per (query, device, Δ) and summarizes the error exactly the way the
figures do:

``relative_error = |measured - predicted| / measured``

with ``underestimated`` meaning the model predicted fewer cycles than
the device spent — the direction the paper says its model errs, because
it ignores some overlap-breaking stalls.

A recorder can feed a :class:`~repro.obs.metrics.MetricsRegistry`
(``model_drift_relative_error`` histogram and
``model_drift_observations_total`` counter) so drift shows up alongside
the serving metrics without a separate export path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["DriftRecord", "DriftRecorder"]


@dataclass(frozen=True)
class DriftRecord:
    """One predicted-vs-measured observation for a query execution."""

    query: str
    device: str
    tile_bytes: int
    predicted_cycles: float
    measured_cycles: float

    @property
    def relative_error(self) -> float:
        """``|measured - predicted| / measured`` (0.0 when measured is 0)."""
        if self.measured_cycles <= 0:
            return 0.0
        return (
            abs(self.measured_cycles - self.predicted_cycles)
            / self.measured_cycles
        )

    @property
    def underestimated(self) -> bool:
        """True when the model predicted fewer cycles than were spent."""
        return self.predicted_cycles < self.measured_cycles

    @property
    def direction(self) -> str:
        if self.predicted_cycles == self.measured_cycles:
            return "exact"
        return "under" if self.underestimated else "over"


class DriftRecorder:
    """Accumulates :class:`DriftRecord` observations and summarizes them.

    ``registry`` is optional; when given, every :meth:`record` also
    observes ``model_drift_relative_error`` and increments
    ``model_drift_observations_total{direction=...}``.
    """

    def __init__(self, registry=None):
        self.records: List[DriftRecord] = []
        self._registry = registry

    def record(
        self,
        query: str,
        device: str,
        tile_bytes: int,
        predicted_cycles: float,
        measured_cycles: float,
    ) -> DriftRecord:
        observation = DriftRecord(
            query=query,
            device=device,
            tile_bytes=int(tile_bytes),
            predicted_cycles=float(predicted_cycles),
            measured_cycles=float(measured_cycles),
        )
        self.records.append(observation)
        if self._registry is not None:
            self._registry.histogram("model_drift_relative_error").observe(
                observation.relative_error
            )
            self._registry.counter("model_drift_observations_total").inc(
                direction=observation.direction
            )
        return observation

    def __len__(self) -> int:
        return len(self.records)

    # -- summaries -------------------------------------------------------

    def per_query(self) -> Dict[str, Dict[str, float]]:
        """Mean error and underestimate share per query name, sorted."""
        grouped: Dict[str, List[DriftRecord]] = {}
        for observation in self.records:
            grouped.setdefault(observation.query, []).append(observation)
        out: Dict[str, Dict[str, float]] = {}
        for query in sorted(grouped):
            members = grouped[query]
            out[query] = {
                "observations": len(members),
                "mean_relative_error": sum(
                    m.relative_error for m in members
                ) / len(members),
                "max_relative_error": max(
                    m.relative_error for m in members
                ),
                "underestimated_share": sum(
                    1 for m in members if m.underestimated
                ) / len(members),
            }
        return out

    def overall(self) -> Dict[str, float]:
        """The Fig 11/24 headline numbers across all observations."""
        if not self.records:
            return {
                "observations": 0,
                "mean_relative_error": 0.0,
                "max_relative_error": 0.0,
                "underestimated_share": 0.0,
            }
        errors = [observation.relative_error for observation in self.records]
        return {
            "observations": len(self.records),
            "mean_relative_error": sum(errors) / len(errors),
            "max_relative_error": max(errors),
            "underestimated_share": sum(
                1 for observation in self.records if observation.underestimated
            ) / len(self.records),
        }

    def to_json(self) -> Dict[str, object]:
        """Full dump: every observation plus the roll-ups."""
        return {
            "records": [
                {
                    "query": observation.query,
                    "device": observation.device,
                    "tile_bytes": observation.tile_bytes,
                    "predicted_cycles": observation.predicted_cycles,
                    "measured_cycles": observation.measured_cycles,
                    "relative_error": observation.relative_error,
                    "underestimated": observation.underestimated,
                }
                for observation in self.records
            ],
            "per_query": self.per_query(),
            "overall": self.overall(),
        }

    def to_text(self) -> str:
        """Terminal-friendly drift table (the serve report appends it)."""
        if not self.records:
            return "cost-model drift: no observations"
        lines = ["cost-model drift (predicted vs measured cycles):"]
        for query, stats in self.per_query().items():
            lines.append(
                f"  {query:12s} n={int(stats['observations']):3d}  "
                f"mean err {stats['mean_relative_error']:6.1%}  "
                f"max err {stats['max_relative_error']:6.1%}  "
                f"under {stats['underestimated_share']:5.0%}"
            )
        overall = self.overall()
        lines.append(
            f"  {'overall':12s} n={int(overall['observations']):3d}  "
            f"mean err {overall['mean_relative_error']:6.1%}  "
            f"max err {overall['max_relative_error']:6.1%}  "
            f"under {overall['underestimated_share']:5.0%}"
        )
        return "\n".join(lines)
