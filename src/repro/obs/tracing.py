"""Deterministic span tracing across every layer of the engine.

The paper's argument is made by *measurement* — profiler counters,
per-category breakdowns, predicted-vs-actual error — and this module is
the connective tissue that lets one query (or one serve drain) be read
as a single story across layers: planning (``plan.*``), the
configuration search (``search.*``), graceful degradation
(``resilience.*``), the simulated device (``sim.*``), and the serving
loop (``serve.*``).

Design constraints, in order:

1. **Determinism.**  Spans are stamped from a *virtual* clock the tracer
   owns — it only moves when instrumented code advances it (the
   simulator feeds it elapsed device cycles; zero-cost spans tick one
   cycle so intervals stay well-formed).  No wall clock, no randomness:
   two identical runs serialize to byte-identical traces, which the
   tests assert.
2. **Zero cost when off.**  Layers are instrumented through
   :func:`maybe_span` / :func:`add_event`, which are no-ops unless a
   tracer has been installed with :func:`use_tracer`.
3. **Standard output.**  :meth:`Tracer.to_perfetto` emits the Chrome /
   Perfetto ``trace.json`` format (``ph``/``ts``/``dur`` complete
   events, one track per layer), loadable in ``ui.perfetto.dev`` as-is.

Timestamps are virtual device cycles exported as microseconds (1 cycle
= 1 µs); only relative structure is meaningful, exactly as with the
simulator's cycle accounting.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "CATEGORY_TRACKS",
    "Span",
    "SpanEvent",
    "Tracer",
    "current_tracer",
    "use_tracer",
    "maybe_span",
    "add_event",
    "load_trace",
    "summarize_trace",
]

#: Perfetto track (``tid``) per span category — one named row per layer,
#: in pipeline order.  Unknown categories land on track 15.
CATEGORY_TRACKS: Dict[str, int] = {
    "serve": 1,
    "plan": 2,
    "search": 3,
    "resilience": 4,
    "simulator": 5,
    # Appended out of pipeline order (shard sits between serve and
    # plan) so existing track ids — and recorded traces — stay stable.
    "shard": 6,
}


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (a retry, a fallback)."""

    name: str
    ts: float
    attrs: Dict[str, object] = field(default_factory=dict)


@dataclass
class Span:
    """One timed interval; nests through ``children``."""

    name: str
    category: str
    start: float
    end: float = 0.0
    attrs: Dict[str, object] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Owns the span tree and the deterministic virtual clock.

    ``capture_kernels=True`` additionally turns every simulator
    :class:`~repro.gpu.trace.TraceEvent` (one per work-group unit) into
    a child span of its segment; the default keeps one aggregated child
    span per kernel stage, which is what a serve-drain trace can afford.
    """

    def __init__(self, capture_kernels: bool = False):
        self.capture_kernels = capture_kernels
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._clock = 0.0

    @property
    def clock(self) -> float:
        """Current virtual time, in device cycles."""
        return self._clock

    def advance(self, cycles: float) -> None:
        """Move the virtual clock forward (never backward)."""
        if cycles > 0:
            self._clock += float(cycles)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, category: str, **attrs) -> Iterator[Span]:
        """Open a span; closes (and stamps ``end``) on exit.

        A span whose body never advanced the clock still occupies one
        virtual cycle, so every interval has positive duration and
        nesting stays unambiguous in Perfetto.
        """
        opened = Span(
            name=name, category=category, start=self._clock, attrs=dict(attrs)
        )
        parent = self.current()
        (parent.children if parent is not None else self.roots).append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            if self._clock <= opened.start:
                self.advance(1.0)
            opened.end = self._clock

    def add_span(
        self, name: str, category: str, start: float, end: float, **attrs
    ) -> Span:
        """Attach a child span with explicit timestamps (already-elapsed
        work, e.g. the simulator's per-stage intervals)."""
        child = Span(
            name=name,
            category=category,
            start=float(start),
            end=float(max(start, end)),
            attrs=dict(attrs),
        )
        parent = self.current()
        (parent.children if parent is not None else self.roots).append(child)
        return child

    def event(self, name: str, **attrs) -> SpanEvent:
        """Record an instant event on the innermost open span."""
        stamped = SpanEvent(name=name, ts=self._clock, attrs=dict(attrs))
        parent = self.current()
        if parent is not None:
            parent.events.append(stamped)
        return stamped

    # -- merging ---------------------------------------------------------

    def graft(self, sub: "Tracer") -> List[Span]:
        """Splice ``sub``'s span tree (recorded from clock 0) into this
        tracer at the current clock and position.

        Worker-pool tasks record onto a private tracer whose clock
        starts at zero; grafting in deterministic (shard / member) order
        shifts every timestamp by this tracer's clock, attaches the
        roots under the innermost open span, and advances this clock by
        the sub-tracer's total elapsed time.  Because the virtual clock
        only moves inside instrumented code, the result is byte-identical
        to having recorded the task inline, sequentially.
        """
        offset = self._clock
        if offset:
            for span in sub.walk():
                span.start += offset
                span.end += offset
                for instant in span.events:
                    instant.ts += offset
        parent = self.current()
        target = parent.children if parent is not None else self.roots
        grafted = list(sub.roots)
        target.extend(grafted)
        self.advance(sub.clock)
        return grafted

    @contextmanager
    def reopen(self, span: Span) -> Iterator[Span]:
        """Temporarily re-enter an already-closed span so late events
        (e.g. breaker settlement for a grafted task) attach to it at the
        current clock, exactly where sequential execution would have
        stamped them.  The clock is not rewound and the span's ``end``
        is left untouched."""
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator[Span]:
        """Every span, depth-first in recording order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def num_spans(self) -> int:
        return sum(1 for _ in self.walk())

    def categories(self) -> List[str]:
        """Distinct span categories present, sorted."""
        return sorted({span.category for span in self.walk()})

    # -- export ----------------------------------------------------------

    def to_perfetto(self) -> Dict[str, object]:
        """The Chrome/Perfetto ``trace.json`` object for this trace."""
        events: List[Dict[str, object]] = []
        for category, tid in sorted(CATEGORY_TRACKS.items()):
            events.append(
                {
                    "args": {"name": category},
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                }
            )

        def tid_for(category: str) -> int:
            return CATEGORY_TRACKS.get(category, 15)

        def emit(span: Span) -> None:
            events.append(
                {
                    "args": dict(sorted(span.attrs.items())),
                    "cat": span.category,
                    "dur": span.duration,
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": tid_for(span.category),
                    "ts": span.start,
                }
            )
            for instant in span.events:
                events.append(
                    {
                        "args": dict(sorted(instant.attrs.items())),
                        "cat": span.category,
                        "name": instant.name,
                        "ph": "i",
                        "pid": 1,
                        "s": "t",
                        "tid": tid_for(span.category),
                        "ts": instant.ts,
                    }
                )
            for child in span.children:
                emit(child)

        for root in self.roots:
            emit(root)
        return {
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "virtual device cycles (1 cycle exported as 1 us)"
            },
            "traceEvents": events,
        }

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, no whitespace — two
        identical runs produce byte-identical strings."""
        return json.dumps(
            self.to_perfetto(), sort_keys=True, separators=(",", ":")
        )

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")


# ---------------------------------------------------------------------------
# ambient tracer: explicit install, no-op when absent
# ---------------------------------------------------------------------------

# The install stack is a ``ContextVar`` holding an immutable tuple so
# worker-pool tasks each see (and mutate) their own stack: a task that
# installs a private sub-tracer cannot leak it into — or observe — the
# tracer of the thread that spawned it.
_ACTIVE: ContextVar[Tuple[Tracer, ...]] = ContextVar(
    "repro_active_tracers", default=()
)


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` (instrumentation then no-ops)."""
    stack = _ACTIVE.get()
    return stack[-1] if stack else None


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    token = _ACTIVE.set(_ACTIVE.get() + (tracer,))
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextmanager
def maybe_span(name: str, category: str, **attrs) -> Iterator[Optional[Span]]:
    """A span on the current tracer, or a no-op when none is installed."""
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, category, **attrs) as opened:
        yield opened


def add_event(name: str, **attrs) -> None:
    """An instant event on the current tracer's open span, if any."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(name, **attrs)


# ---------------------------------------------------------------------------
# reading traces back (the `obs` CLI subcommand)
# ---------------------------------------------------------------------------


def load_trace(path: str) -> Dict[str, object]:
    """Parse a saved ``trace.json``; raises ``ValueError`` on malformed
    payloads (the CLI maps that to the typed error hierarchy)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        raise ValueError(f"{path} is not a trace.json (no traceEvents list)")
    return payload


def summarize_trace(
    payload: Dict[str, object],
    top: int = 10,
    category: Optional[str] = None,
) -> str:
    """Human-readable roll-up of a saved trace.

    Per category: span count, summed span duration, and event count;
    then the ``top`` longest spans.  Durations are virtual cycles — the
    same unit the simulator reports — so ratios, not absolutes, matter.
    """
    spans = [
        event
        for event in payload["traceEvents"]
        if event.get("ph") == "X"
        and (category is None or event.get("cat") == category)
    ]
    instants = [
        event
        for event in payload["traceEvents"]
        if event.get("ph") == "i"
        and (category is None or event.get("cat") == category)
    ]
    if not spans:
        return "(no spans" + (f" in category {category!r})" if category else ")")
    by_category: Dict[str, Dict[str, float]] = {}
    for span in spans:
        bucket = by_category.setdefault(
            str(span.get("cat", "?")), {"count": 0, "cycles": 0.0}
        )
        bucket["count"] += 1
        bucket["cycles"] += float(span.get("dur", 0.0))
    events_by_category: Dict[str, int] = {}
    for instant in instants:
        key = str(instant.get("cat", "?"))
        events_by_category[key] = events_by_category.get(key, 0) + 1

    lines = [f"{len(spans)} spans, {len(instants)} events"]
    for name in sorted(by_category):
        bucket = by_category[name]
        lines.append(
            f"  {name:12s} {int(bucket['count']):6d} spans  "
            f"{bucket['cycles']:14.1f} cycles  "
            f"{events_by_category.get(name, 0):4d} events"
        )
    lines.append(f"longest {min(top, len(spans))} spans:")
    ranked = sorted(
        spans, key=lambda s: (-float(s.get("dur", 0.0)), float(s.get("ts", 0.0)))
    )
    for span in ranked[:top]:
        label = span.get("name", "?")
        args = span.get("args") or {}
        detail = ", ".join(f"{k}={v}" for k, v in sorted(args.items()))
        lines.append(
            f"  {float(span.get('dur', 0.0)):14.1f} cycles  "
            f"[{span.get('cat', '?')}] {label}"
            + (f"  ({detail})" if detail else "")
        )
    return "\n".join(lines)
