"""TPC-H table schemas (the columns the evaluated queries touch).

The generator produces all eight TPC-H tables.  Columns are the ones the
paper's workload (Q5, Q7, Q8, Q9, Q14) reads, plus enough extras to keep
the tables realistically wide (row width drives the simulator's byte
accounting).  Strings are dictionary-encoded int32 codes (see
:mod:`repro.relational.types`), matching the 4-byte-value restriction the
paper notes for Ocelot.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..relational import ColumnDef, DataType, TableSchema

__all__ = [
    "REGIONS",
    "NATIONS",
    "NATION_REGION",
    "PART_TYPES",
    "region_schema",
    "nation_schema",
    "supplier_schema",
    "customer_schema",
    "part_schema",
    "partsupp_schema",
    "orders_schema",
    "lineitem_schema",
    "ALL_SCHEMAS",
]

#: The five TPC-H regions, in dictionary order (code = index).
REGIONS: Tuple[str, ...] = (
    "AFRICA",
    "AMERICA",
    "ASIA",
    "EUROPE",
    "MIDDLE EAST",
)

#: The 25 TPC-H nations (code = nationkey) ...
NATIONS: Tuple[str, ...] = (
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "INDONESIA",
    "IRAN",
    "IRAQ",
    "JAPAN",
    "JORDAN",
    "KENYA",
    "MOROCCO",
    "MOZAMBIQUE",
    "PERU",
    "CHINA",
    "ROMANIA",
    "SAUDI ARABIA",
    "VIETNAM",
    "RUSSIA",
    "UNITED KINGDOM",
    "UNITED STATES",
)

#: ... and their region keys, per the TPC-H specification.
NATION_REGION: Tuple[int, ...] = (
    0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
)

_TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

#: The 150 TPC-H part types ("ECONOMY ANODIZED STEEL", ...).
PART_TYPES: Tuple[str, ...] = tuple(
    f"{s1} {s2} {s3}"
    for s1 in _TYPE_SYLLABLE_1
    for s2 in _TYPE_SYLLABLE_2
    for s3 in _TYPE_SYLLABLE_3
)


def region_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("r_regionkey", DataType.INT32),
        ColumnDef("r_name", DataType.DICT, REGIONS),
    )


def nation_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("n_nationkey", DataType.INT32),
        ColumnDef("n_name", DataType.DICT, NATIONS),
        ColumnDef("n_regionkey", DataType.INT32),
    )


def supplier_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("s_suppkey", DataType.INT32),
        ColumnDef("s_nationkey", DataType.INT32),
        ColumnDef("s_acctbal", DataType.FLOAT64),
    )


def customer_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("c_custkey", DataType.INT32),
        ColumnDef("c_nationkey", DataType.INT32),
        ColumnDef("c_acctbal", DataType.FLOAT64),
    )


def part_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("p_partkey", DataType.INT32),
        ColumnDef("p_type", DataType.DICT, PART_TYPES),
        ColumnDef("p_size", DataType.INT32),
        ColumnDef("p_retailprice", DataType.FLOAT64),
    )


def partsupp_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("ps_partkey", DataType.INT32),
        ColumnDef("ps_suppkey", DataType.INT32),
        ColumnDef("ps_availqty", DataType.INT32),
        ColumnDef("ps_supplycost", DataType.FLOAT64),
    )


def orders_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("o_orderkey", DataType.INT32),
        ColumnDef("o_custkey", DataType.INT32),
        ColumnDef("o_orderdate", DataType.DATE),
        ColumnDef("o_totalprice", DataType.FLOAT64),
    )


def lineitem_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("l_orderkey", DataType.INT32),
        ColumnDef("l_partkey", DataType.INT32),
        ColumnDef("l_suppkey", DataType.INT32),
        ColumnDef("l_quantity", DataType.FLOAT64),
        ColumnDef("l_extendedprice", DataType.FLOAT64),
        ColumnDef("l_discount", DataType.FLOAT64),
        ColumnDef("l_tax", DataType.FLOAT64),
        ColumnDef("l_shipdate", DataType.DATE),
    )


ALL_SCHEMAS: Dict[str, TableSchema] = {
    "region": region_schema(),
    "nation": nation_schema(),
    "supplier": supplier_schema(),
    "customer": customer_schema(),
    "part": part_schema(),
    "partsupp": partsupp_schema(),
    "orders": orders_schema(),
    "lineitem": lineitem_schema(),
}
