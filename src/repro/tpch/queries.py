"""The paper's TPC-H workload: Q5, Q7, Q8, Q9, Q14 as query specs.

The specs follow the (slightly modified, Ocelot-compatible) query texts of
the paper's Appendix B: Q9 selects parts by ``p_partkey < 1000`` instead
of a ``LIKE`` pattern, and string columns are dictionary codes.

``q14`` accepts a target selectivity: the paper's Section 2.2 sweeps the
``l_shipdate`` interval of Q14 to produce selectivities from 1 % to 100 %
on LINEITEM (default interval = one month ≈ 16.4 % of the populated
shipdate range in their setup; here the natural one-month default yields a
few percent, so the sweep parameter is the faithful control).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..relational import CaseWhen, col, lit
from ..relational.expressions import YearOf
from ..relational.types import date_to_days
from ..plans import AggSpec, JoinEdge, QuerySpec, TableRef
from .schema import NATIONS, PART_TYPES, REGIONS

__all__ = ["q5", "q7", "q8", "q9", "q14", "QUERIES", "query_by_name"]


def _nation_code(name: str) -> int:
    return NATIONS.index(name)


def _region_code(name: str) -> int:
    return REGIONS.index(name)


_PROMO_CODES = tuple(
    code for code, name in enumerate(PART_TYPES) if name.startswith("PROMO")
)

#: Populated l_shipdate range of the generator (orderdate span + 121 days).
_SHIP_LO = date_to_days("1992-01-02")
_SHIP_HI = date_to_days("1998-12-01")


def _nation_ref(alias: str) -> TableRef:
    """``nation`` aliased with fully prefixed column names."""
    if alias == "nation":
        return TableRef("nation", "nation")
    return TableRef(
        "nation",
        alias,
        rename={
            "n_nationkey": f"{alias}_nationkey",
            "n_name": f"{alias}_name",
            "n_regionkey": f"{alias}_regionkey",
        },
    )


def _revenue():
    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))


def q5() -> QuerySpec:
    """Q5: revenue per ASIA nation where customer and supplier co-located."""
    return QuerySpec(
        name="Q5",
        tables=(
            TableRef("customer", "customer"),
            TableRef("orders", "orders"),
            TableRef("lineitem", "lineitem"),
            TableRef("supplier", "supplier"),
            _nation_ref("nation"),
            TableRef("region", "region"),
        ),
        join_edges=(
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
            JoinEdge("lineitem", "l_suppkey", "supplier", "s_suppkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
            JoinEdge("nation", "n_regionkey", "region", "r_regionkey"),
        ),
        fact="lineitem",
        filters={
            "region": col("r_name").eq(_region_code("ASIA")),
            "orders": col("o_orderdate").ge(date_to_days("1994-01-01"))
            & col("o_orderdate").lt(date_to_days("1995-01-01")),
        },
        residual_filters=(col("c_nationkey").eq(col("s_nationkey")),),
        derived=(("revenue_item", _revenue()),),
        group_keys=("n_name",),
        aggregates=(AggSpec("revenue", "sum", col("revenue_item")),),
        order_by=("revenue",),
        order_desc=(True,),
    )


def q7() -> QuerySpec:
    """Q7: France/Germany shipping volume by year and direction."""
    france = _nation_code("FRANCE")
    germany = _nation_code("GERMANY")
    cross_nation = (
        col("n1_name").eq(france) & col("n2_name").eq(germany)
    ) | (col("n1_name").eq(germany) & col("n2_name").eq(france))
    return QuerySpec(
        name="Q7",
        tables=(
            TableRef("supplier", "supplier"),
            TableRef("lineitem", "lineitem"),
            TableRef("orders", "orders"),
            TableRef("customer", "customer"),
            _nation_ref("n1"),
            _nation_ref("n2"),
        ),
        join_edges=(
            JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            JoinEdge("customer", "c_custkey", "orders", "o_custkey"),
            JoinEdge("supplier", "s_nationkey", "n1", "n1_nationkey"),
            JoinEdge("customer", "c_nationkey", "n2", "n2_nationkey"),
        ),
        fact="lineitem",
        filters={
            "lineitem": col("l_shipdate").between(
                date_to_days("1995-01-01"), date_to_days("1996-12-31")
            ),
        },
        residual_filters=(cross_nation,),
        derived=(
            ("supp_nation", col("n1_name")),
            ("cust_nation", col("n2_name")),
            ("l_year", YearOf(col("l_shipdate"))),
            ("volume", _revenue()),
        ),
        group_keys=("supp_nation", "cust_nation", "l_year"),
        aggregates=(AggSpec("revenue", "sum", col("volume")),),
        order_by=("l_year",),
    )


def q8() -> QuerySpec:
    """Q8: BRAZIL market share in AMERICA for one part type, by year."""
    brazil = _nation_code("BRAZIL")
    steel = PART_TYPES.index("ECONOMY ANODIZED STEEL")
    return QuerySpec(
        name="Q8",
        tables=(
            TableRef("part", "part"),
            TableRef("supplier", "supplier"),
            TableRef("lineitem", "lineitem"),
            TableRef("orders", "orders"),
            TableRef("customer", "customer"),
            _nation_ref("n1"),
            _nation_ref("n2"),
            TableRef("region", "region"),
        ),
        join_edges=(
            JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
            JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            JoinEdge("lineitem", "l_orderkey", "orders", "o_orderkey"),
            JoinEdge("orders", "o_custkey", "customer", "c_custkey"),
            JoinEdge("customer", "c_nationkey", "n1", "n1_nationkey"),
            JoinEdge("n1", "n1_regionkey", "region", "r_regionkey"),
            JoinEdge("supplier", "s_nationkey", "n2", "n2_nationkey"),
        ),
        fact="lineitem",
        filters={
            "region": col("r_name").eq(_region_code("AMERICA")),
            "orders": col("o_orderdate").between(
                date_to_days("1995-01-01"), date_to_days("1996-12-31")
            ),
            "part": col("p_type").eq(steel),
        },
        derived=(
            ("o_year", YearOf(col("o_orderdate"))),
            ("volume", _revenue()),
            (
                "nation_volume",
                CaseWhen(col("n2_name").eq(brazil), _revenue(), lit(0.0)),
            ),
        ),
        group_keys=("o_year",),
        aggregates=(
            AggSpec("brazil_volume", "sum", col("nation_volume")),
            AggSpec("total_volume", "sum", col("volume")),
        ),
        post_projection=(
            ("mkt_share", col("brazil_volume") / col("total_volume")),
        ),
        order_by=("o_year",),
    )


def q9() -> QuerySpec:
    """Q9 (modified): profit by nation and year for parts with key < 1000.

    The partsupp join is on the composite (partkey, suppkey); it lowers to
    an equi-join on partkey plus a residual ``ps_suppkey = l_suppkey``.
    """
    return QuerySpec(
        name="Q9",
        tables=(
            TableRef("part", "part"),
            TableRef("supplier", "supplier"),
            TableRef("lineitem", "lineitem"),
            TableRef("partsupp", "partsupp"),
            TableRef("orders", "orders"),
            _nation_ref("nation"),
        ),
        join_edges=(
            JoinEdge("supplier", "s_suppkey", "lineitem", "l_suppkey"),
            JoinEdge("partsupp", "ps_partkey", "lineitem", "l_partkey"),
            JoinEdge("part", "p_partkey", "lineitem", "l_partkey"),
            JoinEdge("orders", "o_orderkey", "lineitem", "l_orderkey"),
            JoinEdge("supplier", "s_nationkey", "nation", "n_nationkey"),
        ),
        fact="lineitem",
        filters={
            "part": col("p_partkey").lt(1000),
        },
        residual_filters=(col("ps_suppkey").eq(col("l_suppkey")),),
        derived=(
            ("o_year", YearOf(col("o_orderdate"))),
            (
                "amount",
                _revenue() - col("ps_supplycost") * col("l_quantity"),
            ),
        ),
        group_keys=("n_name", "o_year"),
        aggregates=(AggSpec("sum_profit", "sum", col("amount")),),
        order_by=("o_year",),
        order_desc=(True,),
    )


def q14(selectivity: Optional[float] = None) -> QuerySpec:
    """Q14: promotional revenue share for one shipdate interval.

    ``selectivity`` sets the target fraction of LINEITEM selected by the
    shipdate predicate (the paper's 1 %–100 % sweep); ``None`` keeps the
    classic one-month interval.
    """
    lo = date_to_days("1995-09-01")
    if selectivity is None:
        hi = date_to_days("1995-10-01")
    else:
        if not 0.0 < selectivity <= 1.0:
            raise ValueError("selectivity must be in (0, 1]")
        span = _SHIP_HI - _SHIP_LO
        lo = _SHIP_LO
        hi = lo + max(1, int(round(span * selectivity)))
    promo_volume = CaseWhen(
        col("p_type").isin(_PROMO_CODES), _revenue(), lit(0.0)
    )
    return QuerySpec(
        name="Q14",
        tables=(
            TableRef("lineitem", "lineitem"),
            TableRef("part", "part"),
        ),
        join_edges=(
            JoinEdge("lineitem", "l_partkey", "part", "p_partkey"),
        ),
        fact="lineitem",
        filters={
            "lineitem": col("l_shipdate").ge(lo) & col("l_shipdate").lt(hi),
        },
        derived=(
            ("promo_item", promo_volume),
            ("revenue_item", _revenue()),
        ),
        group_keys=(),
        aggregates=(
            AggSpec("promo_sum", "sum", col("promo_item")),
            AggSpec("total_sum", "sum", col("revenue_item")),
        ),
        post_projection=(
            (
                "promo_revenue",
                lit(100.0) * col("promo_sum") / col("total_sum"),
            ),
        ),
    )


QUERIES: Dict[str, "QuerySpec"] = {}


def query_by_name(name: str, **kwargs) -> QuerySpec:
    """Build a query spec by name ("Q5", "Q7", "Q8", "Q9", "Q14")."""
    factories = {"Q5": q5, "Q7": q7, "Q8": q8, "Q9": q9, "Q14": q14}
    try:
        factory = factories[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown query {name!r}; choose one of {sorted(factories)}"
        ) from None
    return factory(**kwargs)


QUERIES.update({name: query_by_name(name) for name in ("Q5", "Q7", "Q8", "Q9", "Q14")})
