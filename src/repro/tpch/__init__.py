"""TPC-H workload: data generator, query specs, and reference answers."""

from .dbgen import DbgenConfig, generate, generate_database
from .queries import QUERIES, q5, q7, q8, q9, q14, query_by_name
from .reference import (
    reference_answer,
    reference_q5,
    reference_q7,
    reference_q8,
    reference_q9,
    reference_q14,
)
from .schema import ALL_SCHEMAS, NATIONS, PART_TYPES, REGIONS
from .tbl import export_database, import_database, read_tbl, write_tbl

__all__ = [
    "DbgenConfig",
    "generate",
    "generate_database",
    "QUERIES",
    "q5",
    "q7",
    "q8",
    "q9",
    "q14",
    "query_by_name",
    "reference_answer",
    "reference_q5",
    "reference_q7",
    "reference_q8",
    "reference_q9",
    "reference_q14",
    "ALL_SCHEMAS",
    "NATIONS",
    "PART_TYPES",
    "REGIONS",
    "export_database",
    "import_database",
    "read_tbl",
    "write_tbl",
]
