"""``.tbl`` export/import: file-format parity with the TPC-H dbgen tool.

The reference ``dbgen`` writes pipe-separated ``<table>.tbl`` files with a
trailing delimiter per line.  This module writes the same format from a
generated :class:`~repro.relational.Database` (dates as ISO strings,
dictionary columns decoded) and reads it back, so data can be exchanged
with other TPC-H tooling or inspected with standard text utilities.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import SchemaError
from ..relational import Database, Table, TableSchema
from ..relational.types import DataType, date_to_days, days_to_date
from .schema import ALL_SCHEMAS

__all__ = ["write_tbl", "read_tbl", "export_database", "import_database"]

PathLike = Union[str, pathlib.Path]


def _format_value(column, value) -> str:
    if column.dtype is DataType.DATE:
        return days_to_date(int(value)).isoformat()
    if column.dtype is DataType.DICT and column.dictionary is not None:
        return column.decode(int(value))
    if column.dtype in (DataType.FLOAT32, DataType.FLOAT64):
        return f"{float(value):.2f}"
    return str(int(value))


def _parse_value(column, text: str):
    if column.dtype is DataType.DATE:
        return date_to_days(text)
    if column.dtype is DataType.DICT and column.dictionary is not None:
        return column.encode(text)
    if column.dtype in (DataType.FLOAT32, DataType.FLOAT64):
        return float(text)
    return int(text)


def write_tbl(table: Table, path: PathLike) -> int:
    """Write one table as ``dbgen``-style ``.tbl`` text; returns rows."""
    path = pathlib.Path(path)
    columns = list(table.schema)
    arrays = [table.column(column.name) for column in columns]
    with path.open("w") as handle:
        for row in zip(*arrays):
            fields = [
                _format_value(column, value)
                for column, value in zip(columns, row)
            ]
            handle.write("|".join(fields) + "|\n")
    return table.num_rows


def read_tbl(schema: TableSchema, path: PathLike) -> Table:
    """Read a ``.tbl`` file back into a :class:`Table`."""
    path = pathlib.Path(path)
    columns = list(schema)
    values: List[List] = [[] for _ in columns]
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("|")
            if fields and fields[-1] == "":
                fields = fields[:-1]  # trailing delimiter
            if len(fields) != len(columns):
                raise SchemaError(
                    f"{path.name}:{line_number}: expected "
                    f"{len(columns)} fields, got {len(fields)}"
                )
            for store, column, text in zip(values, columns, fields):
                store.append(_parse_value(column, text))
    data = {
        column.name: np.asarray(store, dtype=column.dtype.numpy_dtype)
        for column, store in zip(columns, values)
    }
    return Table(schema, data)


def export_database(
    database: Database,
    directory: PathLike,
    tables: Optional[Sequence[str]] = None,
) -> Dict[str, int]:
    """Write every (or the selected) table as ``<name>.tbl``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, int] = {}
    for name in tables if tables is not None else database.names:
        written[name] = write_tbl(
            database.table(name), directory / f"{name}.tbl"
        )
    return written


def import_database(
    directory: PathLike,
    tables: Optional[Sequence[str]] = None,
) -> Database:
    """Load ``<name>.tbl`` files (TPC-H schemas) into a fresh database."""
    directory = pathlib.Path(directory)
    database = Database()
    names: Iterable[str] = (
        tables if tables is not None else sorted(ALL_SCHEMAS)
    )
    for name in names:
        path = directory / f"{name}.tbl"
        if not path.exists():
            raise SchemaError(f"missing table file {path}")
        try:
            schema = ALL_SCHEMAS[name]
        except KeyError:
            raise SchemaError(f"unknown TPC-H table {name!r}") from None
        database.add(name, read_tbl(schema, path))
    return database
