"""Reference query answers, computed independently of the engines.

Each function evaluates one workload query with straightforward
dictionary-based joins and per-row accumulation — a deliberately different
algorithm from the engines' vectorized hash pipelines — so agreement
between an engine and this module is meaningful evidence of correctness.

Results are returned as ``{column: list}`` dictionaries sorted by the full
group key, which tests compare against canonically sorted engine output.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from ..relational import Database
from ..relational.types import date_to_days, days_to_date
from .queries import _PROMO_CODES, _SHIP_HI, _SHIP_LO
from .schema import NATIONS, PART_TYPES, REGIONS

__all__ = [
    "reference_q5",
    "reference_q7",
    "reference_q8",
    "reference_q9",
    "reference_q14",
    "reference_answer",
]


def _year(days: int) -> int:
    return days_to_date(int(days)).year


def _build_lookup(keys: np.ndarray) -> Dict[int, List[int]]:
    lookup: Dict[int, List[int]] = defaultdict(list)
    for index, key in enumerate(keys.tolist()):
        lookup[key].append(index)
    return lookup


def reference_q5(database: Database) -> Dict[str, list]:
    lineitem = database.table("lineitem")
    orders = database.table("orders")
    customer = database.table("customer")
    supplier = database.table("supplier")
    nation = database.table("nation")
    region = database.table("region")

    asia = REGIONS.index("ASIA")
    date_lo = date_to_days("1994-01-01")
    date_hi = date_to_days("1995-01-01")

    nation_region = dict(
        zip(nation["n_nationkey"].tolist(), nation["n_regionkey"].tolist())
    )
    region_ok = {
        int(k)
        for k, name in zip(region["r_regionkey"], region["r_name"])
        if int(name) == asia
    }
    order_date = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist())
    )
    order_cust = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_custkey"].tolist())
    )
    cust_nation = dict(
        zip(customer["c_custkey"].tolist(), customer["c_nationkey"].tolist())
    )
    supp_nation = dict(
        zip(supplier["s_suppkey"].tolist(), supplier["s_nationkey"].tolist())
    )

    revenue: Dict[int, float] = defaultdict(float)
    l_orderkey = lineitem["l_orderkey"].tolist()
    l_suppkey = lineitem["l_suppkey"].tolist()
    l_price = lineitem["l_extendedprice"].tolist()
    l_discount = lineitem["l_discount"].tolist()
    for index in range(lineitem.num_rows):
        okey = l_orderkey[index]
        odate = order_date.get(okey)
        if odate is None or not (date_lo <= odate < date_hi):
            continue
        skey = l_suppkey[index]
        s_nat = supp_nation.get(skey)
        if s_nat is None:
            continue
        c_nat = cust_nation.get(order_cust[okey])
        if c_nat != s_nat:
            continue
        if nation_region.get(s_nat) not in region_ok:
            continue
        revenue[s_nat] += l_price[index] * (1.0 - l_discount[index])

    rows = sorted(revenue.items(), key=lambda item: -item[1])
    return {
        "n_name": [key for key, _ in rows],
        "revenue": [value for _, value in rows],
    }


def reference_q7(database: Database) -> Dict[str, list]:
    lineitem = database.table("lineitem")
    orders = database.table("orders")
    customer = database.table("customer")
    supplier = database.table("supplier")

    france = NATIONS.index("FRANCE")
    germany = NATIONS.index("GERMANY")
    lo = date_to_days("1995-01-01")
    hi = date_to_days("1996-12-31")

    order_cust = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_custkey"].tolist())
    )
    cust_nation = dict(
        zip(customer["c_custkey"].tolist(), customer["c_nationkey"].tolist())
    )
    supp_nation = dict(
        zip(supplier["s_suppkey"].tolist(), supplier["s_nationkey"].tolist())
    )

    volumes: Dict[tuple, float] = defaultdict(float)
    for index in range(lineitem.num_rows):
        ship = int(lineitem["l_shipdate"][index])
        if not lo <= ship <= hi:
            continue
        s_nat = supp_nation.get(int(lineitem["l_suppkey"][index]))
        c_nat = cust_nation.get(
            order_cust.get(int(lineitem["l_orderkey"][index]))
        )
        pair_ok = (s_nat == france and c_nat == germany) or (
            s_nat == germany and c_nat == france
        )
        if not pair_ok:
            continue
        volume = float(lineitem["l_extendedprice"][index]) * (
            1.0 - float(lineitem["l_discount"][index])
        )
        volumes[(s_nat, c_nat, _year(ship))] += volume

    rows = sorted(volumes.items(), key=lambda item: item[0])
    return {
        "supp_nation": [key[0] for key, _ in rows],
        "cust_nation": [key[1] for key, _ in rows],
        "l_year": [key[2] for key, _ in rows],
        "revenue": [value for _, value in rows],
    }


def reference_q8(database: Database) -> Dict[str, list]:
    lineitem = database.table("lineitem")
    orders = database.table("orders")
    customer = database.table("customer")
    supplier = database.table("supplier")
    part = database.table("part")
    nation = database.table("nation")

    america = REGIONS.index("AMERICA")
    brazil = NATIONS.index("BRAZIL")
    steel = PART_TYPES.index("ECONOMY ANODIZED STEEL")
    lo = date_to_days("1995-01-01")
    hi = date_to_days("1996-12-31")

    part_ok = {
        int(key)
        for key, ptype in zip(part["p_partkey"], part["p_type"])
        if int(ptype) == steel
    }
    order_cust = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_custkey"].tolist())
    )
    order_date = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist())
    )
    cust_nation = dict(
        zip(customer["c_custkey"].tolist(), customer["c_nationkey"].tolist())
    )
    supp_nation = dict(
        zip(supplier["s_suppkey"].tolist(), supplier["s_nationkey"].tolist())
    )
    nation_region = dict(
        zip(nation["n_nationkey"].tolist(), nation["n_regionkey"].tolist())
    )

    total: Dict[int, float] = defaultdict(float)
    brazil_part: Dict[int, float] = defaultdict(float)
    for index in range(lineitem.num_rows):
        if int(lineitem["l_partkey"][index]) not in part_ok:
            continue
        odate = order_date.get(int(lineitem["l_orderkey"][index]))
        if odate is None or not lo <= odate <= hi:
            continue
        c_nat = cust_nation.get(
            order_cust[int(lineitem["l_orderkey"][index])]
        )
        if c_nat is None or nation_region.get(c_nat) != america:
            continue
        s_nat = supp_nation.get(int(lineitem["l_suppkey"][index]))
        volume = float(lineitem["l_extendedprice"][index]) * (
            1.0 - float(lineitem["l_discount"][index])
        )
        year = _year(odate)
        total[year] += volume
        if s_nat == brazil:
            brazil_part[year] += volume

    years = sorted(total)
    return {
        "o_year": years,
        "mkt_share": [
            brazil_part[year] / total[year] if total[year] else 0.0
            for year in years
        ],
    }


def reference_q9(database: Database) -> Dict[str, list]:
    lineitem = database.table("lineitem")
    orders = database.table("orders")
    supplier = database.table("supplier")
    part = database.table("part")
    partsupp = database.table("partsupp")

    part_ok = {
        int(key) for key in part["p_partkey"].tolist() if key < 1000
    }
    supply_cost = {
        (int(pk), int(sk)): float(cost)
        for pk, sk, cost in zip(
            partsupp["ps_partkey"],
            partsupp["ps_suppkey"],
            partsupp["ps_supplycost"],
        )
    }
    order_date = dict(
        zip(orders["o_orderkey"].tolist(), orders["o_orderdate"].tolist())
    )
    supp_nation = dict(
        zip(supplier["s_suppkey"].tolist(), supplier["s_nationkey"].tolist())
    )

    profit: Dict[tuple, float] = defaultdict(float)
    for index in range(lineitem.num_rows):
        pk = int(lineitem["l_partkey"][index])
        if pk not in part_ok:
            continue
        sk = int(lineitem["l_suppkey"][index])
        cost = supply_cost.get((pk, sk))
        if cost is None:
            continue
        nat = supp_nation.get(sk)
        odate = order_date[int(lineitem["l_orderkey"][index])]
        amount = float(lineitem["l_extendedprice"][index]) * (
            1.0 - float(lineitem["l_discount"][index])
        ) - cost * float(lineitem["l_quantity"][index])
        profit[(nat, _year(odate))] += amount

    rows = sorted(profit.items(), key=lambda item: (-item[0][1], item[0][0]))
    return {
        "n_name": [key[0] for key, _ in rows],
        "o_year": [key[1] for key, _ in rows],
        "sum_profit": [value for _, value in rows],
    }


def reference_q14(
    database: Database, selectivity: Optional[float] = None
) -> Dict[str, list]:
    lineitem = database.table("lineitem")
    part = database.table("part")

    lo = date_to_days("1995-09-01")
    if selectivity is None:
        hi = date_to_days("1995-10-01")
    else:
        span = _SHIP_HI - _SHIP_LO
        lo = _SHIP_LO
        hi = lo + max(1, int(round(span * selectivity)))

    promo = set(_PROMO_CODES)
    part_type = dict(
        zip(part["p_partkey"].tolist(), part["p_type"].tolist())
    )

    promo_sum = 0.0
    total_sum = 0.0
    for index in range(lineitem.num_rows):
        ship = int(lineitem["l_shipdate"][index])
        if not lo <= ship < hi:
            continue
        ptype = part_type.get(int(lineitem["l_partkey"][index]))
        if ptype is None:
            continue
        volume = float(lineitem["l_extendedprice"][index]) * (
            1.0 - float(lineitem["l_discount"][index])
        )
        total_sum += volume
        if ptype in promo:
            promo_sum += volume

    share = 100.0 * promo_sum / total_sum if total_sum else 0.0
    return {"promo_revenue": [share]}


def reference_answer(database: Database, name: str, **kwargs) -> Dict[str, list]:
    """Dispatch to the reference implementation of ``name``."""
    functions = {
        "Q5": reference_q5,
        "Q7": reference_q7,
        "Q8": reference_q8,
        "Q9": reference_q9,
        "Q14": reference_q14,
    }
    try:
        function = functions[name.upper()]
    except KeyError:
        raise ValueError(f"no reference implementation for {name!r}") from None
    return function(database, **kwargs)
