"""Deterministic in-memory TPC-H data generator ("dbgen").

Generates all eight TPC-H tables at a configurable scale factor with the
cardinalities and value distributions of the TPC-H specification (uniform
keys, 1–7 lineitems per order, shipdate = orderdate + 1..121 days, ...).
Data is numpy-columnar and fully deterministic for a given ``(scale, seed)``
pair.

The paper evaluates at SF 10 (~10 GB).  A pure-Python reproduction cannot
hold 60 M lineitems comfortably, so benchmarks run at reduced scale; the
simulated execution time is driven by tuple counts and byte volumes, which
scale linearly in SF, so all *relative* results (speedups, crossovers)
are unaffected.  The generator accepts any positive scale factor, including
fractional ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational import Database, Table
from ..relational.types import date_to_days
from . import schema as _schema

__all__ = ["DbgenConfig", "generate", "generate_database"]

#: TPC-H base cardinalities at scale factor 1.
_SF1_SUPPLIERS = 10_000
_SF1_CUSTOMERS = 150_000
_SF1_PARTS = 200_000
_SF1_ORDERS = 1_500_000
_SUPPLIERS_PER_PART = 4
_MIN_LINES, _MAX_LINES = 1, 7

_ORDER_DATE_LO = date_to_days("1992-01-01")
_ORDER_DATE_HI = date_to_days("1998-08-02")


@dataclass(frozen=True)
class DbgenConfig:
    """Scale factor and RNG seed for one generated database."""

    scale: float = 0.01
    seed: int = 20160626  # SIGMOD'16 started June 26, 2016

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale factor must be positive")

    def rows(self, base: int) -> int:
        """Scaled row count, at least 1."""
        return max(1, int(round(base * self.scale)))


def _region(rng: np.random.Generator) -> Table:
    keys = np.arange(len(_schema.REGIONS), dtype=np.int32)
    return Table(
        _schema.region_schema(),
        {"r_regionkey": keys, "r_name": keys},
    )


def _nation(rng: np.random.Generator) -> Table:
    keys = np.arange(len(_schema.NATIONS), dtype=np.int32)
    return Table(
        _schema.nation_schema(),
        {
            "n_nationkey": keys,
            "n_name": keys,
            "n_regionkey": np.asarray(_schema.NATION_REGION, dtype=np.int32),
        },
    )


def _supplier(rng: np.random.Generator, config: DbgenConfig) -> Table:
    count = config.rows(_SF1_SUPPLIERS)
    return Table(
        _schema.supplier_schema(),
        {
            "s_suppkey": np.arange(count, dtype=np.int32),
            "s_nationkey": rng.integers(
                0, len(_schema.NATIONS), size=count, dtype=np.int32
            ),
            "s_acctbal": rng.uniform(-999.99, 9999.99, size=count),
        },
    )


def _customer(rng: np.random.Generator, config: DbgenConfig) -> Table:
    count = config.rows(_SF1_CUSTOMERS)
    return Table(
        _schema.customer_schema(),
        {
            "c_custkey": np.arange(count, dtype=np.int32),
            "c_nationkey": rng.integers(
                0, len(_schema.NATIONS), size=count, dtype=np.int32
            ),
            "c_acctbal": rng.uniform(-999.99, 9999.99, size=count),
        },
    )


def _part(rng: np.random.Generator, config: DbgenConfig) -> Table:
    count = config.rows(_SF1_PARTS)
    return Table(
        _schema.part_schema(),
        {
            "p_partkey": np.arange(count, dtype=np.int32),
            "p_type": rng.integers(
                0, len(_schema.PART_TYPES), size=count, dtype=np.int32
            ),
            "p_size": rng.integers(1, 51, size=count, dtype=np.int32),
            "p_retailprice": rng.uniform(900.0, 2100.0, size=count),
        },
    )


def _partsupp(
    rng: np.random.Generator, config: DbgenConfig, num_parts: int,
    num_suppliers: int,
) -> Table:
    """Each part is stocked by ``_SUPPLIERS_PER_PART`` distinct suppliers."""
    partkeys = np.repeat(
        np.arange(num_parts, dtype=np.int32), _SUPPLIERS_PER_PART
    )
    # TPC-H spreads the suppliers of a part deterministically; an affine
    # stride guarantees distinctness without a per-part shuffle.
    offsets = np.tile(
        np.arange(_SUPPLIERS_PER_PART, dtype=np.int64), num_parts
    )
    stride = max(1, num_suppliers // (_SUPPLIERS_PER_PART + 1))
    suppkeys = (
        (partkeys.astype(np.int64) + offsets * stride) % num_suppliers
    ).astype(np.int32)
    count = partkeys.size
    return Table(
        _schema.partsupp_schema(),
        {
            "ps_partkey": partkeys,
            "ps_suppkey": suppkeys,
            "ps_availqty": rng.integers(1, 10_000, size=count, dtype=np.int32),
            "ps_supplycost": rng.uniform(1.0, 1000.0, size=count),
        },
    )


def _orders(
    rng: np.random.Generator, config: DbgenConfig, num_customers: int
) -> Table:
    count = config.rows(_SF1_ORDERS)
    orderdates = rng.integers(
        _ORDER_DATE_LO, _ORDER_DATE_HI + 1, size=count, dtype=np.int32
    )
    return Table(
        _schema.orders_schema(),
        {
            "o_orderkey": np.arange(count, dtype=np.int32),
            "o_custkey": rng.integers(
                0, num_customers, size=count, dtype=np.int32
            ),
            "o_orderdate": orderdates,
            "o_totalprice": rng.uniform(857.71, 555_285.16, size=count),
        },
    )


def _lineitem(
    rng: np.random.Generator,
    config: DbgenConfig,
    orders: Table,
    num_parts: int,
    num_suppliers: int,
) -> Table:
    lines_per_order = rng.integers(
        _MIN_LINES, _MAX_LINES + 1, size=orders.num_rows
    )
    orderkeys = np.repeat(orders.column("o_orderkey"), lines_per_order)
    orderdates = np.repeat(orders.column("o_orderdate"), lines_per_order)
    count = orderkeys.size

    quantity = rng.integers(1, 51, size=count).astype(np.float64)
    unit_price = rng.uniform(900.0, 2100.0, size=count)
    return Table(
        _schema.lineitem_schema(),
        {
            "l_orderkey": orderkeys.astype(np.int32),
            "l_partkey": rng.integers(
                0, num_parts, size=count, dtype=np.int32
            ),
            "l_suppkey": rng.integers(
                0, num_suppliers, size=count, dtype=np.int32
            ),
            "l_quantity": quantity,
            "l_extendedprice": quantity * unit_price,
            "l_discount": rng.integers(0, 11, size=count) / 100.0,
            "l_tax": rng.integers(0, 9, size=count) / 100.0,
            "l_shipdate": (
                orderdates + rng.integers(1, 122, size=count)
            ).astype(np.int32),
        },
    )


def generate(config: DbgenConfig = DbgenConfig()) -> Database:
    """Generate a full TPC-H database for ``config``."""
    rng = np.random.default_rng(config.seed)
    database = Database()
    database.add("region", _region(rng))
    database.add("nation", _nation(rng))

    supplier = _supplier(rng, config)
    customer = _customer(rng, config)
    part = _part(rng, config)
    database.add("supplier", supplier)
    database.add("customer", customer)
    database.add("part", part)
    database.add(
        "partsupp",
        _partsupp(rng, config, part.num_rows, supplier.num_rows),
    )

    orders = _orders(rng, config, customer.num_rows)
    database.add("orders", orders)
    database.add(
        "lineitem",
        _lineitem(rng, config, orders, part.num_rows, supplier.num_rows),
    )
    return database


def generate_database(scale: float = 0.01, seed: int = 20160626) -> Database:
    """Convenience wrapper: ``generate(DbgenConfig(scale, seed))``."""
    return generate(DbgenConfig(scale=scale, seed=seed))
