"""Star Schema Benchmark table schemas.

SSB (O'Neil et al.) denormalizes TPC-H into a pure star: one fact table
(``lineorder``) and four dimensions (``date``, ``customer``,
``supplier``, ``part``).  It is the natural second workload for a
star-join engine: every query is one probe chain over the fact table —
exactly the plan shape GPL pipelines.

Strings are dictionary-encoded int32 codes, consistent with the TPC-H
package.  ``d_datekey`` is epoch days (not yyyymmdd), since all query
predicates go through ``d_year`` / ``d_yearmonthnum`` /
``d_weeknuminyear`` anyway.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..relational import ColumnDef, DataType, TableSchema
from ..tpch.schema import NATION_REGION, NATIONS, REGIONS

__all__ = [
    "CITIES",
    "CITY_NATION",
    "MFGRS",
    "CATEGORIES",
    "BRANDS",
    "date_schema",
    "customer_schema",
    "supplier_schema",
    "part_schema",
    "lineorder_schema",
    "SSB_SCHEMAS",
]

#: 10 cities per nation, named like SSB's "UNITED ST0".."UNITED ST9".
CITIES: Tuple[str, ...] = tuple(
    f"{nation[:9]:<9}{digit}"
    for nation in NATIONS
    for digit in range(10)
)

#: City code -> nation code (city i belongs to nation i // 10).
CITY_NATION: Tuple[int, ...] = tuple(
    index // 10 for index in range(len(CITIES))
)

MFGRS: Tuple[str, ...] = tuple(f"MFGR#{i}" for i in range(1, 6))

#: 5 categories per manufacturer: MFGR#11 .. MFGR#55.
CATEGORIES: Tuple[str, ...] = tuple(
    f"MFGR#{m}{c}" for m in range(1, 6) for c in range(1, 6)
)

#: 40 brands per category: MFGR#1101 .. MFGR#5540.
BRANDS: Tuple[str, ...] = tuple(
    f"{category}{brand:02d}"
    for category in CATEGORIES
    for brand in range(1, 41)
)


def date_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("d_datekey", DataType.INT32),
        ColumnDef("d_year", DataType.INT32),
        ColumnDef("d_yearmonthnum", DataType.INT32),
        ColumnDef("d_weeknuminyear", DataType.INT32),
    )


def customer_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("c_custkey", DataType.INT32),
        ColumnDef("c_city", DataType.DICT, CITIES),
        ColumnDef("c_nation", DataType.DICT, NATIONS),
        ColumnDef("c_region", DataType.DICT, REGIONS),
    )


def supplier_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("s_suppkey", DataType.INT32),
        ColumnDef("s_city", DataType.DICT, CITIES),
        ColumnDef("s_nation", DataType.DICT, NATIONS),
        ColumnDef("s_region", DataType.DICT, REGIONS),
    )


def part_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("p_partkey", DataType.INT32),
        ColumnDef("p_mfgr", DataType.DICT, MFGRS),
        ColumnDef("p_category", DataType.DICT, CATEGORIES),
        ColumnDef("p_brand1", DataType.DICT, BRANDS),
    )


def lineorder_schema() -> TableSchema:
    return TableSchema.of(
        ColumnDef("lo_orderkey", DataType.INT32),
        ColumnDef("lo_custkey", DataType.INT32),
        ColumnDef("lo_partkey", DataType.INT32),
        ColumnDef("lo_suppkey", DataType.INT32),
        ColumnDef("lo_orderdate", DataType.INT32),  # FK to d_datekey
        ColumnDef("lo_quantity", DataType.INT32),
        ColumnDef("lo_extendedprice", DataType.FLOAT64),
        ColumnDef("lo_discount", DataType.INT32),  # whole percent, 0..10
        ColumnDef("lo_revenue", DataType.FLOAT64),
        ColumnDef("lo_supplycost", DataType.FLOAT64),
    )


SSB_SCHEMAS: Dict[str, TableSchema] = {
    "date": date_schema(),
    "customer": customer_schema(),
    "supplier": supplier_schema(),
    "part": part_schema(),
    "lineorder": lineorder_schema(),
}
