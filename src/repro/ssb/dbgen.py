"""Deterministic Star Schema Benchmark data generator.

Cardinalities follow the SSB specification at scale factor 1 (customer
30 K, supplier 2 K, part 200 K, lineorder 6 M; the date dimension is the
fixed 7-year calendar 1992-01-01 .. 1998-12-31), scaled linearly.  Value
relationships the queries depend on hold exactly:
``lo_revenue = lo_extendedprice * (100 - lo_discount) / 100`` and every
city belongs to its nation, every nation to its region.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

import numpy as np

from ..relational import Database, Table
from ..relational.types import date_to_days
from ..tpch.schema import NATION_REGION, NATIONS
from . import schema as _schema

__all__ = ["SSBConfig", "generate_ssb"]

_SF1_CUSTOMERS = 30_000
_SF1_SUPPLIERS = 2_000
_SF1_PARTS = 200_000
_SF1_LINEORDERS = 6_000_000

_DATE_LO = datetime.date(1992, 1, 1)
_DATE_HI = datetime.date(1998, 12, 31)


@dataclass(frozen=True)
class SSBConfig:
    """Scale factor and RNG seed for one generated SSB database."""

    scale: float = 0.01
    seed: int = 19940607  # SSB's TPC-D ancestry: SIGMOD'94

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale factor must be positive")

    def rows(self, base: int) -> int:
        return max(1, int(round(base * self.scale)))


def _date_table() -> Table:
    days = []
    years = []
    yearmonths = []
    weeks = []
    current = _DATE_LO
    one = datetime.timedelta(days=1)
    while current <= _DATE_HI:
        days.append(date_to_days(current))
        years.append(current.year)
        yearmonths.append(current.year * 100 + current.month)
        weeks.append(current.isocalendar()[1])
        current += one
    return Table(
        _schema.date_schema(),
        {
            "d_datekey": np.asarray(days, dtype=np.int32),
            "d_year": np.asarray(years, dtype=np.int32),
            "d_yearmonthnum": np.asarray(yearmonths, dtype=np.int32),
            "d_weeknuminyear": np.asarray(weeks, dtype=np.int32),
        },
    )


def _geography(rng: np.random.Generator, count: int):
    """(city, nation, region) code columns with consistent rollups."""
    cities = rng.integers(0, len(_schema.CITIES), size=count, dtype=np.int32)
    nation_of_city = np.asarray(_schema.CITY_NATION, dtype=np.int32)
    region_of_nation = np.asarray(NATION_REGION, dtype=np.int32)
    nations = nation_of_city[cities]
    regions = region_of_nation[nations]
    return cities, nations, regions


def _customer(rng: np.random.Generator, config: SSBConfig) -> Table:
    count = config.rows(_SF1_CUSTOMERS)
    cities, nations, regions = _geography(rng, count)
    return Table(
        _schema.customer_schema(),
        {
            "c_custkey": np.arange(count, dtype=np.int32),
            "c_city": cities,
            "c_nation": nations,
            "c_region": regions,
        },
    )


def _supplier(rng: np.random.Generator, config: SSBConfig) -> Table:
    count = config.rows(_SF1_SUPPLIERS)
    cities, nations, regions = _geography(rng, count)
    return Table(
        _schema.supplier_schema(),
        {
            "s_suppkey": np.arange(count, dtype=np.int32),
            "s_city": cities,
            "s_nation": nations,
            "s_region": regions,
        },
    )


def _part(rng: np.random.Generator, config: SSBConfig) -> Table:
    count = config.rows(_SF1_PARTS)
    brands = rng.integers(0, len(_schema.BRANDS), size=count, dtype=np.int32)
    categories = (brands // 40).astype(np.int32)
    mfgrs = (categories // 5).astype(np.int32)
    return Table(
        _schema.part_schema(),
        {
            "p_partkey": np.arange(count, dtype=np.int32),
            "p_mfgr": mfgrs,
            "p_category": categories,
            "p_brand1": brands,
        },
    )


def _lineorder(
    rng: np.random.Generator,
    config: SSBConfig,
    date_table: Table,
    num_customers: int,
    num_suppliers: int,
    num_parts: int,
) -> Table:
    count = config.rows(_SF1_LINEORDERS)
    datekeys = date_table.column("d_datekey")
    quantity = rng.integers(1, 51, size=count, dtype=np.int32)
    extendedprice = rng.uniform(900.0, 105_000.0, size=count)
    discount = rng.integers(0, 11, size=count, dtype=np.int32)
    revenue = extendedprice * (100 - discount) / 100.0
    return Table(
        _schema.lineorder_schema(),
        {
            "lo_orderkey": np.arange(count, dtype=np.int32),
            "lo_custkey": rng.integers(
                0, num_customers, size=count, dtype=np.int32
            ),
            "lo_partkey": rng.integers(
                0, num_parts, size=count, dtype=np.int32
            ),
            "lo_suppkey": rng.integers(
                0, num_suppliers, size=count, dtype=np.int32
            ),
            "lo_orderdate": datekeys[
                rng.integers(0, datekeys.size, size=count)
            ],
            "lo_quantity": quantity,
            "lo_extendedprice": extendedprice,
            "lo_discount": discount,
            "lo_revenue": revenue,
            "lo_supplycost": rng.uniform(1.0, 1_000.0, size=count),
        },
    )


def generate_ssb(scale: float = 0.01, seed: int = 19940607) -> Database:
    """Generate a full SSB database."""
    config = SSBConfig(scale=scale, seed=seed)
    rng = np.random.default_rng(config.seed)
    database = Database()
    date_table = _date_table()
    database.add("date", date_table)
    customer = _customer(rng, config)
    supplier = _supplier(rng, config)
    part = _part(rng, config)
    database.add("customer", customer)
    database.add("supplier", supplier)
    database.add("part", part)
    database.add(
        "lineorder",
        _lineorder(
            rng,
            config,
            date_table,
            customer.num_rows,
            supplier.num_rows,
            part.num_rows,
        ),
    )
    return database
