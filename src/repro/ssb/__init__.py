"""Star Schema Benchmark: a second workload over the same engines."""

from .dbgen import SSBConfig, generate_ssb
from .queries import SSB_QUERIES, ssb_query
from .schema import (
    BRANDS,
    CATEGORIES,
    CITIES,
    MFGRS,
    SSB_SCHEMAS,
)

__all__ = [
    "SSBConfig",
    "generate_ssb",
    "SSB_QUERIES",
    "ssb_query",
    "BRANDS",
    "CATEGORIES",
    "CITIES",
    "MFGRS",
    "SSB_SCHEMAS",
]
