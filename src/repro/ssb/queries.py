"""The thirteen Star Schema Benchmark queries as query specs.

Four flights: Q1.x (revenue deltas from discount/quantity windows),
Q2.x (revenue per brand drilled into a part hierarchy slice), Q3.x
(customer/supplier geography over time), Q4.x (profit drill-down).
Q3.4's original ``d_yearmonth = 'Dec1997'`` predicate is expressed via
``d_yearmonthnum = 199712``.

String predicates use dictionary codes; results decode back through
:meth:`QueryResult.decoded_rows`.
"""

from __future__ import annotations

from typing import Dict

from ..plans import AggSpec, JoinEdge, QuerySpec, TableRef
from ..relational import col
from ..tpch.schema import NATIONS, REGIONS
from .schema import BRANDS, CATEGORIES, CITIES, MFGRS

__all__ = ["SSB_QUERIES", "ssb_query"]


def _nation(name: str) -> int:
    return NATIONS.index(name)


def _region(name: str) -> int:
    return REGIONS.index(name)


def _city(name: str) -> int:
    return CITIES.index(name)


_REVENUE_DELTA = col("lo_extendedprice") * col("lo_discount") / 100.0

_DATE = TableRef("date", "date")
_CUSTOMER = TableRef("customer", "customer")
_SUPPLIER = TableRef("supplier", "supplier")
_PART = TableRef("part", "part")
_LINEORDER = TableRef("lineorder", "lineorder")

_E_DATE = JoinEdge("lineorder", "lo_orderdate", "date", "d_datekey")
_E_CUST = JoinEdge("lineorder", "lo_custkey", "customer", "c_custkey")
_E_SUPP = JoinEdge("lineorder", "lo_suppkey", "supplier", "s_suppkey")
_E_PART = JoinEdge("lineorder", "lo_partkey", "part", "p_partkey")


def _flight1(name: str, date_filter, discount_lo, discount_hi, qty_filter):
    return QuerySpec(
        name=name,
        tables=(_LINEORDER, _DATE),
        join_edges=(_E_DATE,),
        fact="lineorder",
        filters={
            "date": date_filter,
            "lineorder": (
                col("lo_discount").between(discount_lo, discount_hi)
                & qty_filter
            ),
        },
        aggregates=(AggSpec("revenue", "sum", _REVENUE_DELTA),),
    )


def q1_1() -> QuerySpec:
    return _flight1(
        "SSB-Q1.1",
        col("d_year").eq(1993),
        1, 3,
        col("lo_quantity").lt(25),
    )


def q1_2() -> QuerySpec:
    return _flight1(
        "SSB-Q1.2",
        col("d_yearmonthnum").eq(199401),
        4, 6,
        col("lo_quantity").between(26, 35),
    )


def q1_3() -> QuerySpec:
    return _flight1(
        "SSB-Q1.3",
        col("d_weeknuminyear").eq(6) & col("d_year").eq(1994),
        5, 7,
        col("lo_quantity").between(26, 35),
    )


def _flight2(name: str, part_filter, supplier_region: str):
    return QuerySpec(
        name=name,
        tables=(_LINEORDER, _DATE, _PART, _SUPPLIER),
        join_edges=(_E_DATE, _E_PART, _E_SUPP),
        fact="lineorder",
        filters={
            "part": part_filter,
            "supplier": col("s_region").eq(_region(supplier_region)),
        },
        group_keys=("d_year", "p_brand1"),
        aggregates=(AggSpec("revenue", "sum", col("lo_revenue")),),
        order_by=("d_year", "p_brand1"),
    )


def q2_1() -> QuerySpec:
    return _flight2(
        "SSB-Q2.1",
        col("p_category").eq(CATEGORIES.index("MFGR#12")),
        "AMERICA",
    )


def q2_2() -> QuerySpec:
    lo = BRANDS.index("MFGR#2221")
    hi = BRANDS.index("MFGR#2228")
    return _flight2(
        "SSB-Q2.2", col("p_brand1").between(lo, hi), "ASIA"
    )


def q2_3() -> QuerySpec:
    return _flight2(
        "SSB-Q2.3",
        col("p_brand1").eq(BRANDS.index("MFGR#2239")),
        "EUROPE",
    )


def _flight3(name: str, cust_filter, supp_filter, date_filter, keys):
    return QuerySpec(
        name=name,
        tables=(_LINEORDER, _CUSTOMER, _SUPPLIER, _DATE),
        join_edges=(_E_CUST, _E_SUPP, _E_DATE),
        fact="lineorder",
        filters={
            "customer": cust_filter,
            "supplier": supp_filter,
            "date": date_filter,
        },
        group_keys=keys + ("d_year",),
        aggregates=(AggSpec("revenue", "sum", col("lo_revenue")),),
        order_by=("d_year", "revenue"),
        order_desc=(False, True),
    )


def q3_1() -> QuerySpec:
    asia = _region("ASIA")
    return _flight3(
        "SSB-Q3.1",
        col("c_region").eq(asia),
        col("s_region").eq(asia),
        col("d_year").between(1992, 1997),
        ("c_nation", "s_nation"),
    )


def q3_2() -> QuerySpec:
    us = _nation("UNITED STATES")
    return _flight3(
        "SSB-Q3.2",
        col("c_nation").eq(us),
        col("s_nation").eq(us),
        col("d_year").between(1992, 1997),
        ("c_city", "s_city"),
    )


def _two_cities():
    return (
        _city("UNITED KI0"),
        _city("UNITED KI5"),
    )


def q3_3() -> QuerySpec:
    city_a, city_b = _two_cities()
    return _flight3(
        "SSB-Q3.3",
        col("c_city").isin([city_a, city_b]),
        col("s_city").isin([city_a, city_b]),
        col("d_year").between(1992, 1997),
        ("c_city", "s_city"),
    )


def q3_4() -> QuerySpec:
    city_a, city_b = _two_cities()
    return _flight3(
        "SSB-Q3.4",
        col("c_city").isin([city_a, city_b]),
        col("s_city").isin([city_a, city_b]),
        col("d_yearmonthnum").eq(199712),
        ("c_city", "s_city"),
    )


_PROFIT = col("lo_revenue") - col("lo_supplycost")


def q4_1() -> QuerySpec:
    america = _region("AMERICA")
    mfgrs = [MFGRS.index("MFGR#1"), MFGRS.index("MFGR#2")]
    return QuerySpec(
        name="SSB-Q4.1",
        tables=(_LINEORDER, _DATE, _CUSTOMER, _SUPPLIER, _PART),
        join_edges=(_E_DATE, _E_CUST, _E_SUPP, _E_PART),
        fact="lineorder",
        filters={
            "customer": col("c_region").eq(america),
            "supplier": col("s_region").eq(america),
            "part": col("p_mfgr").isin(mfgrs),
        },
        derived=(("profit_item", _PROFIT),),
        group_keys=("d_year", "c_nation"),
        aggregates=(AggSpec("profit", "sum", col("profit_item")),),
        order_by=("d_year", "c_nation"),
    )


def q4_2() -> QuerySpec:
    america = _region("AMERICA")
    mfgrs = [MFGRS.index("MFGR#1"), MFGRS.index("MFGR#2")]
    return QuerySpec(
        name="SSB-Q4.2",
        tables=(_LINEORDER, _DATE, _CUSTOMER, _SUPPLIER, _PART),
        join_edges=(_E_DATE, _E_CUST, _E_SUPP, _E_PART),
        fact="lineorder",
        filters={
            "customer": col("c_region").eq(america),
            "supplier": col("s_region").eq(america),
            "part": col("p_mfgr").isin(mfgrs),
            "date": col("d_year").isin([1997, 1998]),
        },
        derived=(("profit_item", _PROFIT),),
        group_keys=("d_year", "s_nation", "p_category"),
        aggregates=(AggSpec("profit", "sum", col("profit_item")),),
        order_by=("d_year", "s_nation", "p_category"),
    )


def q4_3() -> QuerySpec:
    return QuerySpec(
        name="SSB-Q4.3",
        tables=(_LINEORDER, _DATE, _CUSTOMER, _SUPPLIER, _PART),
        join_edges=(_E_DATE, _E_CUST, _E_SUPP, _E_PART),
        fact="lineorder",
        filters={
            "customer": col("c_region").eq(_region("AMERICA")),
            "supplier": col("s_nation").eq(_nation("UNITED STATES")),
            "part": col("p_category").eq(CATEGORIES.index("MFGR#14")),
            "date": col("d_year").isin([1997, 1998]),
        },
        derived=(("profit_item", _PROFIT),),
        group_keys=("d_year", "s_city", "p_brand1"),
        aggregates=(AggSpec("profit", "sum", col("profit_item")),),
        order_by=("d_year", "s_city", "p_brand1"),
    )


SSB_QUERIES: Dict[str, "QuerySpec"] = {
    "Q1.1": q1_1(),
    "Q1.2": q1_2(),
    "Q1.3": q1_3(),
    "Q2.1": q2_1(),
    "Q2.2": q2_2(),
    "Q2.3": q2_3(),
    "Q3.1": q3_1(),
    "Q3.2": q3_2(),
    "Q3.3": q3_3(),
    "Q3.4": q3_4(),
    "Q4.1": q4_1(),
    "Q4.2": q4_2(),
    "Q4.3": q4_3(),
}


def ssb_query(name: str) -> QuerySpec:
    """Look up an SSB query by flight name ("Q1.1" ... "Q4.3")."""
    try:
        return SSB_QUERIES[name]
    except KeyError:
        raise ValueError(
            f"unknown SSB query {name!r}; choose one of {sorted(SSB_QUERIES)}"
        ) from None
