"""Segment checkpoint/resume for the resilience layer.

GPL's defining structure — plans split into pipelines ("segments") that
*materialize* at blocking kernels — gives retries natural recovery
points: once a segment has finished, its outputs (an intermediate batch
or a built hash table) are complete, engine-independent values sitting
in the :class:`~repro.plans.ExecutionContext`.  A retry therefore never
needs to re-run segments that already completed; it only needs their
materialized outputs back.

Two classes implement this:

* :class:`CheckpointStore` — a bounded, LRU-evicting pool of completed
  segment outputs, shared across the queries of a
  :class:`~repro.serve.QueryService` so checkpoint memory is capped
  service-wide.  Eviction is safe: an evicted segment simply re-executes
  on the next retry.
* :class:`QueryCheckpoint` — one query's window onto the store, alive
  for the duration of one :meth:`ResilientExecutor.execute` call (all
  its retries and engine fallbacks).  The engines call
  :meth:`~QueryCheckpoint.restore` before each segment and
  :meth:`~QueryCheckpoint.record` after it completes.

Because every engine (GPL, GPL w/o CE, KBE) executes the *same* physical
pipelines functionally, checkpoints survive Δ-halving retries *and*
GPL→KBE fallback unchanged; only segments whose pipeline ids disappear
from a re-planned attempt are invalidated (see
:meth:`QueryCheckpoint.begin_attempt`).

A third class, :class:`SegmentCache`, generalizes the same capture
machinery across *queries*: where the checkpoint store keys entries by
a per-execution ticket (so two executions never alias), the segment
cache keys them by a content signature — a running digest of the
database fingerprint, the device, the plan knobs, and every lowered
pipeline up to and including the segment — so two *distinct* queries
whose plans share a lowered segment prefix (the same scan/filter/build
subplans, in the same order) resume from each other's materialized
outputs.  The signature is the whole invalidation story, exactly like
:func:`~repro.plans.lowering.plan_cache_key`: change the data, the
device, a knob, or any upstream operator and the key changes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..plans.runtime import Batch, batch_bytes

__all__ = [
    "CheckpointStore",
    "QueryCheckpoint",
    "SegmentCache",
    "SegmentCheckpoint",
    "segment_cache_keys",
]

#: Default service-wide cap on live checkpoint bytes (256 MiB of
#: simulated intermediates — generous for the repro's scale factors while
#: still exercising eviction in soak runs).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: Default cap on the number of live segment checkpoints.
DEFAULT_MAX_SEGMENTS = 256


@dataclass
class SegmentCheckpoint:
    """The materialized outputs one completed segment contributed."""

    segment_id: str
    intermediates: Dict[str, Batch] = field(default_factory=dict)
    hash_tables: Dict[str, object] = field(default_factory=dict)
    nbytes: int = 0

    @staticmethod
    def capture(
        segment_id: str,
        intermediates: Dict[str, Batch],
        hash_tables: Dict[str, object],
    ) -> "SegmentCheckpoint":
        size = sum(batch_bytes(batch) for batch in intermediates.values())
        size += sum(int(table.nbytes) for table in hash_tables.values())
        return SegmentCheckpoint(
            segment_id=segment_id,
            intermediates=dict(intermediates),
            hash_tables=dict(hash_tables),
            nbytes=size,
        )


class CheckpointStore:
    """Bounded LRU pool of :class:`SegmentCheckpoint` entries.

    Keys are ``(query_ticket, segment_id)`` — ``query_ticket`` is a
    store-issued monotonic id, so two in-flight executions of the same
    query name never alias.  ``max_bytes``/``max_segments`` bound the
    pool; recording a segment evicts least-recently-used entries (from
    *any* query) until the new entry fits.  A segment larger than the
    whole budget is simply not stored.

    Thread-safe: one store is shared by every concurrent worker-pool
    execution, so ticket issue, entry management, and the byte/segment
    accounting all happen under a reentrant lock.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ):
        if max_bytes < 0 or max_segments < 0:
            raise ValueError("checkpoint store bounds must be non-negative")
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self._entries: "OrderedDict[Tuple[int, str], SegmentCheckpoint]" = (
            OrderedDict()
        )
        self._next_ticket = 0
        self.live_bytes = 0
        # lifetime counters (service-wide observability)
        self.recorded_total = 0
        self.resumed_total = 0
        self.evicted_total = 0
        self.invalidated_total = 0
        self.peak_bytes = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def open(self, query: str = "") -> "QueryCheckpoint":
        """A fresh per-execution window onto this store."""
        with self._lock:
            ticket = self._next_ticket
            self._next_ticket += 1
        return QueryCheckpoint(self, ticket, query)

    # -- entry management (used by QueryCheckpoint) ---------------------

    def _put(self, ticket: int, entry: SegmentCheckpoint) -> bool:
        if entry.nbytes > self.max_bytes or self.max_segments == 0:
            return False
        with self._lock:
            while self._entries and (
                self.live_bytes + entry.nbytes > self.max_bytes
                or len(self._entries) >= self.max_segments
            ):
                _, evicted = self._entries.popitem(last=False)
                self.live_bytes -= evicted.nbytes
                self.evicted_total += 1
            if len(self._entries) >= self.max_segments:
                return False
            self._entries[(ticket, entry.segment_id)] = entry
            self.live_bytes += entry.nbytes
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)
            self.recorded_total += 1
            return True

    def _get(self, ticket: int, segment_id: str) -> Optional[SegmentCheckpoint]:
        with self._lock:
            entry = self._entries.get((ticket, segment_id))
            if entry is not None:
                self._entries.move_to_end((ticket, segment_id))
            return entry

    def _drop(self, ticket: int, segment_id: str, invalidated: bool) -> None:
        with self._lock:
            entry = self._entries.pop((ticket, segment_id), None)
            if entry is not None:
                self.live_bytes -= entry.nbytes
                if invalidated:
                    self.invalidated_total += 1

    def counters_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "live_segments": len(self._entries),
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
                "recorded": self.recorded_total,
                "resumed": self.resumed_total,
                "evicted": self.evicted_total,
                "invalidated": self.invalidated_total,
            }


class QueryCheckpoint:
    """One query's checkpoint window, spanning all its retry attempts.

    The engine protocol (driven by ``EngineBase.execute_plan``):

    1. :meth:`begin_attempt` with the attempt's plan signature — drops
       checkpoints for segments the new plan no longer contains;
    2. per segment, :meth:`restore` — on hit, splice the recorded
       outputs back into the context and *skip* execution;
    3. after a segment completes, :meth:`record` — capture the keys this
       segment added to the context.

    Per-execution counters (``segments_recorded`` / ``segments_resumed``
    / ``segments_invalidated``) feed the
    :class:`~repro.core.ResilienceReport`.
    """

    def __init__(self, store: CheckpointStore, ticket: int, query: str = ""):
        self._store = store
        self._ticket = ticket
        self.query = query
        self._segments: "OrderedDict[str, None]" = OrderedDict()
        self._seen_intermediates: set = set()
        self._seen_hash_tables: set = set()
        self.segments_recorded = 0
        self.segments_resumed = 0
        self.segments_invalidated = 0

    def begin_attempt(self, plan_signature: Tuple[str, ...]) -> None:
        """Reset per-attempt state; invalidate re-planned segments."""
        self._seen_intermediates = set()
        self._seen_hash_tables = set()
        current = set(plan_signature)
        for segment_id in list(self._segments):
            if segment_id not in current:
                self._store._drop(self._ticket, segment_id, invalidated=True)
                del self._segments[segment_id]
                self.segments_invalidated += 1

    def note_restored(
        self, intermediates: Dict[str, Batch], hash_tables: Dict[str, object]
    ) -> None:
        """Mark context keys spliced in by an *external* restore.

        The cross-query :class:`SegmentCache` can satisfy a segment this
        checkpoint never saw; without this notice the next
        :meth:`record` would mistake the restored keys for outputs of
        the segment that follows and double-capture them.
        """
        self._seen_intermediates.update(intermediates)
        self._seen_hash_tables.update(hash_tables)

    def restore(self, segment_id: str, context) -> bool:
        """Splice a recorded segment back into ``context`` if available.

        Returns ``True`` when the segment can be skipped.  A miss (never
        recorded, or evicted by the store) returns ``False`` and the
        segment re-executes — eviction is always safe.
        """
        if segment_id not in self._segments:
            return False
        entry = self._store._get(self._ticket, segment_id)
        if entry is None:  # evicted under memory pressure
            del self._segments[segment_id]
            return False
        context.intermediates.update(entry.intermediates)
        context.hash_tables.update(entry.hash_tables)
        self._seen_intermediates.update(entry.intermediates)
        self._seen_hash_tables.update(entry.hash_tables)
        self.segments_resumed += 1
        with self._store._lock:
            self._store.resumed_total += 1
        return True

    def record(self, segment_id: str, context) -> None:
        """Capture the context keys this just-completed segment added."""
        new_intermediates = {
            key: value
            for key, value in context.intermediates.items()
            if key not in self._seen_intermediates
        }
        new_hash_tables = {
            key: value
            for key, value in context.hash_tables.items()
            if key not in self._seen_hash_tables
        }
        self._seen_intermediates.update(new_intermediates)
        self._seen_hash_tables.update(new_hash_tables)
        if segment_id in self._segments:  # re-recorded after invalidation
            self._store._drop(self._ticket, segment_id, invalidated=False)
            del self._segments[segment_id]
        entry = SegmentCheckpoint.capture(
            segment_id, new_intermediates, new_hash_tables
        )
        if self._store._put(self._ticket, entry):
            self._segments[segment_id] = None
            self.segments_recorded += 1

    def release(self) -> None:
        """Drop every checkpoint this execution holds (query finished)."""
        for segment_id in self._segments:
            self._store._drop(self._ticket, segment_id, invalidated=False)
        self._segments.clear()

    def counters_dict(self) -> Dict[str, int]:
        return {
            "segments_recorded": self.segments_recorded,
            "segments_resumed": self.segments_resumed,
            "segments_invalidated": self.segments_invalidated,
        }


# -- cross-query segment cache -------------------------------------------

#: Guards the per-plan ``_segment_key_memo`` dicts: plans are shared
#: through the plan cache, so two worker-pool tasks can key the same
#: plan object concurrently.
_MEMO_LOCK = threading.RLock()


def _op_signature(op) -> str:
    """Deterministic description of one stream op or sink.

    Every public attribute of the physical operators is either a scalar,
    a tuple/dict of scalars, or a frozen-dataclass expression tree — all
    with canonical ``repr``s (the same property
    :func:`~repro.plans.optimizer.spec_fingerprint` relies on).  Private
    attributes are per-execution state (sink accumulators, built hash
    tables) and are excluded.
    """
    fields = ",".join(
        f"{name}={value!r}"
        for name, value in sorted(vars(op).items())
        if not name.startswith("_")
    )
    return f"{type(op).__name__}({fields})"


def segment_cache_keys(
    plan,
    database,
    device_name: str,
    *,
    partitioned_joins: bool = False,
    num_partitions: int = 16,
    adaptive_fact: bool = False,
) -> Tuple[str, ...]:
    """One content key per pipeline of ``plan``, in plan order.

    Key ``i`` is a running SHA-1 over the database fingerprint (table
    names, row counts, byte sizes), the device name, the plan knobs, and
    the full descriptions of pipelines ``0..i``.  Chaining the digest
    over the *prefix* makes the key conservative and sound: a pipeline's
    inputs (its source intermediate, the hash tables its probes consult)
    are always produced by earlier pipelines, so two plans agreeing on a
    prefix key agree on everything segment ``i`` can observe.

    Keys are memoized on the plan object per environment digest — plans
    are shared through the :class:`~repro.serve.PlanCache`, so repeat
    traffic hashes nothing.
    """
    env = hashlib.sha1()
    env.update(
        repr(
            tuple(
                (name, database.table(name).num_rows, database.table(name).nbytes)
                for name in database.names
            )
        ).encode()
    )
    env.update(
        f"|{device_name}|pj={int(partitioned_joins)}"
        f"|np={num_partitions}|af={int(adaptive_fact)}".encode()
    )
    env_digest = env.hexdigest()
    with _MEMO_LOCK:
        memo = getattr(plan, "_segment_key_memo", None)
        if memo is None:
            memo = {}
            plan._segment_key_memo = memo
        keys = memo.get(env_digest)
        if keys is not None:
            return keys
        running = hashlib.sha1(env_digest.encode())
        out: List[str] = []
        for pipeline in plan.pipelines:
            source = pipeline.source_table or f"@{pipeline.source_intermediate}"
            running.update(
                "|".join(
                    [
                        pipeline.pipeline_id,
                        source,
                        repr(pipeline.source_columns),
                        repr(sorted(pipeline.source_rename.items())),
                        str(pipeline.source_row_width),
                    ]
                    + [_op_signature(op) for op in pipeline.ops]
                    + [_op_signature(pipeline.sink)]
                ).encode()
            )
            out.append(f"{pipeline.pipeline_id}:{running.hexdigest()}")
        keys = tuple(out)
        memo[env_digest] = keys
        return keys


class SegmentCache:
    """Cross-query LRU cache of materialized segment outputs.

    The generalization of :class:`CheckpointStore`: same captured
    values (:class:`SegmentCheckpoint` entries, held by reference — see
    the capture-by-reference note on :meth:`SegmentCheckpoint.capture`),
    same byte/segment bounds and LRU eviction, but keyed by the content
    signatures of :func:`segment_cache_keys` instead of a per-execution
    ticket.  Any engine whose ``segment_cache`` attribute is set
    consults it before running each segment; the serving layer shares
    one cache across every query it executes.

    Eviction and misses are always safe — the segment simply executes.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ):
        if max_bytes < 0 or max_segments < 0:
            raise ValueError("segment cache bounds must be non-negative")
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self._entries: "OrderedDict[str, SegmentCheckpoint]" = OrderedDict()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stored = 0
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys_for(
        self,
        plan,
        database,
        device_name: str,
        *,
        partitioned_joins: bool = False,
        num_partitions: int = 16,
        adaptive_fact: bool = False,
    ) -> Tuple[str, ...]:
        """Per-pipeline content keys (see :func:`segment_cache_keys`)."""
        return segment_cache_keys(
            plan,
            database,
            device_name,
            partitioned_joins=partitioned_joins,
            num_partitions=num_partitions,
            adaptive_fact=adaptive_fact,
        )

    def restore(self, key: str, context) -> bool:
        """Splice the cached segment under ``key`` into ``context``.

        Returns ``True`` when the segment can be skipped; a miss counts
        and returns ``False`` (the segment executes normally).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return False
            self._entries.move_to_end(key)
            self.hits += 1
        context.intermediates.update(entry.intermediates)
        context.hash_tables.update(entry.hash_tables)
        return True

    def entry_for(self, key: str) -> Optional[SegmentCheckpoint]:
        """Peek at the entry under ``key`` without counting a lookup."""
        with self._lock:
            return self._entries.get(key)

    def store(self, key: str, entry: SegmentCheckpoint) -> bool:
        """Insert ``entry`` under ``key``, evicting LRU entries to fit.

        An entry larger than the whole budget is not stored; re-storing
        an existing key refreshes it in place.
        """
        if entry.nbytes > self.max_bytes or self.max_segments == 0:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.live_bytes -= old.nbytes
            while self._entries and (
                self.live_bytes + entry.nbytes > self.max_bytes
                or len(self._entries) >= self.max_segments
            ):
                _, evicted = self._entries.popitem(last=False)
                self.live_bytes -= evicted.nbytes
                self.evictions += 1
            if len(self._entries) >= self.max_segments:
                return False
            self._entries[key] = entry
            self.live_bytes += entry.nbytes
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)
            self.stored += 1
            return True

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self.live_bytes = 0
            self.peak_bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.stored = 0

    def counters_dict(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "stored": self.stored,
                "live_segments": len(self._entries),
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
            }
