"""Segment checkpoint/resume for the resilience layer.

GPL's defining structure — plans split into pipelines ("segments") that
*materialize* at blocking kernels — gives retries natural recovery
points: once a segment has finished, its outputs (an intermediate batch
or a built hash table) are complete, engine-independent values sitting
in the :class:`~repro.plans.ExecutionContext`.  A retry therefore never
needs to re-run segments that already completed; it only needs their
materialized outputs back.

Two classes implement this:

* :class:`CheckpointStore` — a bounded, LRU-evicting pool of completed
  segment outputs, shared across the queries of a
  :class:`~repro.serve.QueryService` so checkpoint memory is capped
  service-wide.  Eviction is safe: an evicted segment simply re-executes
  on the next retry.
* :class:`QueryCheckpoint` — one query's window onto the store, alive
  for the duration of one :meth:`ResilientExecutor.execute` call (all
  its retries and engine fallbacks).  The engines call
  :meth:`~QueryCheckpoint.restore` before each segment and
  :meth:`~QueryCheckpoint.record` after it completes.

Because every engine (GPL, GPL w/o CE, KBE) executes the *same* physical
pipelines functionally, checkpoints survive Δ-halving retries *and*
GPL→KBE fallback unchanged; only segments whose pipeline ids disappear
from a re-planned attempt are invalidated (see
:meth:`QueryCheckpoint.begin_attempt`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..plans.runtime import Batch, batch_bytes

__all__ = ["CheckpointStore", "QueryCheckpoint", "SegmentCheckpoint"]

#: Default service-wide cap on live checkpoint bytes (256 MiB of
#: simulated intermediates — generous for the repro's scale factors while
#: still exercising eviction in soak runs).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024
#: Default cap on the number of live segment checkpoints.
DEFAULT_MAX_SEGMENTS = 256


@dataclass
class SegmentCheckpoint:
    """The materialized outputs one completed segment contributed."""

    segment_id: str
    intermediates: Dict[str, Batch] = field(default_factory=dict)
    hash_tables: Dict[str, object] = field(default_factory=dict)
    nbytes: int = 0

    @staticmethod
    def capture(
        segment_id: str,
        intermediates: Dict[str, Batch],
        hash_tables: Dict[str, object],
    ) -> "SegmentCheckpoint":
        size = sum(batch_bytes(batch) for batch in intermediates.values())
        size += sum(int(table.nbytes) for table in hash_tables.values())
        return SegmentCheckpoint(
            segment_id=segment_id,
            intermediates=dict(intermediates),
            hash_tables=dict(hash_tables),
            nbytes=size,
        )


class CheckpointStore:
    """Bounded LRU pool of :class:`SegmentCheckpoint` entries.

    Keys are ``(query_ticket, segment_id)`` — ``query_ticket`` is a
    store-issued monotonic id, so two in-flight executions of the same
    query name never alias.  ``max_bytes``/``max_segments`` bound the
    pool; recording a segment evicts least-recently-used entries (from
    *any* query) until the new entry fits.  A segment larger than the
    whole budget is simply not stored.
    """

    def __init__(
        self,
        max_bytes: int = DEFAULT_MAX_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ):
        if max_bytes < 0 or max_segments < 0:
            raise ValueError("checkpoint store bounds must be non-negative")
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self._entries: "OrderedDict[Tuple[int, str], SegmentCheckpoint]" = (
            OrderedDict()
        )
        self._next_ticket = 0
        self.live_bytes = 0
        # lifetime counters (service-wide observability)
        self.recorded_total = 0
        self.resumed_total = 0
        self.evicted_total = 0
        self.invalidated_total = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def open(self, query: str = "") -> "QueryCheckpoint":
        """A fresh per-execution window onto this store."""
        ticket = self._next_ticket
        self._next_ticket += 1
        return QueryCheckpoint(self, ticket, query)

    # -- entry management (used by QueryCheckpoint) ---------------------

    def _put(self, ticket: int, entry: SegmentCheckpoint) -> bool:
        if entry.nbytes > self.max_bytes or self.max_segments == 0:
            return False
        while self._entries and (
            self.live_bytes + entry.nbytes > self.max_bytes
            or len(self._entries) >= self.max_segments
        ):
            _, evicted = self._entries.popitem(last=False)
            self.live_bytes -= evicted.nbytes
            self.evicted_total += 1
        if len(self._entries) >= self.max_segments:
            return False
        self._entries[(ticket, entry.segment_id)] = entry
        self.live_bytes += entry.nbytes
        self.peak_bytes = max(self.peak_bytes, self.live_bytes)
        self.recorded_total += 1
        return True

    def _get(self, ticket: int, segment_id: str) -> Optional[SegmentCheckpoint]:
        entry = self._entries.get((ticket, segment_id))
        if entry is not None:
            self._entries.move_to_end((ticket, segment_id))
        return entry

    def _drop(self, ticket: int, segment_id: str, invalidated: bool) -> None:
        entry = self._entries.pop((ticket, segment_id), None)
        if entry is not None:
            self.live_bytes -= entry.nbytes
            if invalidated:
                self.invalidated_total += 1

    def counters_dict(self) -> Dict[str, int]:
        return {
            "live_segments": len(self._entries),
            "live_bytes": self.live_bytes,
            "peak_bytes": self.peak_bytes,
            "recorded": self.recorded_total,
            "resumed": self.resumed_total,
            "evicted": self.evicted_total,
            "invalidated": self.invalidated_total,
        }


class QueryCheckpoint:
    """One query's checkpoint window, spanning all its retry attempts.

    The engine protocol (driven by ``EngineBase.execute_plan``):

    1. :meth:`begin_attempt` with the attempt's plan signature — drops
       checkpoints for segments the new plan no longer contains;
    2. per segment, :meth:`restore` — on hit, splice the recorded
       outputs back into the context and *skip* execution;
    3. after a segment completes, :meth:`record` — capture the keys this
       segment added to the context.

    Per-execution counters (``segments_recorded`` / ``segments_resumed``
    / ``segments_invalidated``) feed the
    :class:`~repro.core.ResilienceReport`.
    """

    def __init__(self, store: CheckpointStore, ticket: int, query: str = ""):
        self._store = store
        self._ticket = ticket
        self.query = query
        self._segments: "OrderedDict[str, None]" = OrderedDict()
        self._seen_intermediates: set = set()
        self._seen_hash_tables: set = set()
        self.segments_recorded = 0
        self.segments_resumed = 0
        self.segments_invalidated = 0

    def begin_attempt(self, plan_signature: Tuple[str, ...]) -> None:
        """Reset per-attempt state; invalidate re-planned segments."""
        self._seen_intermediates = set()
        self._seen_hash_tables = set()
        current = set(plan_signature)
        for segment_id in list(self._segments):
            if segment_id not in current:
                self._store._drop(self._ticket, segment_id, invalidated=True)
                del self._segments[segment_id]
                self.segments_invalidated += 1

    def restore(self, segment_id: str, context) -> bool:
        """Splice a recorded segment back into ``context`` if available.

        Returns ``True`` when the segment can be skipped.  A miss (never
        recorded, or evicted by the store) returns ``False`` and the
        segment re-executes — eviction is always safe.
        """
        if segment_id not in self._segments:
            return False
        entry = self._store._get(self._ticket, segment_id)
        if entry is None:  # evicted under memory pressure
            del self._segments[segment_id]
            return False
        context.intermediates.update(entry.intermediates)
        context.hash_tables.update(entry.hash_tables)
        self._seen_intermediates.update(entry.intermediates)
        self._seen_hash_tables.update(entry.hash_tables)
        self.segments_resumed += 1
        self._store.resumed_total += 1
        return True

    def record(self, segment_id: str, context) -> None:
        """Capture the context keys this just-completed segment added."""
        new_intermediates = {
            key: value
            for key, value in context.intermediates.items()
            if key not in self._seen_intermediates
        }
        new_hash_tables = {
            key: value
            for key, value in context.hash_tables.items()
            if key not in self._seen_hash_tables
        }
        self._seen_intermediates.update(new_intermediates)
        self._seen_hash_tables.update(new_hash_tables)
        if segment_id in self._segments:  # re-recorded after invalidation
            self._store._drop(self._ticket, segment_id, invalidated=False)
            del self._segments[segment_id]
        entry = SegmentCheckpoint.capture(
            segment_id, new_intermediates, new_hash_tables
        )
        if self._store._put(self._ticket, entry):
            self._segments[segment_id] = None
            self.segments_recorded += 1

    def release(self) -> None:
        """Drop every checkpoint this execution holds (query finished)."""
        for segment_id in self._segments:
            self._store._drop(self._ticket, segment_id, invalidated=False)
        self._segments.clear()

    def counters_dict(self) -> Dict[str, int]:
        return {
            "segments_recorded": self.segments_recorded,
            "segments_resumed": self.segments_resumed,
            "segments_invalidated": self.segments_invalidated,
        }
