"""GPL core: the pipelined query execution engine and its components."""

from .base import EngineBase, QueryResult, workgroups_for
from .checkpoint import CheckpointStore, QueryCheckpoint, SegmentCheckpoint
from .config import DEFAULT_TILE_BYTES, MIN_TILE_BYTES, GPLConfig
from .engine import GPLEngine, GPLWithoutCEEngine
from .parallel import PoolTask, WorkerPool
from .resilience import (
    ENGINE_CHAIN,
    AttemptRecord,
    ResilienceReport,
    ResilientExecutor,
)
from .segments import Segment, pipeline_kernel_specs, split_into_segments
from .tiling import TilePlan, Tiler

__all__ = [
    "EngineBase",
    "QueryResult",
    "workgroups_for",
    "CheckpointStore",
    "QueryCheckpoint",
    "SegmentCheckpoint",
    "DEFAULT_TILE_BYTES",
    "MIN_TILE_BYTES",
    "GPLConfig",
    "GPLEngine",
    "GPLWithoutCEEngine",
    "PoolTask",
    "WorkerPool",
    "ENGINE_CHAIN",
    "AttemptRecord",
    "ResilienceReport",
    "ResilientExecutor",
    "Segment",
    "pipeline_kernel_specs",
    "split_into_segments",
    "TilePlan",
    "Tiler",
]
