"""GPL: the pipelined query execution engine (the paper's contribution).

Each physical pipeline is a *segment*: its kernels are launched once,
connected by data channels, and executed concurrently while tiles of the
input stream through (Sections 3.3–3.5).  Intermediate results cross
kernels through channels — only segment outputs (hash tables, aggregates,
sorted results) are materialized in global memory.

``GPLConfig(concurrent=False)`` gives the paper's **GPL (w/o CE)**
variant: tiling is kept, but every kernel runs exclusively per tile and
materializes its output, which re-introduces kernel-launch overhead and
forfeits overlap — the variant the evaluation shows is *slower* than KBE.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..gpu import DataLocation, DeviceSpec, KernelLaunch, Simulator, StageSpec
from ..gpu.occupancy import scheduling_contention
from ..plans import ExecutionContext, KernelTemplate, Pipeline
from ..plans.runtime import Batch, batch_rows
from ..relational import Database
from .base import EngineBase
from .config import GPLConfig
from .tiling import Tiler

__all__ = ["GPLEngine", "GPLWithoutCEEngine"]


class GPLEngine(EngineBase):
    """Tile-pipelined, channel-connected, concurrently executed."""

    name = "GPL"

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        config: Optional[GPLConfig] = None,
        segment_configs: Optional[Dict[str, GPLConfig]] = None,
        partitioned_joins: bool = False,
        num_partitions: int = 16,
        adaptive_fact: bool = False,
    ):
        super().__init__(
            database, device,
            partitioned_joins=partitioned_joins,
            num_partitions=num_partitions,
            adaptive_fact=adaptive_fact,
        )
        self.config = config or GPLConfig()
        self.segment_configs = dict(segment_configs or {})
        if not self.config.concurrent:
            self.name = "GPL (w/o CE)"

        self._capture_trace = False
        self._traces: Dict[str, list] = {}

    def config_for(self, pipeline_id: str) -> GPLConfig:
        """The configuration used for one segment (model overrides win)."""
        return self.segment_configs.get(pipeline_id, self.config)

    def estimated_segment_footprint(
        self, pipeline: Pipeline, config: Optional[GPLConfig] = None
    ) -> float:
        """Pre-launch device-memory estimate for one segment, in bytes.

        Admission control (:mod:`repro.core.resilience`) compares this
        against the device budget *before* anything is launched.  The
        estimate covers the three live allocations of pipelined
        execution: the streamed tile, every interior channel binding at
        full capacity, and the segment's materialized output (hash table
        or aggregate) sized from the optimizer's cardinalities.
        """
        config = config or self.config_for(pipeline.pipeline_id)
        templates = self._templates(pipeline)
        footprint = float(config.tile_bytes)
        footprint += max(0, len(templates) - 1) * float(
            config.channel.capacity_bytes
        )
        rows = float(max(0.0, pipeline.est_source_rows))
        for op in pipeline.ops:
            rows *= max(0.0, op.est_selectivity)
        if templates:
            footprint += rows * float(templates[-1].out_width)
        return footprint

    def estimated_plan_footprint(
        self, plan, config: Optional[GPLConfig] = None
    ) -> float:
        """Pre-launch device-memory estimate for a whole plan, in bytes.

        The sum of every segment's live footprint — what admission
        control (both the resilience layer's and the serving layer's
        shared-budget partitioning) compares against the device budget.
        """
        return sum(
            self.estimated_segment_footprint(pipeline, config)
            for pipeline in plan.pipelines
        )

    def execute_with_trace(self, spec):
        """Execute a query and capture per-segment execution traces.

        Returns ``(result, traces)`` where ``traces`` maps pipeline ids to
        lists of :class:`~repro.gpu.trace.TraceEvent`; render them with
        :func:`repro.gpu.trace.render_gantt`.
        """
        self._capture_trace = True
        self._traces = {}
        try:
            result = self.execute(spec)
        finally:
            self._capture_trace = False
        return result, dict(self._traces)

    # ------------------------------------------------------------------

    def _run_pipeline(
        self,
        pipeline: Pipeline,
        simulator: Simulator,
        context: ExecutionContext,
    ) -> None:
        config = self.config_for(pipeline.pipeline_id)
        batch = self._source_batch(pipeline, context)
        total_rows = batch_rows(batch)
        row_width = max(1, pipeline.source_row_width)

        tiler = Tiler(config.tile_bytes)
        plan = tiler.plan(total_rows, row_width)

        templates = self._templates(pipeline)
        rows_in = [0] * len(templates)
        rows_out = [0] * len(templates)
        num_ops = len(pipeline.ops)

        # ---- functional pass: real data, tile by tile -----------------
        pipeline.sink.start(context)
        sink_output_rows = 0
        for tile in tiler.tiles(batch, row_width):
            current = tile
            for index, op in enumerate(pipeline.ops):
                rows_in[index] += batch_rows(current)
                current = op.apply(current, context)
                rows_out[index] += batch_rows(current)
            # Sink kernels (possibly several, e.g. partition + build)
            # all see the full stream reaching the sink.
            for position in range(num_ops, len(templates)):
                rows_in[position] += batch_rows(current)
            pipeline.sink.consume(current, context)
        output = pipeline.sink.finalize(context)
        if output is not None:
            sink_output_rows = batch_rows(output)
        if num_ops < len(templates):
            # Interior sink kernels pass the stream through unchanged...
            for position in range(num_ops, len(templates) - 1):
                rows_out[position] = rows_in[position]
            # ...and the terminal one either materializes everything it
            # consumed (build) or emits the finalized result (aggregate).
            last = len(templates) - 1
            if output is None:
                rows_out[last] = rows_in[last]
            else:
                rows_out[last] = sink_output_rows
        self._register_output(pipeline, context, output)

        # ---- simulated execution --------------------------------------
        if not templates or plan.num_tiles == 0:
            return
        launches, contention = self._build_launches(
            pipeline, templates, rows_in, rows_out, config, context
        )
        if config.concurrent:
            self._simulate_pipelined(
                simulator, pipeline, launches, plan, config, context,
                contention,
            )
        else:
            self._simulate_tile_serial(simulator, launches, plan, config, context, pipeline)

    # ------------------------------------------------------------------

    @staticmethod
    def _templates(pipeline: Pipeline) -> List[KernelTemplate]:
        templates: List[KernelTemplate] = []
        for op in pipeline.ops:
            kernels = op.gpl_kernels()
            if len(kernels) != 1:
                raise ExecutionError(
                    f"GPL operators must lower to one kernel; {op!r} gave "
                    f"{len(kernels)}"
                )
            templates.extend(kernels)
        templates.extend(pipeline.sink.gpl_kernels())
        return templates

    def _build_launches(
        self,
        pipeline: Pipeline,
        templates: Sequence[KernelTemplate],
        rows_in: Sequence[int],
        rows_out: Sequence[int],
        config: GPLConfig,
        context: ExecutionContext,
    ) -> List[KernelLaunch]:
        last = len(templates) - 1
        launches: List[KernelLaunch] = []
        for index, template in enumerate(templates):
            selectivity = self._actual_selectivity(
                rows_in[index], rows_out[index]
            )
            launches.append(
                KernelLaunch(
                    spec=template.spec,
                    tuples=rows_in[index],
                    workgroups=config.workgroups_for_stage(index),
                    in_bytes_per_tuple=template.in_width,
                    out_bytes_per_tuple=template.out_width,
                    selectivity=selectivity,
                    input_location=(
                        DataLocation.GLOBAL
                        if index == 0
                        else DataLocation.CHANNEL
                    ),
                    output_location=(
                        DataLocation.GLOBAL
                        if index == last
                        else DataLocation.CHANNEL
                    ),
                    label=f"{template.spec.name}#{index}",
                )
            )
        fitted = config.fit_workgroups(launches, self.device)
        requested = sum(launch.workgroups for launch in launches)
        granted = sum(fitted.values())
        contention = scheduling_contention(requested, granted)
        return [
            launch.with_workgroups(fitted[index])
            for index, launch in enumerate(launches)
        ], contention

    def _stage_specs(
        self,
        templates: Sequence[KernelTemplate],
        launches: Sequence[KernelLaunch],
        context: ExecutionContext,
    ) -> List[StageSpec]:
        stages: List[StageSpec] = []
        for template, launch in zip(templates, launches):
            aux_ws = self._aux_working_set(context, template)
            stages.append(
                StageSpec(
                    launch=launch,
                    aux_reads_per_tuple=template.aux_reads_per_tuple,
                    aux_working_set_bytes=aux_ws,
                )
            )
        return stages

    def _simulate_pipelined(
        self,
        simulator: Simulator,
        pipeline: Pipeline,
        launches: List[KernelLaunch],
        plan,
        config: GPLConfig,
        context: ExecutionContext,
        contention: float = 1.0,
    ) -> None:
        """Concurrent kernels + channels: one launch set per segment."""
        templates = self._templates(pipeline)
        stages = self._stage_specs(templates, launches, context)
        channels = self._size_channels(launches, plan, config)
        simulator.launch_overhead(len(stages))
        # The workload scheduler dispatches each tile into the resident
        # pipeline (Section 3.1); small tiles pay this often.
        simulator.counters.add_launch_overhead(
            plan.num_tiles * self.device.tile_dispatch_cycles, 0
        )
        result = simulator.run_pipeline(
            stages,
            channels,
            num_tiles=plan.num_tiles,
            tile_tuples=plan.average_tile_rows,
            tile_bytes=plan.average_tile_rows * max(1, pipeline.source_row_width),
            contention_factor=contention,
            trace=self._capture_trace,
        )
        if self._capture_trace:
            self._traces[pipeline.pipeline_id] = result.trace

    def _size_channels(
        self,
        launches: Sequence[KernelLaunch],
        plan,
        config: GPLConfig,
    ) -> List["ChannelConfig"]:
        """Per-edge channel configs, deepened where one producer
        work-group's burst would exceed the configured capacity (joins can
        *expand* data, so a fixed depth cannot fit every edge)."""
        from ..gpu import ChannelConfig

        channels: List[ChannelConfig] = []
        unit_tuples = plan.average_tile_rows / max(
            1, launches[0].workgroups
        )
        for launch in launches[:-1]:
            out_bytes = (
                unit_tuples * launch.selectivity * launch.out_bytes_per_tuple
            )
            base = config.channel
            packets = base.packets_for(out_bytes)
            # Capacity for two waves of bursts from every work-group: a
            # producer may run at most one wave ahead of its consumer
            # (real pipes drain incrementally; reserve-at-start must not
            # serialize the wave).
            waves = 2 * max(1, launch.workgroups)
            needed_depth = max(
                base.depth_packets,
                -(-waves * packets // base.num_channels),
            )
            channels.append(
                ChannelConfig(
                    num_channels=base.num_channels,
                    packet_bytes=base.packet_bytes,
                    depth_packets=needed_depth,
                )
            )
            unit_tuples *= launch.selectivity
        return channels

    def _simulate_tile_serial(
        self,
        simulator: Simulator,
        launches: List[KernelLaunch],
        plan,
        config: GPLConfig,
        context: ExecutionContext,
        pipeline: Pipeline,
    ) -> None:
        """GPL (w/o CE): per tile, each kernel runs alone and materializes."""
        templates = self._templates(pipeline)
        tile_rows = plan.average_tile_rows
        source_is_table = pipeline.source_table is not None
        for _ in range(plan.num_tiles):
            flowing = tile_rows
            for position, (template, launch) in enumerate(
                zip(templates, launches)
            ):
                aux_ws = self._aux_working_set(context, template)
                tile_launch = KernelLaunch(
                    spec=launch.spec,
                    tuples=int(round(flowing)),
                    workgroups=launch.workgroups,
                    in_bytes_per_tuple=launch.in_bytes_per_tuple,
                    out_bytes_per_tuple=launch.out_bytes_per_tuple,
                    selectivity=launch.selectivity,
                    input_location=DataLocation.GLOBAL,
                    output_location=DataLocation.GLOBAL,
                    label=launch.label,
                )
                simulator.launch_overhead()
                simulator.run_exclusive(
                    tile_launch,
                    input_working_set=flowing * launch.in_bytes_per_tuple,
                    aux_reads_per_tuple=template.aux_reads_per_tuple,
                    aux_working_set_bytes=aux_ws,
                    input_is_intermediate=(
                        position > 0 or not source_is_table
                    ),
                )
                flowing *= launch.selectivity


class GPLWithoutCEEngine(GPLEngine):
    """Convenience subclass preconfigured as the paper's GPL (w/o CE)."""

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        config: Optional[GPLConfig] = None,
        segment_configs: Optional[Dict[str, GPLConfig]] = None,
        partitioned_joins: bool = False,
        num_partitions: int = 16,
    ):
        base = (config or GPLConfig()).without_concurrency()
        super().__init__(
            database, device, base, segment_configs,
            partitioned_joins=partitioned_joins,
            num_partitions=num_partitions,
        )
