"""Tiling: logical partitioning of input relations (paper Section 3.3).

GPL partitions each segment's input into tiles of (nearly) equal byte
size; a tile is the scheduling unit streamed through the segment's kernel
pipeline.  Tiles are numpy views — "logically partitioned", no copies —
exactly like the paper's tiled relations R*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..plans.runtime import Batch, batch_rows

__all__ = ["TilePlan", "Tiler"]


@dataclass(frozen=True)
class TilePlan:
    """How one input is split: row counts per tile."""

    total_rows: int
    rows_per_tile: int
    num_tiles: int

    @property
    def average_tile_rows(self) -> float:
        if self.num_tiles == 0:
            return 0.0
        return self.total_rows / self.num_tiles

    def boundaries(self) -> List[Tuple[int, int]]:
        """(start, stop) row ranges of every tile."""
        return [
            (start, min(start + self.rows_per_tile, self.total_rows))
            for start in range(0, self.total_rows, self.rows_per_tile)
        ]


class Tiler:
    """Splits batches into tiles of a target byte size."""

    def __init__(self, tile_bytes: int):
        if tile_bytes <= 0:
            raise ValueError("tile size must be positive")
        self.tile_bytes = tile_bytes

    def plan(self, total_rows: int, row_width: int) -> TilePlan:
        """Tile layout for ``total_rows`` rows of ``row_width`` bytes."""
        if total_rows <= 0:
            return TilePlan(total_rows=0, rows_per_tile=1, num_tiles=0)
        rows_per_tile = max(1, self.tile_bytes // max(1, row_width))
        num_tiles = math.ceil(total_rows / rows_per_tile)
        return TilePlan(
            total_rows=total_rows,
            rows_per_tile=rows_per_tile,
            num_tiles=num_tiles,
        )

    def tiles(self, batch: Batch, row_width: int) -> Iterator[Batch]:
        """Yield tile views of ``batch`` in order."""
        plan = self.plan(batch_rows(batch), row_width)
        for start, stop in plan.boundaries():
            yield {name: array[start:stop] for name, array in batch.items()}
