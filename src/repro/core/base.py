"""Shared engine machinery: plan preparation, sources, results.

Every engine (KBE baseline, GPL, GPL w/o CE, Ocelot comparator) executes
the *same* physical pipelines functionally — real numpy data flows through
the operators, so all engines produce identical, verifiable answers — and
differs only in how kernel work is *accounted* on the simulated device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cancel import CancellationToken
from ..errors import ExecutionError
from ..gpu import DeviceSpec, HardwareCounters, Profiler, ProfilerReport, Simulator
from ..obs.tracing import add_event, maybe_span
from ..plans import (
    ExecutionContext,
    PhysicalPlan,
    Pipeline,
    QuerySpec,
    SelingerOptimizer,
    lower,
)
from ..plans.runtime import Batch, batch_bytes, batch_rows
from ..relational import Database
from .checkpoint import SegmentCheckpoint

__all__ = ["QueryResult", "EngineBase", "workgroups_for"]

#: Input tuples one work-group covers when an engine sizes a KBE-style
#: grid: 64 work-items x 16 tuples per work-item.
TUPLES_PER_WORKGROUP = 1024


def workgroups_for(tuples: int, minimum: int = 1, maximum: int = 4096) -> int:
    """Grid size covering ``tuples`` at :data:`TUPLES_PER_WORKGROUP` each."""
    if tuples <= 0:
        return minimum
    return int(min(maximum, max(minimum, math.ceil(tuples / TUPLES_PER_WORKGROUP))))


@dataclass
class QueryResult:
    """Outcome of executing one query on one engine."""

    query: str
    engine: str
    device: str
    batch: Batch
    columns: Tuple[str, ...]
    elapsed_ms: float
    counters: HardwareCounters
    report: ProfilerReport
    dictionaries: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Set by :class:`repro.core.resilience.ResilientExecutor`: the
    #: retry/fallback/fault accounting of the run that produced this
    #: result, surfaced next to the hardware counters.
    resilience: Optional["object"] = None
    #: Set by :class:`repro.shard.ShardedExecutor`: fan-out, partition,
    #: and merge accounting when this result was produced by
    #: scatter-gather execution across a device pool.
    shard: Optional["object"] = None

    @property
    def num_rows(self) -> int:
        return batch_rows(self.batch)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.batch[name]
        except KeyError:
            raise ExecutionError(f"result has no column {name!r}") from None

    def rows(self) -> List[tuple]:
        """The result as row tuples in output-column order."""
        arrays = [self.batch[name] for name in self.columns]
        return [tuple(values) for values in zip(*arrays)] if arrays else []

    def sorted_rows(self) -> List[tuple]:
        """Rows under a canonical total order (for engine comparisons)."""
        return sorted(self.rows())

    def decoded_rows(self) -> List[tuple]:
        """Rows with dictionary codes decoded back to strings.

        Columns without a dictionary pass through unchanged; Q5's
        ``n_name`` codes become nation names, Q7's ``supp_nation`` /
        ``cust_nation`` likewise.
        """
        decoders = [self.dictionaries.get(name) for name in self.columns]
        decoded = []
        for row in self.rows():
            decoded.append(
                tuple(
                    decoder[int(value)] if decoder is not None else value
                    for decoder, value in zip(decoders, row)
                )
            )
        return decoded

    def approx_equals(
        self, other: "QueryResult", rel_tol: float = 1e-9
    ) -> bool:
        """Whether two results agree up to floating-point accumulation.

        Engines fold aggregates in different orders (per-tile partial
        sums vs one pass), so exact equality on floats is too strict.
        """
        mine, theirs = self.sorted_rows(), other.sorted_rows()
        if len(mine) != len(theirs):
            return False
        for row_a, row_b in zip(mine, theirs):
            if len(row_a) != len(row_b):
                return False
            for a, b in zip(row_a, row_b):
                if abs(float(a) - float(b)) > rel_tol * max(
                    1.0, abs(float(a)), abs(float(b))
                ):
                    return False
        return True


@dataclass
class _PreparedQuery:
    spec: QuerySpec
    plan: PhysicalPlan


class EngineBase:
    """Template-method base: optimize/lower once, then engine-specific run."""

    #: Engine display name; subclasses override.
    name = "base"

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        partitioned_joins: bool = False,
        num_partitions: int = 16,
        adaptive_fact: bool = False,
    ):
        self.database = database
        self.device = device
        self.partitioned_joins = partitioned_joins
        self.num_partitions = num_partitions
        self.adaptive_fact = adaptive_fact
        #: Optional :class:`repro.faults.FaultInjector` threaded into every
        #: simulator this engine creates (set by the resilience layer or
        #: the CLI; ``None`` costs nothing).
        self.fault_injector = None
        #: Optional :class:`repro.serve.PlanCache`.  When set (by the
        #: serving layer or the resilience executor), :meth:`prepare`
        #: consults it and repeat queries skip optimization + lowering
        #: entirely; ``None`` costs nothing.
        self.plan_cache = None
        #: Optional :class:`repro.cancel.CancellationToken` threaded into
        #: every simulator this engine creates (set by the resilience
        #: layer or the serving loop; ``None`` costs nothing).  When no
        #: token is attached, :meth:`execute` arms one automatically for
        #: specs that carry ``deadline_cycles``.
        self.cancellation = None
        #: Optional :class:`repro.core.checkpoint.QueryCheckpoint`.  When
        #: set (by the resilience executor), :meth:`execute_plan` resumes
        #: completed segments from it and records newly completed ones.
        self.checkpoint = None
        #: Optional :class:`repro.core.checkpoint.SegmentCache` — the
        #: *cross-query* store (set by the serving layer).  Segments
        #: whose content keys hit the cache are spliced from it instead
        #: of executing; completed segments are stored back under their
        #: keys so later queries sharing the plan prefix can reuse them.
        self.segment_cache = None
        self._optimizer = SelingerOptimizer(
            database, choose_fact=adaptive_fact
        )

    # -- public API -------------------------------------------------------

    def prepare(self, spec: QuerySpec) -> PhysicalPlan:
        """Optimize and lower ``spec`` (exposed for inspection/tests).

        Routed through :attr:`plan_cache` when one is attached; cached
        plans are safe to re-execute because every stateful sink resets
        itself in ``start()`` and all run state lives in the per-execution
        :class:`~repro.plans.ExecutionContext`.
        """
        with maybe_span(
            "plan.prepare", category="plan", query=spec.name, engine=self.name
        ) as span:
            if self.plan_cache is not None:
                fetch = getattr(self.plan_cache, "fetch_or_prepare", None)
                if fetch is not None:
                    plan, cache_hit = fetch(self, spec)
                else:  # duck-typed caches: racy under worker pools
                    hits_before = self.plan_cache.stats.hits
                    plan = self.plan_cache.get_or_prepare(self, spec)
                    cache_hit = self.plan_cache.stats.hits > hits_before
                if span is not None:
                    span.attrs["cache_hit"] = cache_hit
                return plan
            if span is not None:
                span.attrs["cache_hit"] = False
            return self.prepare_uncached(spec)

    def prepare_uncached(self, spec: QuerySpec) -> PhysicalPlan:
        """Optimize and lower ``spec``, bypassing any attached plan cache."""
        optimized = self._optimizer.optimize(spec)
        return lower(
            optimized,
            self.database,
            partitioned_joins=self.partitioned_joins,
            num_partitions=self.num_partitions,
        )

    def explain(self, spec: QuerySpec) -> str:
        """Human-readable plan report: join order, pipelines, estimates."""
        optimized = self._optimizer.optimize(spec)
        plan = lower(
            optimized,
            self.database,
            partitioned_joins=self.partitioned_joins,
            num_partitions=self.num_partitions,
        )
        lines = [f"== {spec.name} on {self.name} / {self.device.name} =="]
        if optimized.join_order:
            lines.append(
                "probe order: "
                + " -> ".join(optimized.join_order)
                + f"  (~{optimized.estimated_rows:,.0f} rows estimated)"
            )
        lines.append(plan.describe())
        lines.append("pipelines:")
        for pipeline in plan.pipelines:
            source = pipeline.source_table or f"@{pipeline.source_intermediate}"
            lines.append(
                f"  {pipeline.pipeline_id:20s} source={source:12s} "
                f"~{pipeline.est_source_rows:,.0f} rows x "
                f"{pipeline.source_row_width} B"
            )
            for op in pipeline.ops:
                lines.append(
                    f"      {op!r}  (sel~{op.est_selectivity:.4g}, "
                    f"{op.in_width}B -> {op.out_width}B)"
                )
        return "\n".join(lines)

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Run a query end to end: real results plus simulated timing."""
        plan = self.prepare(spec)
        token = self.cancellation
        if token is None and spec.deadline_cycles is not None:
            token = CancellationToken(spec.deadline_cycles, query=spec.name)
        return self.execute_plan(spec.name, plan, cancellation=token)

    def execute_plan(
        self,
        query_name: str,
        plan: PhysicalPlan,
        cancellation=None,
    ) -> QueryResult:
        token = cancellation if cancellation is not None else self.cancellation
        simulator = Simulator(
            self.device, injector=self.fault_injector, cancellation=token
        )
        context = ExecutionContext()
        checkpoint = self.checkpoint
        if checkpoint is not None:
            checkpoint.begin_attempt(
                tuple(p.pipeline_id for p in plan.pipelines)
            )
        segment_cache = self.segment_cache
        segment_keys: Tuple[str, ...] = ()
        if segment_cache is not None:
            segment_keys = segment_cache.keys_for(
                plan,
                self.database,
                self.device.name,
                partitioned_joins=self.partitioned_joins,
                num_partitions=self.num_partitions,
                adaptive_fact=self.adaptive_fact,
            )
        # Keys already present before each segment runs, so a completed
        # segment's contribution (for the cross-query cache) is the diff.
        seen_intermediates: set = set()
        seen_hash_tables: set = set()

        def _segment_diff():
            new_i = {
                key: value
                for key, value in context.intermediates.items()
                if key not in seen_intermediates
            }
            new_h = {
                key: value
                for key, value in context.hash_tables.items()
                if key not in seen_hash_tables
            }
            seen_intermediates.update(new_i)
            seen_hash_tables.update(new_h)
            return new_i, new_h

        try:
            for index, pipeline in enumerate(plan.pipelines):
                if checkpoint is not None and checkpoint.restore(
                    pipeline.pipeline_id, context
                ):
                    _segment_diff()
                    continue
                if segment_cache is not None and segment_cache.restore(
                    segment_keys[index], context
                ):
                    new_i, new_h = _segment_diff()
                    if checkpoint is not None:
                        checkpoint.note_restored(new_i, new_h)
                    add_event(
                        "segment_cache.resume",
                        query=query_name,
                        segment=pipeline.pipeline_id,
                    )
                    continue
                simulator.begin_segment(pipeline.pipeline_id)
                self._run_pipeline(pipeline, simulator, context)
                if checkpoint is not None:
                    checkpoint.record(pipeline.pipeline_id, context)
                if segment_cache is not None:
                    new_i, new_h = _segment_diff()
                    segment_cache.store(
                        segment_keys[index],
                        SegmentCheckpoint.capture(
                            pipeline.pipeline_id, new_i, new_h
                        ),
                    )
        finally:
            # Charge even a failed run's completed-segment cycles to the
            # token: the deadline is cumulative across resilient retries.
            if token is not None:
                token.charge(simulator.counters.elapsed_cycles)
        output = context.intermediate(plan.output_pipeline)
        counters = simulator.counters
        profiler = Profiler(self.device)
        return QueryResult(
            query=query_name,
            engine=self.name,
            device=self.device.name,
            batch=output,
            columns=plan.output_columns,
            elapsed_ms=self.device.cycles_to_ms(counters.elapsed_cycles),
            counters=counters,
            report=profiler.report(counters),
            dictionaries=dict(plan.output_dictionaries),
        )

    # -- shared helpers ----------------------------------------------------

    def _source_batch(
        self, pipeline: Pipeline, context: ExecutionContext
    ) -> Batch:
        """Load the pipeline's input columns (renamed) as one batch."""
        if pipeline.source_table is not None:
            table = self.database.table(pipeline.source_table)
            reverse = {new: old for old, new in pipeline.source_rename.items()}
            return {
                name: table.column(reverse.get(name, name))
                for name in pipeline.source_columns
            }
        upstream = context.intermediate(pipeline.source_intermediate)
        return {name: upstream[name] for name in pipeline.source_columns}

    @staticmethod
    def _register_output(
        pipeline: Pipeline, context: ExecutionContext, output: Optional[Batch]
    ) -> None:
        if output is not None:
            context.intermediates[pipeline.output_id] = output

    @staticmethod
    def _actual_selectivity(rows_in: int, rows_out: int) -> float:
        if rows_in <= 0:
            return 0.0
        return rows_out / rows_in

    @staticmethod
    def _aux_working_set(context: "ExecutionContext", template) -> float:
        """Bytes of auxiliary structure a kernel touches at a time.

        Partition-clustered probes of a partitioned hash table touch one
        partition's worth of it (``probe_working_set``); everything else
        touches the whole structure.
        """
        if template.aux_build_id is None:
            return 0.0
        table = context.hash_table(template.aux_build_id)
        if getattr(template, "aux_partitions", 1) > 1:
            return float(getattr(table, "probe_working_set", table.nbytes))
        return float(table.nbytes)

    # -- engine-specific ---------------------------------------------------

    def _run_pipeline(
        self,
        pipeline: Pipeline,
        simulator: Simulator,
        context: ExecutionContext,
    ) -> None:
        raise NotImplementedError
