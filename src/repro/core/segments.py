"""Segment generation (paper Section 3.1).

A query's kernel sequence ``K(K_0 ... K_n)`` contains blocking and
non-blocking kernels; the plan is partitioned into segments, each "a
sequence of non-blocking kernels, ending by a blocking kernel" (the
simple segment-generation approach of Luo et al. [23] the paper adopts).

In this reproduction, physical lowering already produces pipelines that
*are* segments; this module provides the general sequence-splitting
algorithm for validation, for the cost model, and for tests that exercise
the invariant directly on kernel sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..gpu.kernel import KernelSpec
from ..plans import Pipeline

__all__ = ["Segment", "split_into_segments", "pipeline_kernel_specs"]


@dataclass(frozen=True)
class Segment:
    """A maximal run of non-blocking kernels plus its ending blocker."""

    kernels: Tuple[KernelSpec, ...]

    @property
    def blocking_kernel(self) -> KernelSpec:
        return self.kernels[-1]

    @property
    def non_blocking(self) -> Tuple[KernelSpec, ...]:
        return self.kernels[:-1]

    def __len__(self) -> int:
        return len(self.kernels)


def split_into_segments(kernels: Sequence[KernelSpec]) -> List[Segment]:
    """Split a kernel sequence at blocking kernels.

    Every segment ends with a blocking kernel except possibly the last
    (a trailing run of non-blocking kernels forms a final segment whose
    output is the query result).
    """
    segments: List[Segment] = []
    current: List[KernelSpec] = []
    for kernel in kernels:
        current.append(kernel)
        if kernel.blocking:
            segments.append(Segment(tuple(current)))
            current = []
    if current:
        segments.append(Segment(tuple(current)))
    return segments


def pipeline_kernel_specs(pipeline: Pipeline, flavor: str = "gpl") -> List[KernelSpec]:
    """The kernel sequence of one physical pipeline.

    ``flavor`` selects the GPL (fine-grained) or KBE (conventional)
    expansion of each operator.
    """
    specs: List[KernelSpec] = []
    for op in pipeline.ops:
        templates = op.gpl_kernels() if flavor == "gpl" else op.kbe_kernels()
        specs.extend(template.spec for template in templates)
    sink_templates = (
        pipeline.sink.gpl_kernels()
        if flavor == "gpl"
        else pipeline.sink.kbe_kernels()
    )
    specs.extend(template.spec for template in sink_templates)
    return specs
