"""Deterministic host-side worker pools for scatter/gather fan-out.

The paper's pipelined engine keeps every unit busy at once; the host
runtime mirrors that with a :class:`WorkerPool` threaded through the two
fan-out sites — per-device shard scatter and admission-round drains.
The contract that makes parallelism reviewable:

1. ``workers=1`` is the *exact* sequential path: tasks run inline on the
   caller's thread with the caller's ambient tracer, no thread pool is
   ever created, and nothing about today's behaviour changes.
2. ``workers>1`` runs each task on a ``ThreadPoolExecutor`` under a
   private :class:`~repro.obs.tracing.Tracer` (clock starting at zero).
   Callers gather tasks in deterministic order — shard index, member
   index — and :meth:`PoolTask.merge_trace` grafts each private trace
   back into the parent at that point, so the exported trace, every
   counter, and every checksum are byte-identical at any worker count;
   only wall-clock changes.

Exceptions are captured, not raised, so the gather loop owns ordering:
the *lowest-index* failure is the one that propagates, exactly as in a
sequential loop (later tasks may already have run — their side effects
on shared stores are bounded by the stores' locks).

Wall-clock busy time is accounted per pool (``busy_seconds``) so serving
reports can show pool utilisation without contaminating any determinism
witness.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from ..obs.tracing import Tracer, current_tracer, use_tracer

__all__ = ["PoolTask", "WorkerPool"]

T = TypeVar("T")


class PoolTask:
    """Handle for one submitted task: result *or* error, plus the
    private tracer (parallel mode only) to graft at the gather point."""

    __slots__ = ("result", "error", "tracer", "_future")

    def __init__(self) -> None:
        self.result: Optional[object] = None
        self.error: Optional[BaseException] = None
        self.tracer: Optional[Tracer] = None
        self._future: Optional[Future] = None

    def wait(self) -> "PoolTask":
        """Block until the task finished (inline tasks already have)."""
        if self._future is not None:
            self._future.result()  # outcome captured by the wrapper
            self._future = None
        return self

    def unwrap(self) -> object:
        """The task's result; re-raises its exception at the call site."""
        self.wait()
        if self.error is not None:
            raise self.error
        return self.result

    def merge_trace(self) -> List[object]:
        """Graft this task's private trace into the caller's ambient
        tracer (no-op for inline tasks, which recorded directly onto
        it).  Returns the grafted root spans."""
        parent = current_tracer()
        if parent is None or self.tracer is None:
            return []
        grafted = parent.graft(self.tracer)
        self.tracer = None
        return grafted


class WorkerPool:
    """A bounded, deterministic thread pool (``workers=1`` → inline).

    One pool per fan-out site: :class:`~repro.serve.service.QueryService`
    and its internal sharded executor own *separate* pools, because a
    pool task blocking on subtasks of its own bounded pool can deadlock
    (``ThreadPoolExecutor`` does no work-stealing).
    """

    def __init__(self, workers: int = 1, name: str = "repro-worker"):
        self.workers = max(1, int(workers))
        self.name = name
        self.tasks_submitted = 0
        self.busy_seconds = 0.0
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    @property
    def sequential(self) -> bool:
        return self.workers == 1

    def submit(self, fn: Callable[[], T]) -> PoolTask:
        """Run ``fn`` — inline right now (sequential pool) or on a
        worker thread — always under a private tracer.

        The private tracer is used *even when sequential*: a task's
        virtual timestamps are then always computed relative to its own
        clock and shifted once at the graft point, so the floating-point
        arithmetic — and therefore the exported bytes — are identical at
        every worker count (summing the same numbers from different
        absolute bases rounds differently in the last ulp).
        """
        task = PoolTask()
        with self._lock:
            self.tasks_submitted += 1
        parent = current_tracer()
        sub = (
            Tracer(capture_kernels=parent.capture_kernels)
            if parent is not None
            else None
        )
        task.tracer = sub

        def run() -> None:
            started = time.perf_counter()
            try:
                if sub is not None:
                    with use_tracer(sub):
                        task.result = fn()
                else:
                    task.result = fn()
            except BaseException as exc:  # gather loop decides who raises
                task.error = exc
            finally:
                elapsed = time.perf_counter() - started
                with self._lock:
                    self.busy_seconds += elapsed

        if self.sequential:
            run()
        else:
            task._future = self._ensure_executor().submit(run)
        return task

    def map_ordered(self, fns: Sequence[Callable[[], T]]) -> List[PoolTask]:
        """Submit every task, then wait for all of them; the returned
        list preserves submission order (the deterministic gather
        order).  Traces are *not* merged — the caller grafts each task
        at its ordered position."""
        tasks = [self.submit(fn) for fn in fns]
        for task in tasks:
            task.wait()
        return tasks

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=self.name,
                )
            return self._executor

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WorkerPool(workers={self.workers}, name={self.name!r})"
