"""GPL execution configuration: the tuning knobs of the paper.

Three knobs govern pipelined execution (Section 3 / 4):

* the tile size Δ (``tile_bytes``) — the unit streamed through a segment;
* the channel configuration — number of channels ``n`` and packet size
  ``p`` (AMD only; NVIDIA fixes the packet size);
* per-kernel work-group counts ``wg_Ki`` — the resource-allocation lever
  (Section 3.5 fixes the work-group *size* at the wavefront width and
  adapts the *count*).

Defaults mirror the paper: Δ = 1 MB ("the default size (1MB)"),
packet = 16 bytes, and work-group counts that are integral multiples of
#CU.  The analytical model (:mod:`repro.model`) searches better values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from ..gpu import ChannelConfig, DeviceSpec
from ..gpu.kernel import KernelLaunch
from ..gpu.occupancy import check_segment_feasible

__all__ = ["GPLConfig", "DEFAULT_TILE_BYTES", "MIN_TILE_BYTES"]

KIB = 1024
MIB = 1024 * 1024

#: Paper default tile size.
DEFAULT_TILE_BYTES = 1 * MIB

#: Smallest meaningful tile (matches the ``__post_init__`` validation);
#: the floor of retry-with-reconfiguration's halving ladder.
MIN_TILE_BYTES = 4 * KIB


@dataclass(frozen=True)
class GPLConfig:
    """One pipelined-execution configuration."""

    tile_bytes: int = DEFAULT_TILE_BYTES
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    #: Work-groups per kernel; ``None`` entries (or a missing dict) fall
    #: back to ``default_workgroups``.  Keyed by stage position within the
    #: segment.
    workgroups: Optional[Dict[int, int]] = None
    default_workgroups: int = 16
    concurrent: bool = True  # False = the paper's "GPL (w/o CE)" variant

    def __post_init__(self) -> None:
        if self.tile_bytes < 4 * KIB:
            raise ValueError("tile size below 4 KiB is not meaningful")
        if self.default_workgroups < 1:
            raise ValueError("work-group count must be positive")

    def workgroups_for_stage(self, index: int) -> int:
        if self.workgroups is not None and index in self.workgroups:
            return max(1, self.workgroups[index])
        return self.default_workgroups

    def with_tile_bytes(self, tile_bytes: int) -> "GPLConfig":
        return replace(self, tile_bytes=tile_bytes)

    def with_channel(self, channel: ChannelConfig) -> "GPLConfig":
        return replace(self, channel=channel)

    def with_workgroups(self, workgroups: Dict[int, int]) -> "GPLConfig":
        return replace(self, workgroups=dict(workgroups))

    def without_concurrency(self) -> "GPLConfig":
        return replace(self, concurrent=False)

    def shrunk(self) -> Optional["GPLConfig"]:
        """The next rung down the degradation ladder, or ``None`` at floor.

        Halving Δ halves every per-burst footprint at once: the streamed
        tile, each producer work-group's channel burst (relieving
        overflow), and the segment's live working set (relieving memory
        pressure).  The channel binding itself is untouched — its (n, p)
        optimum barely moves with Δ (Section 4.1).
        """
        if self.tile_bytes <= MIN_TILE_BYTES:
            return None
        return replace(
            self, tile_bytes=max(MIN_TILE_BYTES, self.tile_bytes // 2)
        )

    def fit_workgroups(
        self, launches: Sequence[KernelLaunch], device: DeviceSpec
    ) -> Dict[int, int]:
        """Scale per-stage work-group counts down until Eq. 2 holds.

        The requested counts may be infeasible for deep segments (many
        kernels sharing the device); halving everything preserves the
        relative allocation, which is the knob's meaning.
        """
        counts = {
            index: launch.workgroups for index, launch in enumerate(launches)
        }
        candidates = list(launches)
        while not check_segment_feasible(candidates, device):
            if all(count <= 1 for count in counts.values()):
                break
            counts = {
                index: max(1, count // 2) for index, count in counts.items()
            }
            candidates = [
                launch.with_workgroups(counts[index])
                for index, launch in enumerate(launches)
            ]
        return counts
