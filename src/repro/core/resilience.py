"""Graceful degradation: admission control, bounded retry, fallback chain.

The paper tunes pipelined execution for the happy path — Section 4's cost
model picks Δ, n, p so the segment *fits* and *flows*.  This module makes
the engine survive the unhappy paths deterministically:

* **admission control** — before anything is launched, every segment's
  live footprint (tile + channel bindings + materialized output) is
  checked against the device memory budget; over-budget configurations
  are shrunk down the Δ-halving ladder, or rejected with a typed
  :class:`~repro.errors.AdmissionError` when even the floor won't fit;
* **bounded retry with reconfiguration** — simulated device-OOM and
  channel overflow trigger up to ``max_retries`` re-executions, each one
  rung down the degradation ladder (:meth:`GPLConfig.shrunk`); an
  injected *missing calibration entry* aborts reconfiguration, as a real
  cost-model lookup miss would;
* **a fallback chain** ``GPL -> GPL (w/o CE) -> KBE`` — pipeline
  deadlocks and kernel aborts skip the degenerate retry and fall back to
  the next-simpler engine (w/o CE drops channels, KBE drops tiling too),
  so every channel-shaped fault is structurally absorbed.  The last
  engine's failure propagates as the original typed error: the chain
  never hangs and never masks a non-absorbable fault.

Every run produces a :class:`ResilienceReport` — which engine answered,
every attempt with its outcome, and retry/fallback/fault counters — and
because both the simulator and :mod:`repro.faults` are deterministic, the
same seed reproduces the identical schedule and identical report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cancel import CancellationToken
from ..errors import (
    AdmissionError,
    CalibrationError,
    ChannelError,
    DeadlineExceededError,
    DeviceMemoryError,
    ExecutionError,
    KernelFaultError,
    PipelineDeadlockError,
)
from ..faults import FaultInjector, FaultPlan
from ..gpu import DeviceSpec
from ..obs.tracing import add_event, maybe_span
from ..plans import QuerySpec
from ..relational import Database
from .base import QueryResult
from .checkpoint import CheckpointStore, QueryCheckpoint
from .config import GPLConfig
from .engine import GPLEngine, GPLWithoutCEEngine

__all__ = [
    "AttemptRecord",
    "ResilienceReport",
    "ResilientExecutor",
    "ENGINE_CHAIN",
]

#: The degradation order: full pipelining, then tiling without channels,
#: then the conventional kernel-based baseline.
ENGINE_CHAIN: Tuple[str, ...] = ("gpl", "gpl-woce", "kbe")


@dataclass(frozen=True)
class AttemptRecord:
    """One execution attempt and how it ended."""

    engine: str
    tile_bytes: int
    outcome: str  # ok | oom | channel-overflow | deadlock | kernel-fault |
    #               admission-rejected | deadline-exceeded
    error: str = ""


@dataclass
class ResilienceReport:
    """Retry/fallback/fault accounting for one resilient execution.

    Surfaced on :attr:`QueryResult.resilience`, next to the hardware
    counters; :meth:`counters_dict` is the canonical determinism witness
    (two runs with the same seed must produce equal dicts).
    """

    engine_used: str = ""
    retries: int = 0
    reconfigurations: int = 0
    fallbacks: int = 0
    admission_shrinks: int = 0
    admission_rejections: int = 0
    calibration_misses: int = 0
    #: The query ran past ``deadline_cycles`` and was cancelled (fatal:
    #: no retry or fallback is attempted once the budget is spent).
    deadline_exceeded: bool = False
    #: Segment checkpoint/resume accounting for this execution.
    segments_recorded: int = 0
    segments_resumed: int = 0
    segments_invalidated: int = 0
    #: Fault-schedule accounting: total firings the plan scheduled, and
    #: the specs that still held unspent budget when the run ended.
    faults_scheduled: int = 0
    faults_unfired: List[str] = field(default_factory=list)
    faults_fired: Dict[str, int] = field(default_factory=dict)
    attempts: List[AttemptRecord] = field(default_factory=list)

    def counters_dict(self) -> Dict[str, object]:
        return {
            "engine_used": self.engine_used,
            "retries": self.retries,
            "reconfigurations": self.reconfigurations,
            "fallbacks": self.fallbacks,
            "admission_shrinks": self.admission_shrinks,
            "admission_rejections": self.admission_rejections,
            "calibration_misses": self.calibration_misses,
            "deadline_exceeded": self.deadline_exceeded,
            "segments_recorded": self.segments_recorded,
            "segments_resumed": self.segments_resumed,
            "segments_invalidated": self.segments_invalidated,
            "faults_scheduled": self.faults_scheduled,
            "faults_unfired": list(self.faults_unfired),
            "faults_fired": dict(sorted(self.faults_fired.items())),
            "attempts": [
                (a.engine, a.tile_bytes, a.outcome) for a in self.attempts
            ],
        }

    def to_text(self) -> str:
        lines = [
            f"answered by {self.engine_used or '(none)'} | "
            f"retries {self.retries} | fallbacks {self.fallbacks} | "
            f"reconfigurations {self.reconfigurations}"
        ]
        if self.admission_shrinks or self.admission_rejections:
            lines.append(
                f"admission: {self.admission_shrinks} shrinks, "
                f"{self.admission_rejections} rejections"
            )
        if self.calibration_misses:
            lines.append(f"calibration misses: {self.calibration_misses}")
        if self.deadline_exceeded:
            lines.append("DEADLINE EXCEEDED (no retry/fallback attempted)")
        if self.segments_recorded or self.segments_resumed:
            line = (
                f"checkpoints: {self.segments_recorded} segments recorded, "
                f"{self.segments_resumed} resumed"
            )
            if self.segments_invalidated:
                line += f", {self.segments_invalidated} invalidated"
            lines.append(line)
        if self.faults_fired:
            fired = ", ".join(
                f"{kind} x{count}"
                for kind, count in sorted(self.faults_fired.items())
            )
            lines.append(f"faults fired: {fired}")
        if self.faults_scheduled:
            if self.faults_unfired:
                lines.append(
                    "faults unfired: " + "; ".join(self.faults_unfired)
                )
            else:
                lines.append(
                    f"fault schedule exhausted: all {self.faults_scheduled} "
                    f"scheduled firings fired"
                )
        for attempt in self.attempts:
            detail = f" ({attempt.error})" if attempt.error else ""
            lines.append(
                f"  {attempt.engine:14s} tile "
                f"{attempt.tile_bytes // 1024}KB -> "
                f"{attempt.outcome}{detail}"
            )
        return "\n".join(lines)


class ResilientExecutor:
    """Wraps the engine chain with admission, retry, and fallback.

    The executor owns one :class:`~repro.faults.FaultInjector` across the
    whole chain, so a fault's ``times`` budget spans retries *and*
    fallbacks — a fault that fires once is absorbed by the first retry,
    one that keeps firing eventually exhausts the chain and propagates as
    its typed error.
    """

    #: Chain keys to the display names engines report themselves under.
    _DISPLAY = {"gpl": "GPL", "gpl-woce": "GPL (w/o CE)", "kbe": "KBE"}
    #: Errors worth retrying on the same engine with a shrunk config.
    _RETRYABLE = (DeviceMemoryError, ChannelError)
    #: Errors that skip straight to the next engine in the chain.
    _FALLBACK = (PipelineDeadlockError, KernelFaultError)

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        config: Optional[GPLConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        memory_budget_bytes: Optional[float] = None,
        max_retries: int = 2,
        engines: Sequence[str] = ENGINE_CHAIN,
        partitioned_joins: bool = False,
        plan_cache=None,
        segment_configs=None,
        deadline_cycles: Optional[float] = None,
        checkpoint_store: Optional[CheckpointStore] = None,
        checkpoints: bool = True,
        segment_cache=None,
    ):
        if not engines:
            raise ExecutionError("the fallback chain needs at least one engine")
        unknown = set(engines) - set(ENGINE_CHAIN)
        if unknown:
            raise ExecutionError(
                f"unknown engines in fallback chain: {sorted(unknown)}"
            )
        self.database = database
        self.device = device
        self.config = config or GPLConfig()
        self.injector = (
            FaultInjector(fault_plan) if fault_plan is not None else None
        )
        self.memory_budget_bytes = memory_budget_bytes
        self.max_retries = max(0, max_retries)
        self.engines = tuple(engines)
        self.partitioned_joins = partitioned_joins
        #: Optional :class:`repro.serve.PlanCache` shared across every
        #: engine this executor builds — the admission probe, each retry,
        #: and each fallback then all reuse one lowered plan instead of
        #: re-optimizing per attempt.
        self.plan_cache = plan_cache
        #: Optional per-segment model-chosen configs (the serving layer's
        #: tuned mode) handed to the GPL engines; KBE ignores them.
        self.segment_configs = dict(segment_configs or {})
        #: Executor-level default deadline; a spec's own
        #: ``deadline_cycles`` takes precedence.  The deadline spans the
        #: *whole* resilient execution: cycles consumed by failed
        #: attempts are charged against it too.
        self.deadline_cycles = deadline_cycles
        #: Segment checkpoint pool.  ``checkpoint_store`` lets a serving
        #: layer share (and bound) one pool across queries; with
        #: ``checkpoints=True`` and no store, the executor owns a private
        #: one.  ``checkpoints=False`` disables resume entirely (every
        #: retry re-runs from scratch — the pre-checkpoint behaviour).
        self.checkpoint_store = (
            checkpoint_store
            if checkpoint_store is not None
            else (CheckpointStore() if checkpoints else None)
        )
        #: Optional :class:`repro.core.checkpoint.SegmentCache` — the
        #: *cross-query* segment store (distinct from the per-execution
        #: checkpoint pool above).  Handed to every engine this executor
        #: builds so retries and fallbacks share it too.
        self.segment_cache = segment_cache

    # -- public API -------------------------------------------------------

    def execute(self, spec: QuerySpec) -> QueryResult:
        """Run ``spec`` through the chain; the answer is always reference-
        correct because every engine computes real results, whatever path
        produced them."""
        report = ResilienceReport()
        last_error: Optional[Exception] = None
        deadline = (
            spec.deadline_cycles
            if spec.deadline_cycles is not None
            else self.deadline_cycles
        )
        token = (
            CancellationToken(deadline, query=spec.name)
            if deadline is not None
            else None
        )
        checkpoint = (
            self.checkpoint_store.open(spec.name)
            if self.checkpoint_store is not None
            else None
        )
        with maybe_span(
            "resilience.execute",
            category="resilience",
            query=spec.name,
            chain=",".join(self.engines),
        ) as span:
            try:
                for position, name in enumerate(self.engines):
                    if position > 0:
                        report.fallbacks += 1
                        add_event(
                            "resilience.fallback",
                            to_engine=self._DISPLAY[name],
                            reason=type(last_error).__name__
                            if last_error is not None
                            else "?",
                        )
                    result, last_error = self._attempt_engine(
                        name, spec, report, token, checkpoint
                    )
                    if result is not None:
                        report.engine_used = result.engine
                        result.resilience = report
                        if span is not None:
                            span.attrs["engine_used"] = report.engine_used
                            span.attrs["retries"] = report.retries
                            span.attrs["fallbacks"] = report.fallbacks
                        return result
                    if isinstance(last_error, DeadlineExceededError):
                        # Fatal: the caller's time budget is spent; more
                        # retries or a slower fallback can only blow it
                        # further.
                        report.deadline_exceeded = True
                        add_event(
                            "resilience.deadline",
                            query=spec.name,
                            deadline_cycles=deadline,
                        )
                        break
            finally:
                # One harvest covers every exit: success, chain
                # exhaustion, deadline, and an unexpected raise.
                if checkpoint is not None:
                    report.segments_recorded = checkpoint.segments_recorded
                    report.segments_resumed = checkpoint.segments_resumed
                    report.segments_invalidated = (
                        checkpoint.segments_invalidated
                    )
                    checkpoint.release()
                self._harvest_faults(report)
            assert last_error is not None
            last_error.resilience = report
            raise last_error

    # -- chain internals --------------------------------------------------

    def _attempt_engine(
        self,
        name: str,
        spec: QuerySpec,
        report: ResilienceReport,
        token: Optional[CancellationToken] = None,
        checkpoint: Optional[QueryCheckpoint] = None,
    ) -> Tuple[Optional[QueryResult], Optional[Exception]]:
        """Admit + execute one engine, retrying down the Δ ladder.

        ``checkpoint`` carries completed-segment outputs across retries
        *and* across the engine fallbacks of one execution (the physical
        plan is engine-independent), so each new attempt resumes from the
        last completed segment instead of re-running the whole plan.
        """
        config = self.config
        retries = 0
        while True:
            try:
                config = self._admit(name, spec, config, report)
            except AdmissionError as exc:
                report.admission_rejections += 1
                report.attempts.append(
                    AttemptRecord(
                        self._DISPLAY[name], config.tile_bytes,
                        "admission-rejected", str(exc),
                    )
                )
                add_event(
                    "resilience.attempt",
                    engine=self._DISPLAY[name],
                    outcome="admission-rejected",
                    tile_bytes=config.tile_bytes,
                )
                return None, exc
            engine = self._build(name, config)
            engine.fault_injector = self.injector
            engine.cancellation = token
            engine.checkpoint = checkpoint
            engine.segment_cache = self.segment_cache
            error: Exception
            outcome: str
            try:
                result = engine.execute(spec)
            except DeadlineExceededError as exc:
                report.attempts.append(
                    AttemptRecord(
                        engine.name, config.tile_bytes, "deadline-exceeded",
                        str(exc).splitlines()[0],
                    )
                )
                add_event(
                    "resilience.attempt",
                    engine=engine.name,
                    outcome="deadline-exceeded",
                    tile_bytes=config.tile_bytes,
                )
                return None, exc
            except self._FALLBACK as exc:
                outcome = (
                    "deadlock"
                    if isinstance(exc, PipelineDeadlockError)
                    else "kernel-fault"
                )
                report.attempts.append(
                    AttemptRecord(
                        engine.name, config.tile_bytes, outcome,
                        str(exc).splitlines()[0],
                    )
                )
                add_event(
                    "resilience.attempt",
                    engine=engine.name,
                    outcome=outcome,
                    tile_bytes=config.tile_bytes,
                )
                return None, exc
            except self._RETRYABLE as exc:
                error = exc
                outcome = (
                    "oom" if isinstance(exc, DeviceMemoryError)
                    else "channel-overflow"
                )
            else:
                report.attempts.append(
                    AttemptRecord(engine.name, config.tile_bytes, "ok")
                )
                add_event(
                    "resilience.attempt",
                    engine=engine.name,
                    outcome="ok",
                    tile_bytes=config.tile_bytes,
                )
                return result, None
            report.attempts.append(
                AttemptRecord(
                    engine.name, config.tile_bytes, outcome,
                    str(error).splitlines()[0],
                )
            )
            add_event(
                "resilience.attempt",
                engine=engine.name,
                outcome=outcome,
                tile_bytes=config.tile_bytes,
            )
            if retries >= self.max_retries:
                return None, error
            reconfigured = self._reconfigure(name, config, report)
            if reconfigured is None:
                return None, error
            config = reconfigured
            retries += 1
            report.retries += 1
            add_event(
                "resilience.retry",
                engine=engine.name,
                tile_bytes=config.tile_bytes,
            )

    def _admit(
        self,
        name: str,
        spec: QuerySpec,
        config: GPLConfig,
        report: ResilienceReport,
    ) -> GPLConfig:
        """Pre-launch footprint check; shrink Δ until the plan fits.

        KBE is exempt: it is the last resort and allocates no tiles or
        channels of its own.
        """
        if name == "kbe":
            return config
        budget = self.memory_budget_bytes or float(
            self.device.global_mem_bytes
        )
        probe = self._build(name, config)
        plan = probe.prepare(spec)
        while True:
            footprint = probe.estimated_plan_footprint(plan, config)
            if footprint <= budget:
                return config
            shrunk = config.shrunk()
            if shrunk is None:
                raise AdmissionError(
                    f"estimated footprint {footprint:,.0f} B exceeds the "
                    f"device budget {budget:,.0f} B even at the minimum "
                    f"tile size",
                    segment=spec.name,
                    footprint_bytes=footprint,
                    budget_bytes=budget,
                )
            config = shrunk
            report.admission_shrinks += 1

    def _reconfigure(
        self, name: str, config: GPLConfig, report: ResilienceReport
    ) -> Optional[GPLConfig]:
        """One rung down the degradation ladder for the next retry.

        Re-deriving the configuration consults the calibrated cost model;
        an injected *missing calibration entry* makes that lookup fail,
        in which case the retry is abandoned (``None``) and the chain
        falls back instead.
        """
        if self.injector is not None:
            try:
                self.injector.on_calibration_lookup("*")
            except CalibrationError:
                report.calibration_misses += 1
                return None
        if name == "kbe":
            return config  # nothing to reconfigure; retry as-is
        shrunk = config.shrunk()
        if shrunk is not None:
            report.reconfigurations += 1
        return shrunk

    def _build(self, name: str, config: GPLConfig):
        if name == "gpl":
            engine = GPLEngine(
                self.database,
                self.device,
                config=config,
                segment_configs=self.segment_configs,
                partitioned_joins=self.partitioned_joins,
            )
        elif name == "gpl-woce":
            engine = GPLWithoutCEEngine(
                self.database,
                self.device,
                config=config,
                segment_configs=self.segment_configs,
                partitioned_joins=self.partitioned_joins,
            )
        elif name == "kbe":
            from ..kbe import KBEEngine

            engine = KBEEngine(
                self.database,
                self.device,
                partitioned_joins=self.partitioned_joins,
            )
        else:
            raise ExecutionError(f"unknown engine {name!r}")
        engine.plan_cache = self.plan_cache
        return engine

    def _harvest_faults(self, report: ResilienceReport) -> None:
        if self.injector is not None:
            report.faults_fired = self.injector.fired_counts()
            report.faults_scheduled = self.injector.scheduled_total
            report.faults_unfired = self.injector.unfired_specs()
