"""Plan cache: lowered physical plans, keyed by everything they depend on.

Optimization + lowering is pure — the same :class:`~repro.plans.QuerySpec`
against the same database with the same plan knobs always produces the
same :class:`~repro.plans.PhysicalPlan` — and a lowered plan is
re-executable: every stateful sink resets itself in ``start()`` and all
run state lives in the per-execution
:class:`~repro.plans.ExecutionContext`.  That makes the plan a perfect
cache value, and :func:`~repro.plans.lowering.plan_cache_key` the key:
query shape, database contents, device, and plan knobs.  Change any of
them and the key changes — that is the entire invalidation story.

Engines consult an attached cache through
:meth:`repro.core.EngineBase.prepare`; the serving layer attaches one
cache across every engine it builds so repeat traffic skips the
optimizer entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..plans import PhysicalPlan, QuerySpec
from ..plans.lowering import plan_cache_key

__all__ = ["CacheStats", "PlanCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.lookups <= 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanCache:
    """LRU cache of lowered physical plans.

    ``max_entries`` bounds memory: a serving deployment sees a finite set
    of query shapes, but nothing enforces that, so the least recently
    used plan is evicted once the bound is hit.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("plan cache needs at least one entry")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, PhysicalPlan]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, engine, spec: QuerySpec) -> str:
        """The cache key ``engine`` would use for ``spec``."""
        return plan_cache_key(
            spec,
            engine.database,
            engine.device.name,
            partitioned_joins=engine.partitioned_joins,
            num_partitions=engine.num_partitions,
            adaptive_fact=engine.adaptive_fact,
        )

    def lookup(self, key: str) -> Optional[PhysicalPlan]:
        """The cached plan for ``key``, counting the hit or miss."""
        plan = self._entries.get(key)
        if plan is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return plan

    def store(self, key: str, plan: PhysicalPlan) -> None:
        self._entries[key] = plan
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def get_or_prepare(self, engine, spec: QuerySpec) -> PhysicalPlan:
        """The engine-facing entry point (see :meth:`EngineBase.prepare`)."""
        key = self.key_for(engine, spec)
        plan = self.lookup(key)
        if plan is None:
            plan = engine.prepare_uncached(spec)
            self.store(key, plan)
        return plan

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.stats = CacheStats()
