"""Serving caches: lowered plans and whole query results.

Optimization + lowering is pure — the same :class:`~repro.plans.QuerySpec`
against the same database with the same plan knobs always produces the
same :class:`~repro.plans.PhysicalPlan` — and a lowered plan is
re-executable: every stateful sink resets itself in ``start()`` and all
run state lives in the per-execution
:class:`~repro.plans.ExecutionContext`.  That makes the plan a perfect
cache value, and :func:`~repro.plans.lowering.plan_cache_key` the key:
query shape, database contents, device, and plan knobs.  Change any of
them and the key changes — that is the entire invalidation story.

Engines consult an attached cache through
:meth:`repro.core.EngineBase.prepare`; the serving layer attaches one
cache across every engine it builds so repeat traffic skips the
optimizer entirely.

:class:`ResultCache` applies the same argument one level up: execution
is deterministic, so the *result* is as pure a function of the plan
cache key as the plan is.  The service consults it before admission —
a hit bypasses scheduling and execution entirely (outcome ``cached``).
Results hold materialized rows, so the budget is bytes, not entries:
a byte-budgeted LRU with oversized results simply never admitted.
The cross-query *segment* cache lives with the checkpoint machinery in
:mod:`repro.core.checkpoint` (:class:`~repro.core.checkpoint.SegmentCache`)
and is re-exported here alongside the serving-level caches.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.checkpoint import SegmentCache
from ..plans import PhysicalPlan, QuerySpec
from ..plans.lowering import plan_cache_key
from ..plans.runtime import batch_bytes

__all__ = ["CacheStats", "PlanCache", "ResultCache", "SegmentCache"]


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if self.lookups <= 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class PlanCache:
    """LRU cache of lowered physical plans.

    ``max_entries`` bounds memory: a serving deployment sees a finite set
    of query shapes, but nothing enforces that, so the least recently
    used plan is evicted once the bound is hit.

    Thread-safe: worker-pool tasks share one cache, so lookups and
    stores take a reentrant lock.  ``get_or_prepare`` deliberately
    prepares *outside* the lock — lowering is the expensive part and
    concurrent misses on distinct keys must not serialize.
    """

    def __init__(self, max_entries: int = 128):
        if max_entries < 1:
            raise ValueError("plan cache needs at least one entry")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, PhysicalPlan]" = OrderedDict()
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, engine, spec: QuerySpec) -> str:
        """The cache key ``engine`` would use for ``spec``."""
        return plan_cache_key(
            spec,
            engine.database,
            engine.device.name,
            partitioned_joins=engine.partitioned_joins,
            num_partitions=engine.num_partitions,
            adaptive_fact=engine.adaptive_fact,
        )

    def lookup(self, key: str) -> Optional[PhysicalPlan]:
        """The cached plan for ``key``, counting the hit or miss."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return plan

    def store(self, key: str, plan: PhysicalPlan) -> None:
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_prepare(self, engine, spec: QuerySpec) -> PhysicalPlan:
        """The engine-facing entry point (see :meth:`EngineBase.prepare`)."""
        return self.fetch_or_prepare(engine, spec)[0]

    def fetch_or_prepare(
        self, engine, spec: QuerySpec
    ) -> "tuple[PhysicalPlan, bool]":
        """``(plan, was_hit)`` — the hit flag for *this* call.

        Callers must not infer the flag from a ``stats.hits`` delta:
        under a worker pool a concurrent lookup's hit lands between the
        snapshots and misattributes the hit, making span attributes
        depend on thread timing.
        """
        key = self.key_for(engine, spec)
        plan = self.lookup(key)
        if plan is not None:
            return plan, True
        plan = engine.prepare_uncached(spec)
        self.store(key, plan)
        return plan, False

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()


#: Default result-cache budget: 64 MiB of materialized rows.
DEFAULT_RESULT_CACHE_BYTES = 64 * 1024 * 1024


class ResultCache:
    """Byte-budgeted LRU cache of whole query results.

    Keyed by :func:`~repro.plans.lowering.plan_cache_key` plus an
    execution salt (tile size, pool width) supplied by the service —
    everything that shaped the *rows* is in the key, so, exactly as for
    the plan cache, invalidation is the key changing.  Results are
    materialized row batches, so the bound is ``max_bytes`` of column
    data (:func:`~repro.plans.runtime.batch_bytes`); least recently
    used results are evicted to fit, and a single result larger than
    the whole budget is never admitted.

    Entries are stored by reference.  That is safe for the same reason
    checkpoint capture-by-reference is: engine outputs are freshly
    materialized per execution and never mutated downstream.

    Thread-safe: a reentrant lock keeps the entry map, the size map,
    and the byte accounting in step under concurrent worker-pool use.
    """

    def __init__(self, max_bytes: int = DEFAULT_RESULT_CACHE_BYTES):
        if max_bytes < 1:
            raise ValueError("result cache needs a positive byte budget")
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self.live_bytes = 0
        self.peak_bytes = 0
        self.stored = 0
        self._entries: "OrderedDict[str, object]" = OrderedDict()
        self._sizes: Dict[str, int] = {}
        self._lock = threading.RLock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @staticmethod
    def result_bytes(result) -> int:
        """The byte footprint charged for ``result``."""
        return int(batch_bytes(result.batch))

    def lookup(self, key: str):
        """The cached result for ``key``, counting the hit or miss."""
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return result

    def store(self, key: str, result) -> bool:
        """Admit ``result`` under ``key``; ``False`` if it cannot fit."""
        size = self.result_bytes(result)
        if size > self.max_bytes:
            return False
        with self._lock:
            if key in self._entries:
                self.live_bytes -= self._sizes[key]
                del self._entries[key]
                del self._sizes[key]
            while self._entries and self.live_bytes + size > self.max_bytes:
                evicted_key, _ = self._entries.popitem(last=False)
                self.live_bytes -= self._sizes.pop(evicted_key)
                self.stats.evictions += 1
            self._entries[key] = result
            self._sizes[key] = size
            self.live_bytes += size
            self.peak_bytes = max(self.peak_bytes, self.live_bytes)
            self.stored += 1
            return True

    def counters_dict(self) -> Dict[str, int]:
        """Deterministic counters (the serving report embeds these)."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "stored": self.stored,
                "live_results": len(self._entries),
                "live_bytes": self.live_bytes,
                "peak_bytes": self.peak_bytes,
            }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._sizes.clear()
            self.stats = CacheStats()
            self.live_bytes = 0
            self.peak_bytes = 0
            self.stored = 0
