"""QueryService: many queries, one simulated device.

The serving model extends the paper's resource-sharing story one level
up.  Within a query, GPL's kernels share the device's concurrent-kernel
slots (Section 5's C) and its memory; across queries, the service
partitions exactly those two resources between the members of each
admission round:

* every query in a round of ``k`` gets ``max(1, C // k)`` kernel slots —
  its segments pipeline within the partition, and the per-query slowdown
  from losing slots is the simulated cost of co-residency;
* the shared memory budget is split evenly, and each partition is
  enforced by the *per-query* admission control of
  :class:`~repro.core.ResilientExecutor` (shrink down the Δ ladder,
  typed rejection at the floor).

A round's simulated makespan is the maximum of its members' execution
times — members run concurrently — and rounds execute in sequence, so a
query's service latency is the virtual time spent waiting for its round
plus its own execution time.

Repeat traffic is fast because planning is cached at three levels: the
plan cache (optimization + lowering, keyed by query/database/device/
config), the memoized configuration search, and the per-device Γ table
(:mod:`repro.model`).  All three expose hit/miss counters, reported
per drain on the :class:`~repro.serve.report.ServiceReport`.

Everything is deterministic: same database seed, same trace, same fault
plan => identical schedule, identical results, identical report
counters (given the same starting cache state; see ``docs/serving.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core import GPLConfig, GPLEngine, QueryResult, ResilientExecutor
from ..errors import ReproError
from ..faults import FaultInjector, FaultPlan
from ..gpu import DeviceSpec
from ..model import (
    ConfigurationSearch,
    calibrate_channels,
    calibration_cache_stats,
    plan_cost_inputs,
    search_cache_stats,
)
from ..obs import DriftRecorder, MetricsRegistry
from ..obs.tracing import maybe_span
from ..plans import QuerySpec
from ..relational import Database
from .caches import PlanCache
from .report import QueryRecord, ServiceReport
from .scheduler import ScheduledQuery, Scheduler

__all__ = ["QueryService"]


def _stats_delta(after: Dict[str, int], before: Dict[str, int]) -> Dict[str, int]:
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}


class QueryService:
    """Accepts many queries and serves them from one simulated device.

    Two submission paths share the same machinery:

    * :meth:`submit` — synchronous: execute now (a round of one, full
      slots and budget) and return the :class:`QueryResult`;
    * :meth:`enqueue` + :meth:`drain` — asynchronous: queue tickets, then
      schedule and execute the whole backlog concurrently and return a
      :class:`ServiceReport`.  Results stay retrievable by ticket via
      :meth:`result_for`.
    """

    def __init__(
        self,
        database: Database,
        device: DeviceSpec,
        config: Optional[GPLConfig] = None,
        policy: str = "fifo",
        max_concurrent: int = 4,
        memory_budget_bytes: Optional[float] = None,
        resilient: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        max_retries: int = 2,
        partitioned_joins: bool = False,
        plan_cache: Optional[PlanCache] = None,
        tuned: bool = False,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.database = database
        self.device = device
        self.config = config or GPLConfig()
        self.scheduler = Scheduler(policy)
        self.max_concurrent = max(1, max_concurrent)
        self.memory_budget_bytes = float(
            memory_budget_bytes
            if memory_budget_bytes is not None
            else device.global_mem_bytes
        )
        self.resilient = resilient
        self.fault_plan = fault_plan
        self.max_retries = max_retries
        self.partitioned_joins = partitioned_joins
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        #: ``tuned`` runs every query with the cost model's per-segment
        #: optimal configs (Section 4.1's search) instead of the service's
        #: single baseline config — the serving twin of
        #: :meth:`repro.bench.runner.ExperimentContext.optimized_gpl`.
        self.tuned = tuned
        #: Metrics registry every drain reports into; share one across
        #: services to aggregate, or read ``service.registry`` after.
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Predicted-vs-measured cycles per completed query (Figs 11/24
        #: from live telemetry); feeds ``model_drift_*`` metrics.
        self.drift = DriftRecorder(registry=self.registry)
        #: Ticket -> result for every completed query this service ran.
        self.results: Dict[int, QueryResult] = {}
        self._queue: List[Tuple[int, QuerySpec]] = []
        self._next_ticket = 0
        self._search: Optional[ConfigurationSearch] = None

    # -- submission -------------------------------------------------------

    @property
    def pending(self) -> int:
        """Queued-but-not-yet-drained query count."""
        return len(self._queue)

    def enqueue(self, spec: QuerySpec) -> int:
        """Queue a query; returns its ticket (the submission index)."""
        ticket = self._next_ticket
        self._next_ticket += 1
        self._queue.append((ticket, spec))
        return ticket

    def submit(self, spec: QuerySpec) -> QueryResult:
        """Execute one query now, bypassing the queue (sync path).

        The query still flows through every cache, so a warmed service
        answers synchronous traffic without re-planning; it runs alone,
        so it gets the full device.
        """
        ticket = self._next_ticket
        self._next_ticket += 1
        self._drain_batch([(ticket, spec)])
        result = self.results.get(ticket)
        if result is None:
            raise self._last_error  # failure of a sync submit propagates
        return result

    def drain(self) -> ServiceReport:
        """Schedule and execute the whole backlog; empty the queue."""
        batch, self._queue = self._queue, []
        return self._drain_batch(batch)

    def run(self, specs: Sequence[QuerySpec]) -> ServiceReport:
        """Convenience: enqueue a trace, then drain it."""
        for spec in specs:
            self.enqueue(spec)
        return self.drain()

    def result_for(self, ticket: int) -> QueryResult:
        """The result a drained ticket produced (KeyError if it failed)."""
        return self.results[ticket]

    # -- internals --------------------------------------------------------

    def _probe_engine(self) -> GPLEngine:
        """A throwaway engine used for planning and footprint estimates."""
        engine = GPLEngine(
            self.database,
            self.device,
            config=self.config,
            partitioned_joins=self.partitioned_joins,
        )
        engine.plan_cache = self.plan_cache
        return engine

    def _ensure_search(self) -> ConfigurationSearch:
        if self._search is None:
            self._search = ConfigurationSearch(
                self.device, calibrate_channels(self.device)
            )
        return self._search

    def _estimate_cost(self, plan) -> float:
        """Predicted execution cycles for a plan (drives SJF ordering).

        Sums the memoized configuration search's best predicted T_Sk per
        segment — the first query of a shape pays the search, repeats hit
        the cache in :mod:`repro.model.search`.
        """
        search = self._ensure_search()
        segments = plan_cost_inputs(plan, self.database)
        return sum(
            search.best_for_segment(segment).predicted_cycles
            for segment in segments
        )

    def _plan_queries(
        self, batch: Sequence[Tuple[int, QuerySpec]]
    ) -> List[ScheduledQuery]:
        probe = self._probe_engine()
        planned: List[ScheduledQuery] = []
        for ticket, spec in batch:
            with maybe_span(
                "serve.plan", category="serve", query=spec.name, ticket=ticket
            ):
                hits_before = self.plan_cache.stats.hits
                plan = probe.prepare(spec)
                segment_configs = None
                if self.tuned:
                    search = self._ensure_search()
                    segments = plan_cost_inputs(plan, self.database)
                    segment_configs, est_cost = search.optimize_plan(segments)
                else:
                    est_cost = self._estimate_cost(plan)
                planned.append(
                    ScheduledQuery(
                        index=ticket,
                        spec=spec,
                        plan=plan,
                        est_cost_cycles=est_cost,
                        footprint_bytes=probe.estimated_plan_footprint(
                            plan, self.config
                        ),
                        plan_cache_hit=self.plan_cache.stats.hits
                        > hits_before,
                        segment_configs=segment_configs,
                    )
                )
        return planned

    def _execute_one(
        self, query: ScheduledQuery, slots: int, budget_share: float
    ) -> QueryResult:
        device = (
            self.device
            if slots == self.device.concurrency
            else self.device.with_overrides(concurrency=slots)
        )
        if self.resilient:
            executor = ResilientExecutor(
                self.database,
                device,
                config=self.config,
                fault_plan=self.fault_plan,
                memory_budget_bytes=budget_share,
                max_retries=self.max_retries,
                partitioned_joins=self.partitioned_joins,
                plan_cache=self.plan_cache,
                segment_configs=query.segment_configs,
            )
            return executor.execute(query.spec)
        engine = GPLEngine(
            self.database,
            device,
            config=self.config,
            segment_configs=query.segment_configs,
            partitioned_joins=self.partitioned_joins,
        )
        engine.plan_cache = self.plan_cache
        if self.fault_plan is not None:
            engine.fault_injector = FaultInjector(self.fault_plan)
        return engine.execute(query.spec)

    def _drain_batch(
        self, batch: Sequence[Tuple[int, QuerySpec]]
    ) -> ServiceReport:
        with maybe_span(
            "serve.drain",
            category="serve",
            policy=self.scheduler.policy,
            queries=len(batch),
        ):
            return self._drain_batch_inner(batch)

    def _drain_batch_inner(
        self, batch: Sequence[Tuple[int, QuerySpec]]
    ) -> ServiceReport:
        plan_before = self.plan_cache.stats.as_dict()
        calibration_before = calibration_cache_stats()
        search_before = search_cache_stats()

        planned = self._plan_queries(batch)
        ordered = self.scheduler.order(planned)
        rounds = self.scheduler.admission_rounds(
            ordered, self.max_concurrent, self.memory_budget_bytes
        )

        records: List[QueryRecord] = []
        clock_ms = 0.0
        self._last_error: Optional[ReproError] = None
        for round_index, members in enumerate(rounds):
            slots = max(1, self.device.concurrency // len(members))
            budget_share = self.memory_budget_bytes / len(members)
            round_makespan = 0.0
            with maybe_span(
                "serve.round",
                category="serve",
                round=round_index,
                members=len(members),
                slots=slots,
            ):
                for query in members:
                    with maybe_span(
                        "serve.query",
                        category="serve",
                        query=query.spec.name,
                        ticket=query.index,
                    ) as span:
                        try:
                            result = self._execute_one(
                                query, slots, budget_share
                            )
                        except ReproError as exc:
                            self._last_error = exc
                            if span is not None:
                                span.attrs["ok"] = False
                            records.append(
                                QueryRecord(
                                    index=query.index,
                                    query=query.spec.name,
                                    engine="",
                                    round=round_index,
                                    slots=slots,
                                    est_cost_cycles=query.est_cost_cycles,
                                    footprint_bytes=query.footprint_bytes,
                                    wait_ms=clock_ms,
                                    exec_ms=0.0,
                                    plan_cache_hit=query.plan_cache_hit,
                                    ok=False,
                                    error=str(exc).splitlines()[0],
                                )
                            )
                            continue
                        if span is not None:
                            span.attrs["ok"] = True
                            span.attrs["engine"] = result.engine
                    self.results[query.index] = result
                    round_makespan = max(round_makespan, result.elapsed_ms)
                    self.drift.record(
                        query=query.spec.name,
                        device=self.device.name,
                        tile_bytes=self.config.tile_bytes,
                        predicted_cycles=query.est_cost_cycles,
                        measured_cycles=result.counters.elapsed_cycles,
                    )
                    records.append(
                        QueryRecord(
                            index=query.index,
                            query=query.spec.name,
                            engine=result.engine,
                            round=round_index,
                            slots=slots,
                            est_cost_cycles=query.est_cost_cycles,
                            footprint_bytes=query.footprint_bytes,
                            wait_ms=clock_ms,
                            exec_ms=result.elapsed_ms,
                            plan_cache_hit=query.plan_cache_hit,
                            num_rows=result.num_rows,
                        )
                    )
            clock_ms += round_makespan

        report = ServiceReport(
            device=self.device.name,
            policy=self.scheduler.policy,
            max_concurrent=self.max_concurrent,
            memory_budget_bytes=self.memory_budget_bytes,
            makespan_ms=clock_ms,
            records=records,
            plan_cache=_stats_delta(
                self.plan_cache.stats.as_dict(), plan_before
            ),
            calibration_cache=_stats_delta(
                calibration_cache_stats(), calibration_before
            ),
            search_cache=_stats_delta(search_cache_stats(), search_before),
        )
        self._record_metrics(report, len(rounds))
        report.metrics = self.registry.to_json()
        report.drift = {
            "per_query": self.drift.per_query(),
            "overall": self.drift.overall(),
        }
        return report

    def _record_metrics(self, report: ServiceReport, num_rounds: int) -> None:
        """Fold one drain's outcome into the service's metrics registry."""
        registry = self.registry
        registry.counter("serve_drains_total").inc()
        registry.counter("serve_rounds_total").inc(num_rounds)
        registry.gauge("serve_makespan_ms").set(report.makespan_ms)
        for record in report.records:
            registry.counter("serve_queries_total").inc(
                status="ok" if record.ok else "failed"
            )
            if record.ok:
                registry.histogram("serve_wait_ms").observe(record.wait_ms)
                registry.histogram("serve_exec_ms").observe(record.exec_ms)
                registry.histogram("serve_latency_ms").observe(
                    record.latency_ms
                )
        for cache, stats in (
            ("plan", report.plan_cache),
            ("calibration", report.calibration_cache),
            ("search", report.search_cache),
        ):
            for key, outcome in (("hits", "hit"), ("misses", "miss")):
                count = stats.get(key, 0)
                if count > 0:
                    registry.counter("cache_lookups_total").inc(
                        count, cache=cache, outcome=outcome
                    )
            evictions = stats.get("evictions", 0)
            if evictions > 0:
                registry.counter("cache_evictions_total").inc(
                    evictions, cache=cache
                )
        for result in (
            self.results[record.index]
            for record in report.records
            if record.ok and record.index in self.results
        ):
            resilience = result.resilience
            if resilience is None:
                continue
            if resilience.retries:
                registry.counter("resilience_retries_total").inc(
                    resilience.retries
                )
            if resilience.fallbacks:
                registry.counter("resilience_fallbacks_total").inc(
                    resilience.fallbacks
                )
            if resilience.reconfigurations:
                registry.counter("resilience_reconfigurations_total").inc(
                    resilience.reconfigurations
                )
            if resilience.admission_shrinks:
                registry.counter("resilience_admission_shrinks_total").inc(
                    resilience.admission_shrinks
                )
            if resilience.admission_rejections:
                registry.counter(
                    "resilience_admission_rejections_total"
                ).inc(resilience.admission_rejections)
            for kind, count in sorted(resilience.faults_fired.items()):
                registry.counter("resilience_faults_total").inc(
                    count, kind=kind
                )
